//! The swap-on-read model slot: how a live service changes its brain.
//!
//! Serving workers read a frozen [`ValueNet`] behind an `Arc`; the
//! background trainer publishes a newly trained network by swapping the
//! `Arc` in this slot. A search loads the slot **once** at its start and
//! keeps that `Arc` until it finishes, so an in-flight search straddling a
//! swap completes on the network it started with — plans stay
//! deterministic *per model generation*, never a torn blend of two.
//!
//! The slot stores `(Arc<ValueNet>, generation)` under one `RwLock`, so a
//! load observes a consistent pair (the generation labels which reference
//! model produced a plan — the swap-path tests key on it). The lock is held
//! only for the pointer clone: nanoseconds, uncontended in steady state,
//! never across NN work.

use neo::ValueNet;
use std::sync::{Arc, RwLock};

/// A shared, swappable slot holding the currently served model, its
/// monotonically increasing generation number (0 = the model the service
/// was built with), and the leadership **term** that minted the
/// generation (0 = outside any lease protocol). The term is provenance,
/// not ordering: slot advancement is decided by the generation alone,
/// while the term labels *which* leader's trainer produced the served
/// weights — the witness cluster diagnostics and the failover bench use
/// to prove the fleet followed one unforked history.
struct SlotState {
    net: Arc<ValueNet>,
    generation: u64,
    term: u64,
}

/// See [`SlotState`]: `(model, generation, term)` under one `RwLock`.
pub struct ModelSlot {
    inner: RwLock<SlotState>,
}

impl ModelSlot {
    /// Wraps the initial model as generation 0, term 0.
    pub fn new(net: Arc<ValueNet>) -> Self {
        ModelSlot {
            inner: RwLock::new(SlotState {
                net,
                generation: 0,
                term: 0,
            }),
        }
    }

    /// Loads the current model and its generation as one consistent pair.
    /// Callers keep the returned `Arc` for the duration of a search.
    pub fn load(&self) -> (Arc<ValueNet>, u64) {
        let guard = self.inner.read().expect("model slot poisoned");
        (Arc::clone(&guard.net), guard.generation)
    }

    /// Atomically replaces the served model, bumping the generation (the
    /// term is left as-is: a locally counted publish is the incumbent
    /// continuing its own history). Returns the new generation. In-flight
    /// searches keep the `Arc` they loaded; the old network is freed when
    /// the last of them finishes.
    pub fn publish(&self, net: Arc<ValueNet>) -> u64 {
        let mut guard = self.inner.write().expect("model slot poisoned");
        guard.net = net;
        guard.generation += 1;
        guard.generation
    }

    /// Installs `net` *as* an externally assigned generation minted under
    /// `term` — the cluster path, where generation numbers come from the
    /// shared checkpoint store (a follower's manifest sync, or the local
    /// leader's own fenced publish) rather than a local counter. Succeeds
    /// only when `generation` advances the slot (strictly greater than
    /// the current one), so a stale manifest read or a re-delivered
    /// checkpoint can never roll a node backwards — regardless of term,
    /// which is recorded as provenance, not consulted for ordering.
    /// Returns whether the install happened.
    pub fn publish_at(&self, net: Arc<ValueNet>, generation: u64, term: u64) -> bool {
        let mut guard = self.inner.write().expect("model slot poisoned");
        if generation <= guard.generation {
            return false;
        }
        guard.net = net;
        guard.generation = generation;
        guard.term = term;
        true
    }

    /// The current generation without loading the model.
    pub fn generation(&self) -> u64 {
        self.inner.read().expect("model slot poisoned").generation
    }

    /// The leadership term that minted the served generation (0 when the
    /// model was published outside any lease protocol).
    pub fn term(&self) -> u64 {
        self.inner.read().expect("model slot poisoned").term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo::{Featurization, Featurizer, NetConfig};

    fn tiny_net(seed: u64) -> Arc<ValueNet> {
        let db = neo_storage::datagen::imdb::generate(0.02, 1);
        let f = Featurizer::new(&db, Featurization::OneHot);
        Arc::new(ValueNet::new(
            f.query_dim(),
            f.plan_channels(),
            NetConfig {
                query_layers: vec![16, 8],
                conv_channels: vec![8],
                head_layers: vec![8],
                lr: 1e-2,
                grad_clip: 5.0,
                ignore_structure: false,
            },
            seed,
        ))
    }

    #[test]
    fn publish_bumps_generation_and_swaps_pointer() {
        let a = tiny_net(1);
        let b = tiny_net(2);
        let slot = ModelSlot::new(Arc::clone(&a));
        let (m0, g0) = slot.load();
        assert_eq!(g0, 0);
        assert!(Arc::ptr_eq(&m0, &a));
        assert_eq!(slot.publish(Arc::clone(&b)), 1);
        let (m1, g1) = slot.load();
        assert_eq!(g1, 1);
        assert!(Arc::ptr_eq(&m1, &b));
        // The old generation's Arc held by an "in-flight search" stays
        // valid after the swap.
        assert!(Arc::ptr_eq(&m0, &a));
        assert_eq!(slot.generation(), 1);
    }

    #[test]
    fn concurrent_loads_see_consistent_pairs() {
        let nets: Vec<Arc<ValueNet>> = (0..4).map(tiny_net).collect();
        let slot = Arc::new(ModelSlot::new(Arc::clone(&nets[0])));
        let ptrs: Vec<usize> = nets.iter().map(|n| Arc::as_ptr(n) as usize).collect();

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let ptrs = ptrs.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let (net, generation) = slot.load();
                        // The pair must be consistent: the pointer at
                        // generation g is exactly nets[g].
                        assert_eq!(
                            Arc::as_ptr(&net) as usize,
                            ptrs[generation as usize],
                            "torn (model, generation) pair"
                        );
                    }
                })
            })
            .collect();
        for net in nets.iter().skip(1) {
            slot.publish(Arc::clone(net));
            std::thread::yield_now();
        }
        for r in readers {
            crate::join_named(r);
        }
        assert_eq!(slot.generation(), 3);
    }

    #[test]
    fn publish_at_adopts_external_generations_monotonically() {
        let a = tiny_net(1);
        let b = tiny_net(2);
        let c = tiny_net(3);
        let slot = ModelSlot::new(a);
        // A follower adopting the leader's generation 5 from the store.
        assert!(slot.publish_at(Arc::clone(&b), 5, 1));
        assert_eq!(slot.generation(), 5);
        assert!(Arc::ptr_eq(&slot.load().0, &b));
        // Stale or replayed generations never roll the node backwards.
        assert!(!slot.publish_at(Arc::clone(&c), 5, 1));
        assert!(!slot.publish_at(Arc::clone(&c), 3, 1));
        assert_eq!(slot.generation(), 5);
        assert!(Arc::ptr_eq(&slot.load().0, &b));
        // A locally counted publish continues from the adopted number.
        assert_eq!(slot.publish(c), 6);
    }

    #[test]
    fn publish_at_records_the_minting_term() {
        let a = tiny_net(1);
        let b = tiny_net(2);
        let c = tiny_net(3);
        let slot = ModelSlot::new(a);
        assert_eq!(slot.term(), 0);
        // A follower adopting generation 3 minted under term 2.
        assert!(slot.publish_at(Arc::clone(&b), 3, 2));
        assert_eq!((slot.generation(), slot.term()), (3, 2));
        // Advancement is generation-monotonic regardless of term: a
        // higher term cannot re-deliver an old generation...
        assert!(!slot.publish_at(Arc::clone(&c), 3, 9));
        assert_eq!((slot.generation(), slot.term()), (3, 2));
        // ...and a failed-over successor's next generation lands with its
        // new term.
        assert!(slot.publish_at(Arc::clone(&c), 4, 3));
        assert_eq!((slot.generation(), slot.term()), (4, 3));
        // A term-less local publish keeps the recorded term.
        assert_eq!(slot.publish(c), 5);
        assert_eq!(slot.term(), 3);
    }
}
