//! Node health: a consecutive-failure state machine over store I/O.
//!
//! A fleet member's view of the shared checkpoint store degrades in
//! stages, not binary up/down: one failed tick is noise, three in a row
//! is a node falling behind, eight is a node that should stop
//! pretending it can coordinate. [`HealthTracker`] encodes that as
//! `Healthy → Degraded → Isolated` with symmetric, stepwise recovery —
//! `recover_after` consecutive successes walk one level back toward
//! Healthy, so a node that flapped straight to Isolated must prove
//! itself twice before reporting Healthy again.
//!
//! The cluster layer feeds it one verdict per background tick (after
//! retries — a fault absorbed by the retry policy is a success here) and
//! reads the state to act: a **Degraded leader resigns** before its
//! lease lapses mid-publish, handing leadership to a candidate that can
//! actually reach the store. The tracker itself is deliberately
//! store-agnostic: it counts verdicts, whatever produced them.

use std::sync::Mutex;

/// How reachable this node believes its coordination dependencies are.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Operating normally.
    Healthy,
    /// Consecutive failures crossed [`HealthPolicy::degraded_after`]:
    /// the node keeps serving but should shed coordination duties (a
    /// degraded leader resigns).
    Degraded,
    /// Consecutive failures crossed [`HealthPolicy::isolated_after`]:
    /// the node is effectively partitioned from the store and reports
    /// itself unfit to coordinate.
    Isolated,
}

impl HealthState {
    /// Short lowercase label (for reports and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Isolated => "isolated",
        }
    }

    fn toward_healthy(self) -> HealthState {
        match self {
            HealthState::Healthy | HealthState::Degraded => HealthState::Healthy,
            HealthState::Isolated => HealthState::Degraded,
        }
    }
}

/// Thresholds for the health state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures before `Healthy → Degraded`.
    pub degraded_after: u32,
    /// Consecutive failures before `Degraded → Isolated` (counted from
    /// the same streak; clamped to ≥ `degraded_after`).
    pub isolated_after: u32,
    /// Consecutive successes per recovery step (`Isolated → Degraded`,
    /// `Degraded → Healthy`; clamped to ≥ 1).
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degraded_after: 3,
            isolated_after: 8,
            recover_after: 2,
        }
    }
}

#[derive(Debug)]
struct HealthInner {
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    total_failures: u64,
    total_successes: u64,
    transitions: u64,
    degraded_entries: u64,
    isolated_entries: u64,
    recoveries: u64,
    last_error: Option<String>,
}

/// A point-in-time view of a [`HealthTracker`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Current state.
    pub state: HealthState,
    /// Length of the current failure streak.
    pub consecutive_failures: u32,
    /// Verdicts recorded as failures, ever.
    pub total_failures: u64,
    /// Verdicts recorded as successes, ever.
    pub total_successes: u64,
    /// State changes, ever (both directions).
    pub transitions: u64,
    /// Times the tracker entered `Degraded` (from either side).
    pub degraded_entries: u64,
    /// Times the tracker entered `Isolated`.
    pub isolated_entries: u64,
    /// Times the tracker returned all the way to `Healthy`.
    pub recoveries: u64,
    /// The most recent failure's message, if any failure ever happened.
    pub last_error: Option<String>,
}

/// Thread-safe consecutive-failure health state machine. One tracker per
/// node; verdicts arrive from its background tick thread, state reads
/// from anywhere.
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    inner: Mutex<HealthInner>,
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new(HealthPolicy::default())
    }
}

impl HealthTracker {
    /// A tracker starting `Healthy` under `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            inner: Mutex::new(HealthInner {
                state: HealthState::Healthy,
                consecutive_failures: 0,
                consecutive_successes: 0,
                total_failures: 0,
                total_successes: 0,
                transitions: 0,
                degraded_entries: 0,
                isolated_entries: 0,
                recoveries: 0,
                last_error: None,
            }),
        }
    }

    /// The policy this tracker runs under.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Records a failed verdict (one per tick, *after* retries — the
    /// streak measures sustained unreachability, not per-attempt noise).
    /// Returns the possibly-advanced state.
    pub fn record_failure(&self, error: impl Into<String>) -> HealthState {
        let mut inner = self.lock();
        inner.consecutive_successes = 0;
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        inner.total_failures += 1;
        inner.last_error = Some(error.into());
        let degraded_after = self.policy.degraded_after.max(1);
        let isolated_after = self.policy.isolated_after.max(degraded_after);
        let next = if inner.consecutive_failures >= isolated_after {
            HealthState::Isolated
        } else if inner.consecutive_failures >= degraded_after {
            HealthState::Degraded
        } else {
            inner.state
        };
        self.transition(&mut inner, next);
        inner.state
    }

    /// Records a successful verdict; every `recover_after` consecutive
    /// successes step one level back toward `Healthy`. Returns the
    /// possibly-recovered state.
    pub fn record_success(&self) -> HealthState {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        inner.total_successes += 1;
        if inner.state == HealthState::Healthy {
            inner.consecutive_successes = 0;
            return HealthState::Healthy;
        }
        inner.consecutive_successes += 1;
        if inner.consecutive_successes >= self.policy.recover_after.max(1) {
            inner.consecutive_successes = 0;
            let next = inner.state.toward_healthy();
            self.transition(&mut inner, next);
        }
        inner.state
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.lock().state
    }

    /// Full counter snapshot.
    pub fn snapshot(&self) -> HealthSnapshot {
        let inner = self.lock();
        HealthSnapshot {
            state: inner.state,
            consecutive_failures: inner.consecutive_failures,
            total_failures: inner.total_failures,
            total_successes: inner.total_successes,
            transitions: inner.transitions,
            degraded_entries: inner.degraded_entries,
            isolated_entries: inner.isolated_entries,
            recoveries: inner.recoveries,
            last_error: inner.last_error.clone(),
        }
    }

    fn transition(&self, inner: &mut HealthInner, next: HealthState) {
        if next == inner.state {
            return;
        }
        inner.transitions += 1;
        match next {
            HealthState::Degraded => inner.degraded_entries += 1,
            HealthState::Isolated => inner.isolated_entries += 1,
            HealthState::Healthy => inner.recoveries += 1,
        }
        inner.state = next;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthInner> {
        // Pure-data state: a peer that panicked mid-update left counters
        // at worst one verdict stale, never logically torn — recover
        // instead of cascading the panic into every health reader.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(HealthPolicy {
            degraded_after: 3,
            isolated_after: 5,
            recover_after: 2,
        })
    }

    #[test]
    fn consecutive_failures_walk_through_the_states() {
        let t = tracker();
        assert_eq!(t.record_failure("a"), HealthState::Healthy);
        assert_eq!(t.record_failure("b"), HealthState::Healthy);
        assert_eq!(t.record_failure("c"), HealthState::Degraded);
        assert_eq!(t.record_failure("d"), HealthState::Degraded);
        assert_eq!(t.record_failure("e"), HealthState::Isolated);
        let s = t.snapshot();
        assert_eq!(s.degraded_entries, 1);
        assert_eq!(s.isolated_entries, 1);
        assert_eq!(s.consecutive_failures, 5);
        assert_eq!(s.last_error.as_deref(), Some("e"));
    }

    #[test]
    fn one_success_resets_the_failure_streak() {
        let t = tracker();
        t.record_failure("x");
        t.record_failure("x");
        assert_eq!(t.record_success(), HealthState::Healthy);
        assert_eq!(t.record_failure("y"), HealthState::Healthy);
        assert_eq!(t.snapshot().consecutive_failures, 1);
    }

    #[test]
    fn recovery_is_stepwise_isolated_degraded_healthy() {
        let t = tracker();
        for _ in 0..5 {
            t.record_failure("down");
        }
        assert_eq!(t.state(), HealthState::Isolated);
        assert_eq!(t.record_success(), HealthState::Isolated);
        assert_eq!(t.record_success(), HealthState::Degraded);
        assert_eq!(t.record_success(), HealthState::Degraded);
        assert_eq!(t.record_success(), HealthState::Healthy);
        let s = t.snapshot();
        assert_eq!(s.recoveries, 1);
        // Isolated→Degraded + Degraded→Healthy + the two downward moves.
        assert_eq!(s.transitions, 4);
    }

    #[test]
    fn a_failure_mid_recovery_restarts_the_success_streak() {
        let t = tracker();
        for _ in 0..3 {
            t.record_failure("down");
        }
        assert_eq!(t.state(), HealthState::Degraded);
        t.record_success();
        t.record_failure("again");
        // The single success before the relapse must not count toward
        // recovery.
        assert_eq!(t.record_success(), HealthState::Degraded);
        assert_eq!(t.record_success(), HealthState::Healthy);
    }

    #[test]
    fn states_order_by_severity() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Isolated);
        assert_eq!(HealthState::Degraded.label(), "degraded");
    }
}
