//! Node health: a consecutive-failure state machine over store I/O.
//!
//! A fleet member's view of the shared checkpoint store degrades in
//! stages, not binary up/down: one failed tick is noise, three in a row
//! is a node falling behind, eight is a node that should stop
//! pretending it can coordinate. [`HealthTracker`] encodes that as
//! `Healthy → Degraded → Isolated` with symmetric, stepwise recovery —
//! `recover_after` consecutive successes walk one level back toward
//! Healthy, so a node that flapped straight to Isolated must prove
//! itself twice before reporting Healthy again.
//!
//! The cluster layer feeds it one verdict per background tick (after
//! retries — a fault absorbed by the retry policy is a success here) and
//! reads the state to act: a **Degraded leader resigns** before its
//! lease lapses mid-publish, handing leadership to a candidate that can
//! actually reach the store. The tracker itself is deliberately
//! store-agnostic: it counts verdicts, whatever produced them.

use neo_obs::{EventKind, EventRing};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How reachable this node believes its coordination dependencies are.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Operating normally.
    Healthy,
    /// Consecutive failures crossed [`HealthPolicy::degraded_after`]:
    /// the node keeps serving but should shed coordination duties (a
    /// degraded leader resigns).
    Degraded,
    /// Consecutive failures crossed [`HealthPolicy::isolated_after`]:
    /// the node is effectively partitioned from the store and reports
    /// itself unfit to coordinate.
    Isolated,
}

impl HealthState {
    /// Short lowercase label (for reports and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Isolated => "isolated",
        }
    }

    fn toward_healthy(self) -> HealthState {
        match self {
            HealthState::Healthy | HealthState::Degraded => HealthState::Healthy,
            HealthState::Isolated => HealthState::Degraded,
        }
    }
}

/// Thresholds for the health state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures before `Healthy → Degraded`.
    pub degraded_after: u32,
    /// Consecutive failures before `Degraded → Isolated` (counted from
    /// the same streak; clamped to ≥ `degraded_after`).
    pub isolated_after: u32,
    /// Consecutive successes per recovery step (`Isolated → Degraded`,
    /// `Degraded → Healthy`; clamped to ≥ 1).
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degraded_after: 3,
            isolated_after: 8,
            recover_after: 2,
        }
    }
}

#[derive(Debug)]
struct HealthInner {
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    total_failures: u64,
    total_successes: u64,
    transitions: u64,
    degraded_entries: u64,
    isolated_entries: u64,
    recoveries: u64,
    last_error: Option<String>,
    /// When the most recent state change happened (monotonic).
    last_transition: Option<Instant>,
    /// When the tracker most recently *left* `Healthy` (cleared on
    /// return): the start of the excursion a recovery closes out.
    unhealthy_since: Option<Instant>,
    /// Duration of the most recent completed non-Healthy excursion —
    /// the measurable "Degraded→Healthy recovery time" the chaos bench
    /// asserts on.
    last_recovery_ms: Option<f64>,
}

/// A point-in-time view of a [`HealthTracker`].
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// Current state.
    pub state: HealthState,
    /// Length of the current failure streak.
    pub consecutive_failures: u32,
    /// Verdicts recorded as failures, ever.
    pub total_failures: u64,
    /// Verdicts recorded as successes, ever.
    pub total_successes: u64,
    /// State changes, ever (both directions).
    pub transitions: u64,
    /// Times the tracker entered `Degraded` (from either side).
    pub degraded_entries: u64,
    /// Times the tracker entered `Isolated`.
    pub isolated_entries: u64,
    /// Times the tracker returned all the way to `Healthy`.
    pub recoveries: u64,
    /// The most recent failure's message, if any failure ever happened.
    pub last_error: Option<String>,
    /// Milliseconds (since tracker creation, monotonic) of the most
    /// recent state change; `None` when no transition ever happened.
    pub last_transition_ms: Option<f64>,
    /// How long the tracker has been in its current state, milliseconds
    /// (the tracker's whole lifetime when it never transitioned).
    pub since_ms: f64,
    /// Duration of the most recent completed non-Healthy excursion
    /// (left `Healthy` → returned `Healthy`), milliseconds. This is the
    /// measurable recovery time the cumulative counters could not give.
    pub last_recovery_ms: Option<f64>,
}

/// Thread-safe consecutive-failure health state machine. One tracker per
/// node; verdicts arrive from its background tick thread, state reads
/// from anywhere.
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    origin: Instant,
    inner: Mutex<HealthInner>,
    /// Optional trace sink: every state change is recorded as a
    /// `HealthChanged` event attributed to the named node.
    events: Mutex<Option<(Arc<EventRing>, String)>>,
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new(HealthPolicy::default())
    }
}

impl HealthTracker {
    /// A tracker starting `Healthy` under `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            // The shared obs clock base, not a private `Instant::now()`:
            // `last_transition_ms` then interleaves correctly with span
            // timestamps and ring-event `at_ms` in postmortems.
            origin: neo_obs::clock_origin(),
            inner: Mutex::new(HealthInner {
                state: HealthState::Healthy,
                consecutive_failures: 0,
                consecutive_successes: 0,
                total_failures: 0,
                total_successes: 0,
                transitions: 0,
                degraded_entries: 0,
                isolated_entries: 0,
                recoveries: 0,
                last_error: None,
                last_transition: None,
                unhealthy_since: None,
                last_recovery_ms: None,
            }),
            events: Mutex::new(None),
        }
    }

    /// Attaches an event ring: from now on every state change records a
    /// `HealthChanged` event attributed to `node`.
    pub fn attach_events(&self, ring: Arc<EventRing>, node: impl Into<String>) {
        *self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((ring, node.into()));
    }

    /// The policy this tracker runs under.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Records a failed verdict (one per tick, *after* retries — the
    /// streak measures sustained unreachability, not per-attempt noise).
    /// Returns the possibly-advanced state.
    pub fn record_failure(&self, error: impl Into<String>) -> HealthState {
        let mut inner = self.lock();
        inner.consecutive_successes = 0;
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        inner.total_failures += 1;
        inner.last_error = Some(error.into());
        let degraded_after = self.policy.degraded_after.max(1);
        let isolated_after = self.policy.isolated_after.max(degraded_after);
        let next = if inner.consecutive_failures >= isolated_after {
            HealthState::Isolated
        } else if inner.consecutive_failures >= degraded_after {
            HealthState::Degraded
        } else {
            inner.state
        };
        self.transition(&mut inner, next);
        inner.state
    }

    /// Records a successful verdict; every `recover_after` consecutive
    /// successes step one level back toward `Healthy`. Returns the
    /// possibly-recovered state.
    pub fn record_success(&self) -> HealthState {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        inner.total_successes += 1;
        if inner.state == HealthState::Healthy {
            inner.consecutive_successes = 0;
            return HealthState::Healthy;
        }
        inner.consecutive_successes += 1;
        if inner.consecutive_successes >= self.policy.recover_after.max(1) {
            inner.consecutive_successes = 0;
            let next = inner.state.toward_healthy();
            self.transition(&mut inner, next);
        }
        inner.state
    }

    /// Forces the tracker to at least `Degraded` without consuming a
    /// failure verdict — the hook SLO burn alerts use: a node burning
    /// its error budget sheds coordination duties *before* consecutive
    /// hard failures would reach `degraded_after`. Idempotent at
    /// `Degraded` and above; the success streak resets, so recovery
    /// still costs `recover_after` clean verdicts per step.
    pub fn degrade(&self, reason: impl Into<String>) -> HealthState {
        let mut inner = self.lock();
        inner.last_error = Some(reason.into());
        inner.consecutive_successes = 0;
        if inner.state == HealthState::Healthy {
            self.transition(&mut inner, HealthState::Degraded);
        }
        inner.state
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.lock().state
    }

    /// Full counter snapshot.
    pub fn snapshot(&self) -> HealthSnapshot {
        let inner = self.lock();
        let to_ms = |at: Instant| at.duration_since(self.origin).as_secs_f64() * 1e3;
        HealthSnapshot {
            state: inner.state,
            consecutive_failures: inner.consecutive_failures,
            total_failures: inner.total_failures,
            total_successes: inner.total_successes,
            transitions: inner.transitions,
            degraded_entries: inner.degraded_entries,
            isolated_entries: inner.isolated_entries,
            recoveries: inner.recoveries,
            last_error: inner.last_error.clone(),
            last_transition_ms: inner.last_transition.map(to_ms),
            since_ms: inner
                .last_transition
                .unwrap_or(self.origin)
                .elapsed()
                .as_secs_f64()
                * 1e3,
            last_recovery_ms: inner.last_recovery_ms,
        }
    }

    fn transition(&self, inner: &mut HealthInner, next: HealthState) {
        if next == inner.state {
            return;
        }
        let prev = inner.state;
        let now = Instant::now();
        inner.transitions += 1;
        match next {
            HealthState::Degraded => inner.degraded_entries += 1,
            HealthState::Isolated => inner.isolated_entries += 1,
            HealthState::Healthy => inner.recoveries += 1,
        }
        // Excursion bookkeeping: stamp the departure from Healthy, close
        // it out (as a measurable recovery duration) on the way back.
        if prev == HealthState::Healthy {
            inner.unhealthy_since = Some(now);
        } else if next == HealthState::Healthy {
            if let Some(start) = inner.unhealthy_since.take() {
                inner.last_recovery_ms = Some(now.duration_since(start).as_secs_f64() * 1e3);
            }
        }
        inner.last_transition = Some(now);
        inner.state = next;
        if let Some((ring, node)) = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            ring.record(
                node,
                EventKind::HealthChanged,
                format!("{} -> {}", prev.label(), next.label()),
            );
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthInner> {
        // Pure-data state: a peer that panicked mid-update left counters
        // at worst one verdict stale, never logically torn — recover
        // instead of cascading the panic into every health reader.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The telemetry sampler's burn alerts feed straight into the health
/// state machine: `add_slo_with_notify(spec, tracker)` makes a
/// budget-burning node go `Degraded` ahead of the failure-streak rule.
impl neo_obs::SloNotify for HealthTracker {
    fn on_budget_burn(&self, slo: &str, burn: f64) {
        self.degrade(format!("slo {slo} burning at {burn:.1}x budget rate"));
    }

    fn on_breach(&self, slo: &str) {
        self.degrade(format!("slo {slo} error budget exhausted"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(HealthPolicy {
            degraded_after: 3,
            isolated_after: 5,
            recover_after: 2,
        })
    }

    #[test]
    fn consecutive_failures_walk_through_the_states() {
        let t = tracker();
        assert_eq!(t.record_failure("a"), HealthState::Healthy);
        assert_eq!(t.record_failure("b"), HealthState::Healthy);
        assert_eq!(t.record_failure("c"), HealthState::Degraded);
        assert_eq!(t.record_failure("d"), HealthState::Degraded);
        assert_eq!(t.record_failure("e"), HealthState::Isolated);
        let s = t.snapshot();
        assert_eq!(s.degraded_entries, 1);
        assert_eq!(s.isolated_entries, 1);
        assert_eq!(s.consecutive_failures, 5);
        assert_eq!(s.last_error.as_deref(), Some("e"));
    }

    #[test]
    fn one_success_resets_the_failure_streak() {
        let t = tracker();
        t.record_failure("x");
        t.record_failure("x");
        assert_eq!(t.record_success(), HealthState::Healthy);
        assert_eq!(t.record_failure("y"), HealthState::Healthy);
        assert_eq!(t.snapshot().consecutive_failures, 1);
    }

    #[test]
    fn recovery_is_stepwise_isolated_degraded_healthy() {
        let t = tracker();
        for _ in 0..5 {
            t.record_failure("down");
        }
        assert_eq!(t.state(), HealthState::Isolated);
        assert_eq!(t.record_success(), HealthState::Isolated);
        assert_eq!(t.record_success(), HealthState::Degraded);
        assert_eq!(t.record_success(), HealthState::Degraded);
        assert_eq!(t.record_success(), HealthState::Healthy);
        let s = t.snapshot();
        assert_eq!(s.recoveries, 1);
        // Isolated→Degraded + Degraded→Healthy + the two downward moves.
        assert_eq!(s.transitions, 4);
    }

    #[test]
    fn a_failure_mid_recovery_restarts_the_success_streak() {
        let t = tracker();
        for _ in 0..3 {
            t.record_failure("down");
        }
        assert_eq!(t.state(), HealthState::Degraded);
        t.record_success();
        t.record_failure("again");
        // The single success before the relapse must not count toward
        // recovery.
        assert_eq!(t.record_success(), HealthState::Degraded);
        assert_eq!(t.record_success(), HealthState::Healthy);
    }

    #[test]
    fn transitions_are_timestamped_and_recovery_time_is_measurable() {
        let t = tracker();
        let fresh = t.snapshot();
        assert_eq!(fresh.last_transition_ms, None);
        assert!(fresh.since_ms >= 0.0, "since covers the whole lifetime");
        assert_eq!(fresh.last_recovery_ms, None);
        for _ in 0..3 {
            t.record_failure("down");
        }
        let degraded = t.snapshot();
        let entered = degraded.last_transition_ms.expect("transition stamped");
        assert!(entered >= 0.0);
        assert!(degraded.last_recovery_ms.is_none(), "excursion still open");
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.record_success();
        t.record_success();
        let recovered = t.snapshot();
        assert_eq!(recovered.state, HealthState::Healthy);
        let recovery = recovered.last_recovery_ms.expect("excursion closed");
        assert!(
            recovery >= 5.0,
            "recovery spans the sleep inside the excursion: {recovery} ms"
        );
        assert!(recovered.last_transition_ms.expect("stamped") >= entered);
    }

    #[test]
    fn transitions_emit_health_changed_events() {
        use neo_obs::{EventKind, EventRing};
        let t = tracker();
        let ring = std::sync::Arc::new(EventRing::new(16));
        t.attach_events(std::sync::Arc::clone(&ring), "node-0");
        for _ in 0..3 {
            t.record_failure("down");
        }
        t.record_success();
        t.record_success();
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.kind == EventKind::HealthChanged));
        assert_eq!(events[0].detail, "healthy -> degraded");
        assert_eq!(events[1].detail, "degraded -> healthy");
        assert_eq!(events[0].node, "node-0");
    }

    #[test]
    fn slo_burn_degrades_before_the_failure_streak_would() {
        use neo_obs::{EventRing, MetricsRegistry, SamplerConfig, SloSpec, TelemetrySampler};
        use std::sync::Arc;
        // degraded_after is 3 — this node never records a single hard
        // failure, yet the budget burn pushes it Degraded.
        let t = Arc::new(tracker());
        let ring = Arc::new(EventRing::new(32));
        t.attach_events(Arc::clone(&ring), "node-0");
        let registry = Arc::new(MetricsRegistry::new());
        let failures = registry.counter("sync_failures_total");
        let sampler = TelemetrySampler::spawn(SamplerConfig {
            tick_interval_ms: 3_600_000,
            series_capacity: 32,
        });
        sampler.watch("node-0", Arc::clone(&registry));
        sampler.add_slo_with_notify(
            SloSpec::availability("sync", "sync_failures_total", 0.9)
                .with_windows(16, 2)
                .with_burn_thresholds(5.0, 3.0),
            Arc::clone(&t) as Arc<dyn neo_obs::SloNotify>,
        );
        for _ in 0..4 {
            sampler.tick_now();
        }
        assert_eq!(t.state(), HealthState::Healthy);
        failures.inc();
        sampler.tick_now();
        failures.inc();
        sampler.tick_now();
        sampler.stop();
        assert_eq!(
            t.state(),
            HealthState::Degraded,
            "two burning ticks degrade via the SLO path, one short of degraded_after"
        );
        let snap = t.snapshot();
        assert_eq!(snap.total_failures, 0, "no hard failures were recorded");
        assert!(snap
            .last_error
            .as_deref()
            .unwrap_or("")
            .contains("slo sync"));
        assert!(ring
            .snapshot()
            .iter()
            .any(|e| e.kind == EventKind::HealthChanged && e.detail == "healthy -> degraded"));
    }

    #[test]
    fn states_order_by_severity() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Isolated);
        assert_eq!(HealthState::Degraded.label(), "degraded");
    }
}
