//! Transport-agnostic service API — the core half of the serving
//! boundary (ISSUE 10).
//!
//! [`OptimizerService`] grew up being called through `Arc`s shared within
//! one process. A network gateway needs a different shape: a closed set
//! of request/response values that can be serialized, dispatched, and
//! answered without the caller holding any service internals. This module
//! is that seam:
//!
//! * [`ApiRequest`] / [`ApiResponse`] — the complete service surface a
//!   remote caller can reach (optimize, execution feedback, admin);
//! * [`dispatch`] — one pure-ish function from request to response over a
//!   service reference, shared by every transport (the in-process
//!   examples, `neo-gateway`'s TCP loop, and tests);
//! * [`AdminHooks`] — the cluster-role escape hatch: `resign` and role
//!   metadata live above the service (in `neo-cluster`'s node), so the
//!   transport injects them instead of the service knowing about leases.
//!
//! Serialization lives **outside** this module (in `neo-gateway`'s wire
//! codec): requests here are plain owned values, so any future transport
//! (HTTP, shared memory, a different frame format) reuses the same
//! dispatch and the same tests.

use crate::service::{OptimizeOutcome, OptimizerService};
use neo_obs::{JsonNode, TraceId};
use neo_query::{PlanNode, Query, QueryFingerprint};

/// Everything a remote caller can ask of a serving node.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiRequest {
    /// Optimize one query and return the chosen plan.
    Optimize {
        /// The query to optimize (validated against the node's schema by
        /// the search itself; an invalid query fails the search, not the
        /// transport).
        query: Query,
    },
    /// Report one observed execution back into the learning loop
    /// (the paper's Fig. 1 feedback edge, crossing the wire).
    ReportExecution {
        /// The executed query.
        query: Query,
        /// The plan that ran.
        plan: PlanNode,
        /// Observed wall-clock latency, milliseconds. Non-finite or
        /// negative values are rejected at this boundary.
        latency_ms: f64,
    },
    /// Full stats: generation/term, cache stats, metrics snapshot.
    Stats,
    /// Cheap liveness probe: role, generation, term.
    Health,
    /// The span waterfall recorded for one trace id (how a client
    /// verifies its propagated trace landed inside the server).
    Trace {
        /// Raw trace id (see [`neo_obs::TraceId`]).
        trace: u64,
    },
    /// Ask the node to resign leadership (no-op on non-leaders).
    Resign,
}

/// What [`dispatch`] answers with.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiResponse {
    /// Answer to [`ApiRequest::Optimize`].
    Optimize(OptimizeReply),
    /// Answer to feedback/admin verbs: was the action accepted?
    Ack {
        /// True when the report/resign was accepted and applied.
        accepted: bool,
    },
    /// A rendered JSON document (stats, health, trace waterfalls).
    Json(String),
}

/// The wire-shaped subset of [`OptimizeOutcome`]: everything a remote
/// client needs, nothing that drags service internals (search stats and
/// per-query traces stay node-local; the trace *id* travels instead).
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizeReply {
    /// The query's id (as submitted).
    pub query_id: String,
    /// Canonical structural fingerprint (the cache key).
    pub fingerprint: QueryFingerprint,
    /// The chosen physical plan.
    pub plan: PlanNode,
    /// True when the plan came from the plan cache.
    pub cache_hit: bool,
    /// Model generation whose weights chose the plan.
    pub model_generation: u64,
    /// Server-side optimize latency, milliseconds.
    pub optimize_ms: f64,
    /// The model's predicted latency for the plan (None on cache hits).
    pub predicted_ms: Option<f64>,
}

impl From<OptimizeOutcome> for OptimizeReply {
    fn from(o: OptimizeOutcome) -> Self {
        OptimizeReply {
            query_id: o.query_id,
            fingerprint: o.fingerprint,
            plan: o.plan,
            cache_hit: o.cache_hit,
            model_generation: o.model_generation,
            optimize_ms: o.optimize_ms,
            predicted_ms: o.predicted_ms,
        }
    }
}

/// Node-level admin the service itself cannot answer: leadership and
/// role identity live in the cluster layer, so transports inject them.
pub trait AdminHooks: Send + Sync {
    /// The node's name (lease holder id, span labels).
    fn node(&self) -> String {
        "standalone".to_string()
    }

    /// The node's current role (`leader` / `follower` / `standalone`).
    fn role(&self) -> String {
        "standalone".to_string()
    }

    /// Resign leadership. Default: nothing to resign.
    fn resign(&self) -> bool {
        false
    }
}

/// Hooks for a service running outside any cluster.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHooks;

impl AdminHooks for NoHooks {}

/// Dispatches one API request against a service. Every transport calls
/// this — the behavior of a verb is defined here once, so an in-process
/// caller and a TCP client observe identical semantics.
pub fn dispatch(
    service: &OptimizerService,
    hooks: &dyn AdminHooks,
    request: ApiRequest,
) -> ApiResponse {
    match request {
        ApiRequest::Optimize { query } => {
            ApiResponse::Optimize(OptimizeReply::from(service.optimize(&query)))
        }
        ApiRequest::ReportExecution {
            query,
            plan,
            latency_ms,
        } => {
            // The sink re-checks, but rejecting here gives the remote
            // caller an honest ack instead of a silent drop.
            if !latency_ms.is_finite() || latency_ms < 0.0 {
                return ApiResponse::Ack { accepted: false };
            }
            service.report_execution(&query, &plan, latency_ms);
            ApiResponse::Ack { accepted: true }
        }
        ApiRequest::Stats => {
            let cache = service.cache_stats();
            let mut cache_node = JsonNode::obj();
            cache_node.push("hits", JsonNode::U64(cache.hits));
            cache_node.push("misses", JsonNode::U64(cache.misses));
            cache_node.push("insertions", JsonNode::U64(cache.insertions));
            cache_node.push("evictions", JsonNode::U64(cache.evictions));
            cache_node.push("hit_rate", JsonNode::f64_rounded(cache.hit_rate(), 4));
            let mut node = status_node(service, hooks);
            node.push("cache", cache_node);
            node.push("metrics", service.metrics_snapshot().to_node());
            ApiResponse::Json(node.render())
        }
        ApiRequest::Health => ApiResponse::Json(status_node(service, hooks).render()),
        ApiRequest::Trace { trace } => {
            ApiResponse::Json(service.span_ring().trace_to_node(TraceId(trace)).render())
        }
        ApiRequest::Resign => ApiResponse::Ack {
            accepted: hooks.resign(),
        },
    }
}

/// The shared `{node, role, generation, term}` prefix of stats/health.
fn status_node(service: &OptimizerService, hooks: &dyn AdminHooks) -> JsonNode {
    let mut node = JsonNode::obj();
    node.push("node", JsonNode::Str(hooks.node()));
    node.push("role", JsonNode::Str(hooks.role()));
    node.push("generation", JsonNode::U64(service.model_generation()));
    node.push("term", JsonNode::U64(service.model_term()));
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use neo::{Featurization, Featurizer, NetConfig, ValueNet};
    use std::sync::Arc;

    fn tiny_service() -> (OptimizerService, Vec<Query>) {
        let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, 7));
        let workload = neo_query::workload::job::generate(&db, 7);
        let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
        let net = Arc::new(ValueNet::new(
            featurizer.query_dim(),
            featurizer.plan_channels(),
            NetConfig::default(),
            7,
        ));
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        (
            OptimizerService::new(db, featurizer, net, cfg),
            workload.queries,
        )
    }

    #[test]
    fn optimize_round_trip_matches_direct_call() {
        let (service, queries) = tiny_service();
        let q = queries[0].clone();
        let direct = service.optimize(&q);
        let via_api = dispatch(&service, &NoHooks, ApiRequest::Optimize { query: q });
        match via_api {
            ApiResponse::Optimize(reply) => {
                assert_eq!(reply.query_id, direct.query_id);
                assert_eq!(reply.fingerprint, direct.fingerprint);
                // Same model generation + deterministic search ⇒ same plan.
                assert_eq!(reply.plan, direct.plan);
                assert_eq!(reply.model_generation, direct.model_generation);
            }
            other => panic!("expected Optimize response, got {other:?}"),
        }
    }

    #[test]
    fn report_rejects_nonfinite_latency() {
        let (service, queries) = tiny_service();
        let q = queries[0].clone();
        let plan = service.optimize(&q).plan;
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let resp = dispatch(
                &service,
                &NoHooks,
                ApiRequest::ReportExecution {
                    query: q.clone(),
                    plan: plan.clone(),
                    latency_ms: bad,
                },
            );
            assert_eq!(resp, ApiResponse::Ack { accepted: false });
        }
        let ok = dispatch(
            &service,
            &NoHooks,
            ApiRequest::ReportExecution {
                query: q,
                plan,
                latency_ms: 3.5,
            },
        );
        assert_eq!(ok, ApiResponse::Ack { accepted: true });
    }

    #[test]
    fn stats_and_health_render_valid_json() {
        let (service, queries) = tiny_service();
        service.optimize(&queries[0]);
        for req in [ApiRequest::Stats, ApiRequest::Health] {
            match dispatch(&service, &NoHooks, req) {
                ApiResponse::Json(s) => {
                    neo_obs::validate(&s).expect("dispatch must render valid JSON");
                    assert!(s.contains("\"role\": \"standalone\""));
                }
                other => panic!("expected Json, got {other:?}"),
            }
        }
    }

    #[test]
    fn resign_without_hooks_is_refused() {
        let (service, _) = tiny_service();
        let resp = dispatch(&service, &NoHooks, ApiRequest::Resign);
        assert_eq!(resp, ApiResponse::Ack { accepted: false });
    }
}
