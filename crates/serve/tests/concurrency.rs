//! Loom-free concurrency sanity test (ISSUE 2 satellite, wired into CI's
//! regular `cargo test`): several workers optimize a shared workload
//! concurrently; afterwards no lock may be poisoned and every chosen plan
//! must be byte-identical to a single-threaded reference run.

use neo::{
    best_first_search, Featurization, Featurizer, NetConfig, SearchBudget, ValueNet,
    DEFAULT_WAVEFRONT,
};
use neo_query::{workload::job, Query};
use neo_serve::{OptimizerService, ServeConfig};
use std::sync::Arc;

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    net: Arc<ValueNet>,
    queries: Vec<Query>,
}

fn fixture() -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, 11));
    let queries: Vec<Query> = job::generate(&db, 11)
        .queries
        .into_iter()
        .filter(|q| q.num_relations() <= 7)
        .take(10)
        .collect();
    assert!(queries.len() >= 8, "fixture needs a real workload");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::OneHot));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        11,
    ));
    Fixture {
        db,
        featurizer,
        net,
        queries,
    }
}

#[test]
fn concurrent_serving_matches_single_threaded_search() {
    let fx = fixture();
    let base_expansions = 12;

    // Single-threaded reference: plain best_first_search per query, the
    // same budget rule the service applies.
    let reference: Vec<_> = fx
        .queries
        .iter()
        .map(|q| {
            let budget = SearchBudget::expansions(base_expansions + 3 * q.num_relations())
                .with_wavefront(DEFAULT_WAVEFRONT);
            best_first_search(&fx.net, &fx.featurizer, &fx.db, q, budget, None).0
        })
        .collect();

    // A stream with every query repeated (hits exercise the cache under
    // contention), optimized by a 4-worker service.
    let mut stream = fx.queries.clone();
    stream.extend(fx.queries.iter().cloned());
    let service = OptimizerService::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        ServeConfig {
            workers: 4,
            cache_shards: 8,
            search_base_expansions: base_expansions,
            ..Default::default()
        },
    );
    let outcomes = service.optimize_stream(&stream);
    assert_eq!(outcomes.len(), stream.len());

    for (i, outcome) in outcomes.iter().enumerate() {
        let expected = &reference[i % fx.queries.len()];
        assert_eq!(
            &outcome.plan, expected,
            "query {} diverged from the single-threaded plan (hit={})",
            outcome.query_id, outcome.cache_hit
        );
    }

    assert!(!service.cache().any_poisoned(), "no lock may be poisoned");
    let stats = service.cache_stats();
    // Every query was seen twice; at least the strictly-later repeats of
    // already-completed searches must hit (races on in-flight duplicates
    // may legitimately re-search).
    assert!(stats.hits > 0, "repeats produced no cache hits: {stats:?}");
    assert_eq!(stats.hits + stats.misses, stream.len() as u64);
}

#[test]
fn many_streams_from_many_threads_share_one_service() {
    let fx = fixture();
    let service = Arc::new(OptimizerService::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    ));
    // Four client threads all submit the same workload concurrently (the
    // "millions of users" shape at miniature scale); plans must agree.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let queries = fx.queries.clone();
            std::thread::spawn(move || {
                queries
                    .iter()
                    .map(|q| service.optimize(q).plan)
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let results: Vec<Vec<_>> = handles.into_iter().map(neo_serve::join_named).collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "clients disagreed on plans");
    }
    assert!(!service.cache().any_poisoned());
}
