//! Swap-path coverage (ISSUE 3): hot model swaps under concurrent serving
//! must never produce a torn plan. Every concurrently chosen plan has to
//! be byte-identical to the single-threaded reference plan of **some**
//! model generation — specifically the generation stamped on the outcome.

use neo::{
    best_first_search, Featurization, Featurizer, NetConfig, SearchBudget, ValueNet,
    DEFAULT_WAVEFRONT,
};
use neo_query::{workload::job, PlanNode, Query};
use neo_serve::{OptimizerService, ServeConfig};
use std::sync::Arc;

const BASE_EXPANSIONS: usize = 12;

fn net_cfg() -> NetConfig {
    NetConfig {
        query_layers: vec![32, 16],
        conv_channels: vec![16, 8],
        head_layers: vec![16],
        lr: 1e-2,
        grad_clip: 5.0,
        ignore_structure: false,
    }
}

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    /// Model generations 0..N, distinct weights each.
    nets: Vec<Arc<ValueNet>>,
    queries: Vec<Query>,
    /// `reference[g][i]` = single-threaded plan for query `i` under
    /// generation `g`.
    reference: Vec<Vec<PlanNode>>,
}

fn fixture(generations: usize) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, 21));
    let queries: Vec<Query> = job::generate(&db, 21)
        .queries
        .into_iter()
        .filter(|q| (4..=7).contains(&q.num_relations()))
        .take(8)
        .collect();
    assert!(queries.len() >= 6, "fixture needs a real workload");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::OneHot));
    let nets: Vec<Arc<ValueNet>> = (0..generations as u64)
        .map(|seed| {
            Arc::new(ValueNet::new(
                featurizer.query_dim(),
                featurizer.plan_channels(),
                net_cfg(),
                1000 + seed,
            ))
        })
        .collect();
    let reference: Vec<Vec<PlanNode>> = nets
        .iter()
        .map(|net| {
            queries
                .iter()
                .map(|q| {
                    let budget = SearchBudget::expansions(BASE_EXPANSIONS + 3 * q.num_relations())
                        .with_wavefront(DEFAULT_WAVEFRONT);
                    best_first_search(net, &featurizer, &db, q, budget, None).0
                })
                .collect()
        })
        .collect();
    Fixture {
        db,
        featurizer,
        nets,
        queries,
        reference,
    }
}

/// The distinct generations must actually disagree somewhere, or the test
/// below proves nothing.
fn assert_generations_distinguishable(fx: &Fixture) {
    let distinguishable = (1..fx.reference.len()).any(|g| fx.reference[g] != fx.reference[0]);
    assert!(
        distinguishable,
        "every generation chose identical plans; pick different seeds"
    );
}

#[test]
fn concurrent_optimize_during_swaps_matches_some_generation_exactly() {
    let generations = 3;
    let fx = fixture(generations);
    assert_generations_distinguishable(&fx);

    // Cache off: every outcome is a genuine search, so every outcome must
    // match its stamped generation's reference plan bit-for-bit.
    let service = Arc::new(OptimizerService::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.nets[0]),
        ServeConfig {
            workers: 4,
            use_cache: false,
            search_base_expansions: BASE_EXPANSIONS,
            ..Default::default()
        },
    ));

    // A long stream of repeats so searches are in flight across each swap.
    let mut stream: Vec<Query> = Vec::new();
    for _ in 0..6 {
        stream.extend(fx.queries.iter().cloned());
    }

    // Publisher thread: hot-swap through the remaining generations while
    // the stream runs.
    let publisher = {
        let service = Arc::clone(&service);
        let nets = fx.nets.clone();
        std::thread::spawn(move || {
            for net in nets.into_iter().skip(1) {
                std::thread::sleep(std::time::Duration::from_millis(30));
                service.publish_model(net);
            }
        })
    };

    let outcomes = service.optimize_stream(&stream);
    neo_serve::join_named(publisher);

    assert_eq!(outcomes.len(), stream.len());
    let mut seen_generations = std::collections::HashSet::new();
    for (i, o) in outcomes.iter().enumerate() {
        let g = o.model_generation as usize;
        assert!(g < generations, "generation {g} out of range");
        seen_generations.insert(g);
        let expected = &fx.reference[g][i % fx.queries.len()];
        assert_eq!(
            &o.plan, expected,
            "query {} (stream index {i}) diverged from its stamped \
             generation {g}'s single-threaded plan — torn model read?",
            o.query_id
        );
    }
    assert!(!service.cache().any_poisoned());
    assert_eq!(service.model_generation(), generations as u64 - 1);
    // At least the initial generation must have served; on most schedules
    // several do. (Not asserting >1: a very fast host could finish the
    // stream before the first swap, and that is still correct behaviour.)
    assert!(!seen_generations.is_empty());
}

#[test]
fn publish_model_flushes_cache_and_demotes_seeds() {
    let fx = fixture(2);
    let service = OptimizerService::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.nets[0]),
        ServeConfig {
            workers: 1,
            search_base_expansions: BASE_EXPANSIONS,
            ..Default::default()
        },
    );
    let q = &fx.queries[0];
    let first = service.optimize(q);
    assert!(!first.cache_hit);
    assert_eq!(first.model_generation, 0);
    let hit = service.optimize(q);
    assert!(hit.cache_hit, "repeat must hit the cache");

    // Swap: the cached plan is demoted to a seed, not discarded.
    assert_eq!(service.publish_model(Arc::clone(&fx.nets[1])), 1);
    assert_eq!(service.model_generation(), 1);
    assert!(service.cache().is_empty(), "publish must flush the cache");
    assert_eq!(
        service.cache().seed(first.fingerprint).as_deref(),
        Some(&first.plan),
        "flushed plan must become the fingerprint's warm-start seed"
    );

    // The re-search runs under generation 1, warm-started by the seed.
    let re = service.optimize(q);
    assert!(!re.cache_hit);
    assert_eq!(re.model_generation, 1);
    let stats = re.search.expect("miss must search");
    assert!(stats.seeded, "post-swap search must be seeded");
    // Generation 1's reference for this query was computed unseeded; the
    // seeded result must be at least as good under gen-1's own scoring,
    // and with an exhaustive-ish budget it is exactly the argmin over
    // {seed} ∪ {found}: still deterministic.
    let again = service.optimize(q);
    assert!(again.cache_hit);
    assert_eq!(again.plan, re.plan, "seeded search must stay deterministic");
}

/// Same-weights republishing (retrain that changed nothing): plans after
/// the swap equal plans before it, proving the swap machinery itself never
/// perturbs choices.
#[test]
fn republishing_identical_weights_preserves_plans() {
    let fx = fixture(1);
    let service = OptimizerService::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.nets[0]),
        ServeConfig {
            workers: 2,
            search_base_expansions: BASE_EXPANSIONS,
            ..Default::default()
        },
    );
    let before = service.optimize_stream(&fx.queries);
    service.publish_model(Arc::clone(&fx.nets[0]));
    let after = service.optimize_stream(&fx.queries);
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.plan, a.plan, "identical weights, identical plans");
        assert_eq!(a.model_generation, 1);
    }
}
