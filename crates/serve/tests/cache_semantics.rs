//! Plan-cache semantics through the full service (ISSUE 2 satellite):
//! hit/miss on identical vs perturbed queries, and epoch invalidation
//! flushing all shards.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_query::{workload::job, Predicate, Query};
use neo_serve::{OptimizerService, ServeConfig};
use std::sync::Arc;

fn service(workers: usize) -> (OptimizerService, Vec<Query>) {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, 5));
    let queries: Vec<Query> = job::generate(&db, 5)
        .queries
        .into_iter()
        .filter(|q| q.num_relations() <= 6)
        .take(6)
        .collect();
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::OneHot));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        5,
    ));
    let cfg = ServeConfig {
        workers,
        cache_shards: 8,
        ..Default::default()
    };
    (OptimizerService::new(db, featurizer, net, cfg), queries)
}

/// Perturbs the first integer predicate constant (or appends to a string
/// one), keeping structure identical.
fn perturbed(q: &Query) -> Query {
    let mut out = q.clone();
    out.id = format!("{}-perturbed", q.id);
    match out
        .predicates
        .first_mut()
        .expect("JOB queries carry predicates")
    {
        Predicate::IntCmp { value, .. } => *value += 3,
        Predicate::IntBetween { hi, .. } => *hi += 3,
        Predicate::StrEq { value, .. } => value.push('x'),
        Predicate::StrContains { needle, .. } => needle.push('x'),
    }
    out
}

#[test]
fn identical_query_hits_perturbed_query_misses() {
    let (service, queries) = service(1);
    let q = &queries[0];

    let cold = service.optimize(q);
    assert!(!cold.cache_hit, "first sight must search");
    assert!(cold.search.is_some());

    let warm = service.optimize(q);
    assert!(warm.cache_hit, "identical repeat must hit");
    assert!(warm.search.is_none(), "a hit performs no NN work");
    assert_eq!(warm.plan, cold.plan, "cached plan is the searched plan");

    // Same structure, different id + reordered lists: still a hit.
    let mut iso = q.clone();
    iso.id = "isomorphic".into();
    iso.joins.reverse();
    iso.predicates.reverse();
    let iso_out = service.optimize(&iso);
    assert!(iso_out.cache_hit, "isomorphic repeat must hit");
    assert_eq!(iso_out.plan, cold.plan);

    // Perturbed constant: different fingerprint, fresh search.
    let p = perturbed(q);
    let p_out = service.optimize(&p);
    assert!(!p_out.cache_hit, "perturbed constants must miss");
    assert_ne!(p_out.fingerprint, cold.fingerprint);

    let stats = service.cache_stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.insertions, 2); // cold + perturbed
}

#[test]
fn epoch_invalidation_flushes_all_shards_and_forces_research() {
    let (service, queries) = service(2);
    // Fill the cache across shards.
    let outcomes = service.optimize_stream(&queries);
    assert!(outcomes.iter().all(|o| !o.cache_hit));
    let filled: usize = service.cache().len();
    assert_eq!(filled, queries.len());
    assert!(
        service
            .cache()
            .shard_sizes()
            .iter()
            .filter(|&&n| n > 0)
            .count()
            > 1,
        "queries should spread over multiple shards: {:?}",
        service.cache().shard_sizes()
    );

    // Warm pass: everything hits.
    let warm = service.optimize_stream(&queries);
    assert!(warm.iter().all(|o| o.cache_hit));

    // Refinement epoch: every shard flushed, epoch bumped.
    let epoch = service.begin_refinement_epoch();
    assert_eq!(epoch, 1);
    assert!(service.cache().is_empty(), "flush must cover all shards");
    assert!(service.cache().shard_sizes().iter().all(|&n| n == 0));

    // Post-flush pass: all searches again, then hits return.
    let cold_again = service.optimize_stream(&queries);
    assert!(cold_again.iter().all(|o| !o.cache_hit));
    let warm_again = service.optimize_stream(&queries);
    assert!(warm_again.iter().all(|o| o.cache_hit));
    assert!(!service.cache().any_poisoned());
}

#[test]
fn cache_disabled_never_hits() {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, 5));
    let q = job::generate(&db, 5)
        .queries
        .into_iter()
        .find(|q| q.num_relations() <= 5)
        .unwrap();
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::OneHot));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig {
            query_layers: vec![16, 8],
            conv_channels: vec![8, 8],
            head_layers: vec![8],
            lr: 1e-2,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        5,
    ));
    let cfg = ServeConfig {
        workers: 1,
        use_cache: false,
        ..Default::default()
    };
    let service = OptimizerService::new(db, featurizer, net, cfg);
    let a = service.optimize(&q);
    let b = service.optimize(&q);
    assert!(!a.cache_hit && !b.cache_hit);
    assert_eq!(a.plan, b.plan, "search stays deterministic");
    assert_eq!(service.cache_stats().insertions, 0);
}
