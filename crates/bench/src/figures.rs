//! One function per paper table/figure (§6), plus the ablations called out
//! in DESIGN.md §4. All print aligned text tables to stdout.

use crate::harness::{
    build_db, build_workload, featurization_name, run_learning, split_workload, Preset,
    WorkloadKind,
};
use crate::{mean, section, variance};
use neo::{AuxCardSource, CostKind, FeaturizationChoice, Neo, SearchBudget};
use neo_engine::{true_latency, CardinalityOracle, Engine, Executor};
use neo_expert::postgres_expert;
use neo_query::{JoinEdge, PartialPlan, PlanNode, Predicate, Query};
use std::collections::HashMap;
use std::time::Instant;

/// Figures 9, 10 and 11 share their learning runs: final relative
/// performance, learning curves, and wall-clock-to-milestone, for every
/// engine × workload with the R-Vector featurization.
pub fn fig9_to_11(preset: &Preset) {
    fig9_to_11_filtered(preset, &WorkloadKind::ALL)
}

/// [`fig9_to_11`] restricted to a subset of workloads (the `--only` flag).
pub fn fig9_to_11_filtered(preset: &Preset, kinds: &[WorkloadKind]) {
    let mut records = Vec::new();
    for &kind in kinds {
        let db = build_db(kind, preset);
        for engine in Engine::ALL {
            eprintln!("[fig9-11] running {} on {} ...", kind.name(), engine.name());
            let rec = run_learning(
                &db,
                kind,
                engine,
                FeaturizationChoice::RVectorJoins,
                preset,
                preset.seed,
            );
            records.push(rec);
        }
    }

    section("Figure 9: relative query performance vs native optimizer (lower is better)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "PostgreSQL", "SQLite", "SQL Server", "Oracle"
    );
    for &kind in kinds {
        let row: Vec<f64> = Engine::ALL
            .iter()
            .map(|e| {
                records
                    .iter()
                    .find(|r| r.workload == kind.name() && r.engine == *e)
                    .map(|r| r.final_relative())
                    .unwrap_or(f64::NAN)
            })
            .collect();
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            kind.name(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }

    section("Figure 10: learning curves (normalized test latency vs native optimizer)");
    for rec in &records {
        println!(
            "\n--- {} on {} (PostgreSQL-plans baseline = {:.3}) ---",
            rec.workload,
            rec.engine.name(),
            rec.curve
                .first()
                .map(|c| c.norm_vs_native / c.norm_vs_pg.max(1e-9))
                .unwrap_or(f64::NAN),
        );
        println!(
            "{:>4} {:>13} {:>13} {:>13} {:>13} {:>9}",
            "ep", "med vs nat", "tot vs nat", "med vs PG", "tot vs PG", "loss"
        );
        for c in &rec.curve {
            println!(
                "{:>4} {:>13.3} {:>13.3} {:>13.3} {:>13.3} {:>9.4}",
                c.episode,
                c.median_vs_native,
                c.norm_vs_native,
                c.median_vs_pg,
                c.norm_vs_pg,
                c.loss
            );
        }
    }

    section("Figure 11: training time to match baselines (minutes: NN wall + simulated exec)");
    println!(
        "{:<12} {:<12} {:>22} {:>22}",
        "workload", "engine", "match PostgreSQL plans", "match native optimizer"
    );
    for rec in &records {
        let fmt = |m: Option<(f64, f64)>| match m {
            Some((nn, ex)) => format!("{:.1}nn + {:.1}ex", nn, ex),
            None => "not reached".to_string(),
        };
        println!(
            "{:<12} {:<12} {:>22} {:>22}",
            rec.workload,
            rec.engine.name(),
            fmt(rec.milestone(false)),
            fmt(rec.milestone(true))
        );
    }
}

/// Figure 12: featurization ablation on JOB across all four engines.
pub fn fig12(preset: &Preset) {
    let db = build_db(WorkloadKind::Job, preset);
    section(
        "Figure 12: Neo's performance per featurization (JOB, relative to native; lower is better)",
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "featurization", "PostgreSQL", "SQLite", "SQL Server", "Oracle"
    );
    for feat in FeaturizationChoice::ALL {
        let mut row = Vec::new();
        for engine in Engine::ALL {
            eprintln!(
                "[fig12] {} on {} ...",
                featurization_name(feat),
                engine.name()
            );
            let rec = run_learning(&db, WorkloadKind::Job, engine, feat, preset, preset.seed);
            row.push(rec.final_relative());
        }
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            featurization_name(feat),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
}

/// Figure 13: generalization to entirely-new queries (Ext-JOB), zero-shot
/// and after 5 additional episodes.
pub fn fig13(preset: &Preset) {
    let db = build_db(WorkloadKind::Job, preset);
    let wl = build_workload(&db, WorkloadKind::Job, preset);
    let (train, _) = split_workload(&wl, WorkloadKind::Job, preset.seed);
    let ext = neo_query::workload::ext_job::generate(&db, preset.seed);

    section("Figure 13: performance on entirely new queries (Ext-JOB; relative to native)");
    println!(
        "{:<22} {:<12} {:>12} {:>18}",
        "featurization", "engine", "zero-shot", "after 5 episodes"
    );
    // Quick mode contrasts the two extremes (R-Vectors vs 1-Hot); the full
    // preset runs all four featurizations as in the paper.
    let full_mode = preset.queries_per_workload == usize::MAX;
    let feats: &[FeaturizationChoice] = if full_mode {
        &FeaturizationChoice::ALL
    } else {
        &[
            FeaturizationChoice::RVectorJoins,
            FeaturizationChoice::OneHot,
        ]
    };
    let engines: &[Engine] = if full_mode {
        &Engine::ALL
    } else {
        &[Engine::PostgresLike, Engine::MsSqlLike]
    };
    for &feat in feats {
        for &engine in engines {
            eprintln!(
                "[fig13] {} on {} ...",
                featurization_name(feat),
                engine.name()
            );
            let mut cfg = preset.neo.clone();
            cfg.featurization = feat;
            cfg.seed = preset.seed;
            // Native baseline on Ext-JOB.
            let profile = engine.profile();
            let mut oracle = CardinalityOracle::new();
            let mut native_total = 0.0;
            for q in &ext.queries {
                let plan = neo_expert::native_optimize(&db, q, engine, &mut oracle);
                native_total += true_latency(&db, q, &profile, &mut oracle, &plan);
            }
            let mut neo = Neo::bootstrap(&db, engine, train.clone(), cfg);
            for ep in 1..=preset.episodes {
                neo.run_episode(ep);
            }
            let zero: f64 = neo.evaluate(&ext.queries).iter().sum();
            neo.extend_training(ext.queries.clone());
            for ep in 0..5 {
                neo.run_episode(preset.episodes + 1 + ep);
            }
            let after: f64 = neo.evaluate(&ext.queries).iter().sum();
            println!(
                "{:<22} {:<12} {:>12.3} {:>18.3}",
                featurization_name(feat),
                engine.name(),
                zero / native_total,
                after / native_total
            );
        }
    }
}

/// Figure 14: robustness to cardinality estimation errors. Trains one model
/// on PostgreSQL estimates and one on true cardinalities (extra per-node
/// feature), then histograms value-network outputs under injected errors of
/// 0 / 2 / 5 orders of magnitude, split by join count.
pub fn fig14(preset: &Preset) {
    let db = build_db(WorkloadKind::Job, preset);
    let wl = build_workload(&db, WorkloadKind::Job, preset);
    let (train, _) = split_workload(&wl, WorkloadKind::Job, preset.seed);

    section("Figure 14: value-network output distributions under injected cardinality error");
    for (label, source) in [
        ("PostgreSQL estimates", AuxCardSource::PostgresEstimate),
        ("true cardinality", AuxCardSource::TrueCardinality),
    ] {
        eprintln!("[fig14] training model with {label} feature ...");
        let mut cfg = preset.neo.clone();
        cfg.featurization = FeaturizationChoice::Histogram;
        cfg.aux_card = source;
        cfg.seed = preset.seed;
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, train.clone(), cfg);
        for ep in 1..=preset.episodes.min(4) {
            neo.run_episode(ep);
        }
        // Probe states: subtree states of experienced plans.
        let refs: Vec<&Query> = train.iter().collect();
        let samples = neo.experience.training_samples(&refs);
        let by_id: HashMap<&str, &Query> = train.iter().map(|q| (q.id.as_str(), q)).collect();
        println!("\nModel fed with {label}:");
        println!(
            "{:>8} {:>18} {:>18}",
            "error", "var (<=3 joins)", "var (>3 joins)"
        );
        for orders in [0.0, 2.0, 5.0] {
            neo.cfg.aux_error_orders = orders;
            let (mut small, mut large) = (Vec::new(), Vec::new());
            for s in samples.iter().take(400) {
                let q = by_id[s.query_id.as_str()];
                let joins = s.state.roots.iter().map(count_joins).sum::<usize>();
                let v = neo.predict_state(q, &s.state) as f64;
                if joins <= 3 {
                    small.push(v);
                } else {
                    large.push(v);
                }
            }
            println!(
                "{:>8} {:>18.4} {:>18.4}",
                orders,
                variance(&small),
                variance(&large)
            );
        }
    }
    println!(
        "\nReading: with PostgreSQL estimates, output variance grows with error only for\n\
         <=3-join states (the model learned to distrust estimates on deep joins); with\n\
         true cardinalities it grows in both groups (paper §6.4.3)."
    );
}

fn count_joins(node: &PlanNode) -> usize {
    match node {
        PlanNode::Scan { .. } => 0,
        PlanNode::Join { left, right, .. } => 1 + count_joins(left) + count_joins(right),
    }
}

/// Figure 15: per-query difference from PostgreSQL under the two cost
/// functions (workload cost vs relative cost).
pub fn fig15(preset: &Preset) {
    let db = build_db(WorkloadKind::Job, preset);
    let wl = build_workload(&db, WorkloadKind::Job, preset);
    let (train, _) = split_workload(&wl, WorkloadKind::Job, preset.seed);

    let mut per_query: HashMap<String, [f64; 3]> = HashMap::new(); // [pg, neo_wl, neo_rel]
    let mut oracle = CardinalityOracle::new();
    let profile = Engine::PostgresLike.profile();
    for q in &wl.queries {
        let pg = postgres_expert(&db, q);
        per_query.entry(q.id.clone()).or_default()[0] =
            true_latency(&db, q, &profile, &mut oracle, &pg);
    }
    for (slot, cost_kind) in [(1usize, CostKind::WorkloadLatency), (2, CostKind::Relative)] {
        eprintln!("[fig15] training with {:?} cost ...", cost_kind);
        let mut cfg = preset.neo.clone();
        cfg.cost_kind = cost_kind;
        cfg.seed = preset.seed;
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, train.clone(), cfg);
        for ep in 1..=preset.episodes {
            neo.run_episode(ep);
        }
        for q in &wl.queries {
            let (plan, _) = neo.plan_query(q);
            let lat = true_latency(&db, q, &profile, &mut neo.oracle, &plan);
            per_query.get_mut(&q.id).unwrap()[slot] = lat;
        }
    }

    section("Figure 15: per-query difference from PostgreSQL (seconds; positive = Neo faster)");
    println!(
        "{:>8} {:>16} {:>16}",
        "query", "workload cost", "relative cost"
    );
    let mut rows: Vec<(&String, &[f64; 3])> = per_query.iter().collect();
    rows.sort_by(|a, b| {
        let da = a.1[0] - a.1[1];
        let db_ = b.1[0] - b.1[1];
        db_.partial_cmp(&da).unwrap()
    });
    let (mut reg_wl, mut reg_rel) = (0usize, 0usize);
    let (mut tot_wl, mut tot_rel) = (0.0f64, 0.0f64);
    for (id, v) in &rows {
        let dwl = (v[0] - v[1]) / 1000.0;
        let drel = (v[0] - v[2]) / 1000.0;
        tot_wl += dwl;
        tot_rel += drel;
        if dwl < -1e-6 {
            reg_wl += 1;
        }
        if drel < -1e-6 {
            reg_rel += 1;
        }
        println!("{:>8} {:>16.3} {:>16.3}", id, dwl, drel);
    }
    println!("\nTotal workload acceleration: {tot_wl:.2}s (workload cost) vs {tot_rel:.2}s (relative cost)");
    println!(
        "Queries regressed vs PostgreSQL: {reg_wl} (workload cost) vs {reg_rel} (relative cost)"
    );
}

/// Figure 16: search time cutoff vs plan quality, grouped by join count,
/// plus the greedy ("hurry-up from the start", DQ-style) ablation.
pub fn fig16(preset: &Preset) {
    let db = build_db(WorkloadKind::Job, preset);
    let wl = build_workload(&db, WorkloadKind::Job, preset);
    let (train, _) = split_workload(&wl, WorkloadKind::Job, preset.seed);
    eprintln!("[fig16] training base model ...");
    let mut cfg = preset.neo.clone();
    cfg.seed = preset.seed;
    let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, train, cfg);
    for ep in 1..=preset.episodes {
        neo.run_episode(ep);
    }

    // One representative query per join count.
    let mut by_joins: Vec<(usize, Query)> = Vec::new();
    for q in &wl.queries {
        let j = q.num_joins();
        if !by_joins.iter().any(|(jj, _)| *jj == j) {
            by_joins.push((j, q.clone()));
        }
    }
    by_joins.sort_by_key(|(j, _)| *j);

    let cutoffs = [30.0, 60.0, 120.0, 250.0, 500.0];
    section("Figure 16: search time vs performance (latency relative to best observed)");
    print!("{:>7}", "joins");
    for c in cutoffs {
        print!(" {:>9}", format!("{c}ms"));
    }
    println!(" {:>9}", "greedy");
    let profile = Engine::PostgresLike.profile();
    for (joins, q) in &by_joins {
        let mut lats = Vec::new();
        for c in cutoffs {
            let (plan, _) = neo.plan_query_with_budget(q, SearchBudget::timed(c));
            lats.push(true_latency(&db, q, &profile, &mut neo.oracle, &plan));
        }
        // Greedy = zero-expansion budget: pure hurry-up mode (value
        // iteration without search, the DQ-equivalent; paper §4.2).
        let (gplan, gstats) = neo.plan_query_with_budget(q, SearchBudget::expansions(0));
        debug_assert!(gstats.hurried);
        let greedy = true_latency(&db, q, &profile, &mut neo.oracle, &gplan);
        let best = lats.iter().copied().fold(greedy, f64::min).max(1e-9);
        print!("{:>7}", joins);
        for l in &lats {
            print!(" {:>9.2}", l / best);
        }
        println!(" {:>9.2}", greedy / best);
    }
    println!("\n(1.00 = best plan observed across the row; greedy = search disabled.)");
}

/// Figure 17: row-vector training time per dataset, joins vs no-joins.
pub fn fig17(preset: &Preset) {
    section("Figure 17: row vector training time (wall-clock seconds)");
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "dataset", "total rows", "joins (s)", "no joins (s)"
    );
    for kind in WorkloadKind::ALL {
        let db = build_db(kind, preset);
        let (_, joins_ms) = neo::build_featurization(
            &db,
            FeaturizationChoice::RVectorJoins,
            preset.neo.emb_dim,
            preset.neo.emb_epochs,
            preset.seed,
        );
        let (_, nojoins_ms) = neo::build_featurization(
            &db,
            FeaturizationChoice::RVectorNoJoins,
            preset.neo.emb_dim,
            preset.neo.emb_epochs,
            preset.seed,
        );
        println!(
            "{:<10} {:>12} {:>14.2} {:>14.2}",
            kind.name(),
            db.total_rows(),
            joins_ms / 1e3,
            nojoins_ms / 1e3
        );
    }
    println!("\n(Joins variant is costlier everywhere; time scales with dataset size, so\n Corp > JOB > TPC-H at these scales — the paper's ordering by dataset size.)");
}

/// Table 2: cosine similarity vs true cardinality for keyword×genre pairs.
pub fn table2(preset: &Preset) {
    let mut p2 = preset.clone();
    p2.imdb_scale = p2.imdb_scale.max(0.25); // enough keywords per cluster
    let db = build_db(WorkloadKind::Job, &p2);
    eprintln!("[table2] training denormalized row vectors ...");
    let (feat, _) = neo::build_featurization(
        &db,
        FeaturizationChoice::RVectorJoins,
        32,
        p2.neo.emb_epochs.max(4),
        p2.seed,
    );
    let neo::Featurization::RVector { featurizer, .. } = feat else {
        unreachable!()
    };
    let emb = &featurizer.embedding;

    // The Fig. 8 query shape: title ⋈ movie_keyword ⋈ keyword ⋈ movie_info
    // with the genres info-type pinned.
    let title = db.table_id("title").unwrap();
    let mk = db.table_id("movie_keyword").unwrap();
    let kw = db.table_id("keyword").unwrap();
    let mi = db.table_id("movie_info").unwrap();
    let mut tables = vec![title, mk, kw, mi];
    tables.sort_unstable();
    let joins: Vec<JoinEdge> = db
        .foreign_keys
        .iter()
        .filter(|f| tables.contains(&f.from_table) && tables.contains(&f.to_table))
        .map(|f| JoinEdge {
            left_table: f.from_table,
            left_col: f.from_col,
            right_table: f.to_table,
            right_col: f.to_col,
        })
        .collect();
    let kw_col = db.tables[kw].col_id("keyword").unwrap();
    let mi_info = db.tables[mi].col_id("info").unwrap();
    let mi_type = db.tables[mi].col_id("info_type_id").unwrap();

    section("Table 2: similarity vs cardinality (correlated keywords score higher on both)");
    println!(
        "{:<10} {:<10} {:>12} {:>14}",
        "keyword", "genre", "similarity", "cardinality"
    );
    let mut oracle = CardinalityOracle::new();
    for (word, genres) in [
        ("love", ["romance", "action", "horror"]),
        ("fight", ["action", "romance", "horror"]),
    ] {
        for genre in genres {
            // Similarity: mean vector of matched keyword tokens vs genre.
            let s = db.tables[kw].columns[kw_col].as_str().unwrap();
            let matched: Vec<String> = s
                .codes_containing(word)
                .into_iter()
                .map(|c| s.decode(c).to_string())
                .collect();
            let mv = emb.mean_vector(matched.iter());
            let sim = emb
                .vector(genre)
                .map(|g| neo_embedding::cosine(&mv, g))
                .unwrap_or(0.0);
            let q = Query {
                id: format!("t2-{word}-{genre}"),
                family: "t2".into(),
                tables: tables.clone(),
                joins: joins.clone(),
                predicates: vec![
                    Predicate::StrContains {
                        table: kw,
                        col: kw_col,
                        needle: word.into(),
                    },
                    Predicate::IntCmp {
                        table: mi,
                        col: mi_type,
                        op: neo_query::CmpOp::Eq,
                        value: 2,
                    },
                    Predicate::StrEq {
                        table: mi,
                        col: mi_info,
                        value: genre.into(),
                    },
                ],
                agg: Default::default(),
            };
            q.validate(&db).unwrap();
            let card = oracle.cardinality(&db, &q, (1 << q.num_relations()) - 1);
            println!("{:<10} {:<10} {:>12.3} {:>14.0}", word, genre, sim, card);
        }
    }
}

/// §6.3.3 ablation: is demonstration even necessary?
pub fn ablation_demo(preset: &Preset) {
    let db = build_db(WorkloadKind::Job, preset);
    let wl = build_workload(&db, WorkloadKind::Job, preset);
    let (train, test) = split_workload(&wl, WorkloadKind::Job, preset.seed);
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();
    let mut pg_total = 0.0;
    for q in &test {
        let plan = postgres_expert(&db, q);
        pg_total += true_latency(&db, q, &profile, &mut oracle, &plan);
    }

    section("Ablation (paper 6.3.3): is demonstration even necessary?");
    println!("{:<28} {:>10}", "variant / episode", "vs PG");
    for (label, demo) in [
        ("with demonstration", true),
        ("no demonstration (timeout)", false),
    ] {
        eprintln!("[ablation-demo] {label} ...");
        let mut cfg = preset.neo.clone();
        cfg.demonstration = demo;
        cfg.seed = preset.seed;
        if !demo {
            cfg.timeout_cap_ms = Some(300_000.0); // the paper's ad-hoc timeout
        }
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, train.clone(), cfg);
        for ep in 1..=preset.episodes {
            neo.run_episode(ep);
        }
        let total: f64 = neo.evaluate(&test).iter().sum();
        println!("{:<28} {:>10.3}", label, total / pg_total);
    }
    println!("\n(Without demonstration the timeout clamps the reward signal and the policy\n stays far from the expert — the paper's negative result.)");
}

/// DESIGN.md ablation: value network without tree structure.
pub fn ablation_treeconv(preset: &Preset) {
    let db = build_db(WorkloadKind::Job, preset);
    section("Ablation: tree convolution vs structure-blind network (JOB on PostgreSQL)");
    println!("{:<24} {:>12}", "variant", "vs native");
    for (label, ignore) in [("tree convolution", false), ("structure severed", true)] {
        eprintln!("[ablation-treeconv] {label} ...");
        let mut p2 = preset.clone();
        p2.neo.net.ignore_structure = ignore;
        let rec = run_learning(
            &db,
            WorkloadKind::Job,
            Engine::PostgresLike,
            FeaturizationChoice::Histogram,
            &p2,
            p2.seed,
        );
        println!("{:<24} {:>12.3}", label, rec.final_relative());
    }
}

/// DESIGN.md ablation: latency-model fidelity — rank correlation between
/// the deterministic latency model and real executor wall time.
pub fn executor_vs_model(preset: &Preset) {
    use rand::{Rng, SeedableRng};
    let mut p2 = preset.clone();
    p2.imdb_scale = 0.08; // large enough for real wall times to dominate noise
    let db = build_db(WorkloadKind::Job, &p2);
    let wl = build_workload(&db, WorkloadKind::Job, &p2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(p2.seed);
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();
    for q in wl
        .queries
        .iter()
        .filter(|q| q.num_relations() <= 6)
        .take(12)
    {
        let ctx = neo_query::QueryContext::new(&db, q);
        let ex = Executor::new(&db, q);
        for _ in 0..5 {
            let mut p = PartialPlan::initial(q);
            while !p.is_complete() {
                let kids = neo_query::children(&p, &ctx);
                p = kids[rng.gen_range(0..kids.len())].clone();
            }
            let tree = p.as_complete().unwrap();
            let model = true_latency(&db, q, &profile, &mut oracle, tree);
            // Best of two runs suppresses scheduler noise.
            let mut real = f64::INFINITY;
            for _ in 0..2 {
                let t0 = Instant::now();
                let _ = ex.execute_count(tree).unwrap();
                real = real.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            pairs.push((model, real));
        }
    }
    let rho = spearman(&pairs);
    section("Ablation: latency model vs real executor wall time");
    println!("plans compared: {}", pairs.len());
    println!("Spearman rank correlation: {rho:.3}");
    println!("(High positive correlation justifies scoring plans with the model; DESIGN.md 1.)");
}

fn spearman(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len();
    let rank = |vals: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap());
        let mut r = vec![0.0; vals.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(pairs.iter().map(|p| p.0).collect());
    let rb = rank(pairs.iter().map(|p| p.1).collect());
    let ma = mean(&ra);
    let mb = mean(&rb);
    let cov: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(a, b)| (a - ma) * (b - mb))
        .sum::<f64>()
        / n as f64;
    let sa = variance(&ra).sqrt();
    let sb = variance(&rb).sqrt();
    cov / (sa * sb).max(1e-12)
}

/// `stats` subcommand: dataset and workload summaries under the preset —
/// table sizes, workload shape, and estimator difficulty per workload.
pub fn stats(preset: &Preset) {
    for kind in WorkloadKind::ALL {
        let db = build_db(kind, preset);
        section(&format!(
            "{}: database '{}' ({} tables, {} rows)",
            kind.name(),
            db.name,
            db.num_tables(),
            db.total_rows()
        ));
        println!(
            "{:<18} {:>10} {:>8} {:>8}",
            "table", "rows", "cols", "indexes"
        );
        for (t, table) in db.tables.iter().enumerate() {
            let idx = db.indexed.iter().filter(|(ti, _)| *ti == t).count();
            println!(
                "{:<18} {:>10} {:>8} {:>8}",
                table.name,
                table.num_rows(),
                table.num_cols(),
                idx
            );
        }
        let wl = build_workload(&db, kind, preset);
        let mut sizes: Vec<usize> = wl.queries.iter().map(|q| q.num_relations()).collect();
        sizes.sort_unstable();
        println!(
            "\nworkload '{}': {} queries, {}-{} relations (median {})",
            wl.name,
            wl.queries.len(),
            sizes.first().unwrap(),
            sizes.last().unwrap(),
            sizes[sizes.len() / 2]
        );
        // Estimator difficulty: mean q-error of the histogram estimator on
        // full joins — the quantity that separates the three workloads.
        let mut oracle = CardinalityOracle::new();
        let mut est = neo_expert::HistogramEstimator::new();
        let mut qerrs = Vec::new();
        for q in wl
            .queries
            .iter()
            .filter(|q| q.num_relations() <= 7)
            .take(15)
        {
            let full = (1u64 << q.num_relations()) - 1;
            let truth = oracle.cardinality(&db, q, full).max(1.0);
            let guess = neo_expert::CardEstimator::join(&mut est, &db, q, full).max(1.0);
            qerrs.push((guess / truth).max(truth / guess));
        }
        println!(
            "histogram estimator mean q-error (<=7 rel): {:.1}",
            mean(&qerrs)
        );
    }
}
