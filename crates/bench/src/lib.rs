#![warn(missing_docs)]
//! # neo-bench — experiment harness for the Neo reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§6).
//! Each experiment is a subcommand of the `neo-repro` binary; shared
//! machinery (dataset/workload construction, the learning-run driver,
//! table printing) lives here.
//!
//! Two presets: `--quick` (default; scaled-down datasets, subsampled
//! workloads, fewer episodes — minutes on a single core) and `--full`
//! (paper-shaped sizes — hours). The *shapes* of all results are preserved
//! in quick mode; absolute numbers differ by construction (see
//! EXPERIMENTS.md).

pub mod cluster_bench;
pub mod figures;
pub mod harness;
pub mod learn_bench;
pub mod serve_bench;

pub use cluster_bench::{
    run_chaos_bench, run_cluster_bench, ChaosPoint, ClusterBenchConfig, ClusterBenchReport,
};
pub use harness::{
    build_db, build_workload, run_learning, split_workload, CurvePoint, Preset, RunRecord,
    WorkloadKind,
};
pub use learn_bench::{run_learn_bench, LearnBenchConfig, LearnBenchReport};
pub use serve_bench::{run_serve_bench, ServeBenchConfig, ServeBenchReport};

/// Number of hardware threads available to this process (1 if unknown).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Wraps a bench report in the uniform `BENCH_*.json` envelope shared by
/// every experiment: bench name, host parallelism, wall-clock seconds, the
/// in-process [`neo_obs`] metrics snapshot (or `null` when the experiment
/// has none), and the experiment-specific report under `"report"`.
///
/// The assembled document is validated with [`neo_obs::validate`]; a report
/// that emits malformed JSON aborts the run here rather than producing an
/// unreadable artifact.
pub fn bench_envelope(
    bench: &str,
    wall_clock_s: f64,
    metrics: Option<&neo_obs::MetricsSnapshot>,
    report_json: &str,
) -> String {
    let metrics_json = match metrics {
        Some(snap) => snap.to_node().render(),
        None => "null".to_string(),
    };
    let out = format!(
        "{{\n\"bench\": \"{}\",\n\"available_parallelism\": {},\n\"wall_clock_s\": {:.3},\n\"metrics\": {},\n\"report\": {}\n}}\n",
        bench,
        host_parallelism(),
        wall_clock_s,
        metrics_json,
        report_json.trim_end(),
    );
    if let Err(e) = neo_obs::validate(&out) {
        panic!("bench envelope for {bench} is not valid JSON: {e}");
    }
    out
}

/// Prints a horizontal rule + section title.
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Median of a non-empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of a slice.
pub fn variance(values: &[f64]) -> f64 {
    let m = mean(values);
    mean(&values.iter().map(|v| (v - m) * (v - m)).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn envelope_is_valid_json_with_and_without_metrics() {
        let registry = neo_obs::MetricsRegistry::new();
        registry.counter("bench_test_total").add(3);
        let snap = registry.snapshot();
        let with = bench_envelope("unit", 1.25, Some(&snap), "{\"x\": 1}\n");
        assert!(neo_obs::validate(&with).is_ok());
        assert!(with.contains("\"bench\": \"unit\""));
        assert!(with.contains("bench_test_total"));
        let without = bench_envelope("unit", 0.5, None, "{\"x\": 1}");
        assert!(without.contains("\"metrics\": null"));
    }

    #[test]
    #[should_panic(expected = "not valid JSON")]
    fn envelope_rejects_malformed_report() {
        bench_envelope("unit", 0.0, None, "{\"x\": ");
    }
}
