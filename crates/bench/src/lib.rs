#![warn(missing_docs)]
//! # neo-bench — experiment harness for the Neo reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§6).
//! Each experiment is a subcommand of the `neo-repro` binary; shared
//! machinery (dataset/workload construction, the learning-run driver,
//! table printing) lives here.
//!
//! Two presets: `--quick` (default; scaled-down datasets, subsampled
//! workloads, fewer episodes — minutes on a single core) and `--full`
//! (paper-shaped sizes — hours). The *shapes* of all results are preserved
//! in quick mode; absolute numbers differ by construction (see
//! EXPERIMENTS.md).

pub mod cluster_bench;
pub mod figures;
pub mod harness;
pub mod learn_bench;
pub mod loopback_bench;
pub mod obs_report;
pub mod serve_bench;

pub use cluster_bench::{
    run_chaos_bench, run_cluster_bench, ChaosPoint, ClusterBenchConfig, ClusterBenchReport,
};
pub use harness::{
    build_db, build_workload, run_learning, split_workload, CurvePoint, Preset, RunRecord,
    WorkloadKind,
};
pub use learn_bench::{run_learn_bench, LearnBenchConfig, LearnBenchReport};
pub use loopback_bench::{run_loopback_bench, LoopbackPoint};
pub use serve_bench::{run_serve_bench, ServeBenchConfig, ServeBenchReport};

/// Number of hardware threads available to this process (1 if unknown).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Wraps a bench report in the uniform `BENCH_*.json` envelope shared by
/// every experiment: bench name, host parallelism, wall-clock seconds, the
/// in-process [`neo_obs`] metrics snapshot (or `null` when the experiment
/// has none), and the experiment-specific report under `"report"`.
///
/// The assembled document is validated with [`neo_obs::validate`]; a report
/// that emits malformed JSON aborts the run here rather than producing an
/// unreadable artifact.
pub fn bench_envelope(
    bench: &str,
    wall_clock_s: f64,
    metrics: Option<&neo_obs::MetricsSnapshot>,
    report_json: &str,
) -> String {
    let metrics_json = match metrics {
        Some(snap) => snap.to_node().render(),
        None => "null".to_string(),
    };
    let out = format!(
        "{{\n\"bench\": \"{}\",\n\"available_parallelism\": {},\n\"wall_clock_s\": {:.3},\n\"metrics\": {},\n\"report\": {}\n}}\n",
        bench,
        host_parallelism(),
        wall_clock_s,
        metrics_json,
        report_json.trim_end(),
    );
    if let Err(e) = neo_obs::validate(&out) {
        panic!("bench envelope for {bench} is not valid JSON: {e}");
    }
    out
}

/// Like [`bench_envelope`], but additionally compares this run against
/// the previously committed envelope at `baseline_path` and appends the
/// verdict as a `"regressions"` section (tentpole: cross-run regression
/// gates). Callers construct the envelope *before* overwriting the file,
/// so the baseline read here always sees the prior run.
///
/// A missing or unparseable baseline degrades to an empty comparison
/// (`compared: 0`, no findings) — first runs and renamed benches must
/// not fail. The returned [`neo_obs::RegressionReport`] lets `--gate`
/// callers exit non-zero on findings.
pub fn bench_envelope_vs_baseline(
    bench: &str,
    wall_clock_s: f64,
    metrics: Option<&neo_obs::MetricsSnapshot>,
    report_json: &str,
    baseline_path: &str,
) -> (String, neo_obs::RegressionReport) {
    let core = bench_envelope(bench, wall_clock_s, metrics, report_json);
    let regress = match std::fs::read_to_string(baseline_path) {
        Ok(text) => match neo_obs::parse(&text) {
            Ok(baseline) => {
                let current = neo_obs::parse(&core).expect("bench_envelope output parses back");
                neo_obs::regress::compare(
                    &baseline,
                    &current,
                    &neo_obs::default_rules(),
                    baseline_path,
                )
            }
            Err(e) => neo_obs::RegressionReport {
                baseline_label: format!("{baseline_path} (unparseable: {e})"),
                ..Default::default()
            },
        },
        Err(_) => neo_obs::RegressionReport {
            baseline_label: format!("{baseline_path} (missing)"),
            ..Default::default()
        },
    };
    let trimmed = core.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("bench_envelope output ends with '}'");
    let out = format!(
        "{body},\n\"regressions\": {}\n}}\n",
        regress.to_node().render()
    );
    if let Err(e) = neo_obs::validate(&out) {
        panic!("bench envelope for {bench} is not valid JSON with regressions: {e}");
    }
    (out, regress)
}

/// Prints a horizontal rule + section title.
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Median of a non-empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of a slice.
pub fn variance(values: &[f64]) -> f64 {
    let m = mean(values);
    mean(&values.iter().map(|v| (v - m) * (v - m)).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn envelope_is_valid_json_with_and_without_metrics() {
        let registry = neo_obs::MetricsRegistry::new();
        registry.counter("bench_test_total").add(3);
        let snap = registry.snapshot();
        let with = bench_envelope("unit", 1.25, Some(&snap), "{\"x\": 1}\n");
        assert!(neo_obs::validate(&with).is_ok());
        assert!(with.contains("\"bench\": \"unit\""));
        assert!(with.contains("bench_test_total"));
        let without = bench_envelope("unit", 0.5, None, "{\"x\": 1}");
        assert!(without.contains("\"metrics\": null"));
    }

    #[test]
    #[should_panic(expected = "not valid JSON")]
    fn envelope_rejects_malformed_report() {
        bench_envelope("unit", 0.0, None, "{\"x\": ");
    }

    #[test]
    fn envelope_vs_missing_baseline_compares_nothing() {
        let (out, regress) = bench_envelope_vs_baseline(
            "unit",
            0.5,
            None,
            "{\"qps\": 100.0}",
            "/nonexistent/BENCH_unit.json",
        );
        assert!(neo_obs::validate(&out).is_ok());
        assert!(out.contains("\"regressions\""));
        assert!(regress.baseline_label.ends_with("(missing)"));
        assert_eq!(regress.compared, 0);
        assert!(!regress.gate_failed());
    }

    #[test]
    fn envelope_vs_baseline_flags_a_collapse() {
        let dir = std::env::temp_dir().join(format!("neo-bench-regress-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_unit.json");
        let baseline = bench_envelope("unit", 0.5, None, "{\"qps\": 1000.0}");
        std::fs::write(&path, baseline).expect("write baseline");
        let path_str = path.to_str().expect("utf-8 temp path");
        // Jitter inside tolerance: clean bill.
        let (_, clean) =
            bench_envelope_vs_baseline("unit", 0.5, None, "{\"qps\": 900.0}", path_str);
        // Two rule-matched paths: report.qps and the envelope's own
        // wall_clock_s.
        assert_eq!(clean.compared, 2);
        assert!(!clean.gate_failed(), "{:?}", clean.findings);
        // Collapse past the 65% qps tolerance: gated.
        let (out, bad) =
            bench_envelope_vs_baseline("unit", 0.5, None, "{\"qps\": 100.0}", path_str);
        assert!(bad.gate_failed());
        assert_eq!(bad.findings[0].path, "report.qps");
        assert!(out.contains("\"findings\": ["));
        std::fs::remove_file(&path).ok();
    }
}
