#![warn(missing_docs)]
//! # neo-bench — experiment harness for the Neo reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§6).
//! Each experiment is a subcommand of the `neo-repro` binary; shared
//! machinery (dataset/workload construction, the learning-run driver,
//! table printing) lives here.
//!
//! Two presets: `--quick` (default; scaled-down datasets, subsampled
//! workloads, fewer episodes — minutes on a single core) and `--full`
//! (paper-shaped sizes — hours). The *shapes* of all results are preserved
//! in quick mode; absolute numbers differ by construction (see
//! EXPERIMENTS.md).

pub mod cluster_bench;
pub mod figures;
pub mod harness;
pub mod learn_bench;
pub mod serve_bench;

pub use cluster_bench::{
    run_chaos_bench, run_cluster_bench, ChaosPoint, ClusterBenchConfig, ClusterBenchReport,
};
pub use harness::{
    build_db, build_workload, run_learning, split_workload, CurvePoint, Preset, RunRecord,
    WorkloadKind,
};
pub use learn_bench::{run_learn_bench, LearnBenchConfig, LearnBenchReport};
pub use serve_bench::{run_serve_bench, ServeBenchConfig, ServeBenchReport};

/// Prints a horizontal rule + section title.
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Median of a non-empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of a slice.
pub fn variance(values: &[f64]) -> f64 {
    let m = mean(values);
    mean(&values.iter().map(|v| (v - m) * (v - m)).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }
}
