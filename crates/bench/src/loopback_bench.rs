//! Loopback-socket serving regime (ISSUE 10): the fleet as **separate
//! OS processes**. A leader and a follower `neo-gateway` child process
//! coordinate through a scratch checkpoint directory; this process
//! drives the leader over real TCP connections and measures what the
//! in-process regimes cannot — the full wire path: frame encode →
//! socket → accept loop → decode → dispatch → encode → socket → decode.
//!
//! Skipped gracefully (with a marker in the report) when the
//! `neo-gateway` binary is not next to the running benchmark — the rest
//! of the cluster bench is in-process and must not fail over it.

use crate::cluster_bench::ClusterBenchConfig;
use neo_gateway::GatewayClient;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Results of the loopback serving regime.
#[derive(Clone, Debug)]
pub struct LoopbackPoint {
    /// OS processes involved (leader + follower + this driver).
    pub processes: usize,
    /// Concurrent client connections driving the leader.
    pub connections: usize,
    /// Optimize requests completed across all connections.
    pub requests: u64,
    /// Wall-clock of the drive phase, ms.
    pub wall_ms: f64,
    /// Aggregate optimize round-trips per second.
    pub qps: f64,
    /// Median round-trip latency, ms (client-observed, serialization
    /// and socket included).
    pub p50_ms: f64,
    /// Tail round-trip latency, ms.
    pub p99_ms: f64,
    /// Worst round-trip, ms.
    pub max_ms: f64,
    /// Every reply decoded to the requested query id.
    pub replies_consistent: bool,
    /// Both children exited 0 after a wire-requested shutdown.
    pub clean_shutdown: bool,
}

impl LoopbackPoint {
    /// One JSON object line for `BENCH_cluster.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"processes\": {}, \"connections\": {}, \"requests\": {}, \
             \"wall_ms\": {:.1}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \
             \"replies_consistent\": {}, \"clean_shutdown\": {}}}",
            self.processes,
            self.connections,
            self.requests,
            self.wall_ms,
            self.qps,
            self.p50_ms,
            self.p99_ms,
            self.max_ms,
            self.replies_consistent,
            self.clean_shutdown
        )
    }
}

/// Locates the `neo-gateway` binary relative to the running executable:
/// a sibling in the same target directory, or (when running under the
/// test harness from `target/<profile>/deps/`) one directory up.
fn gateway_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let name = format!("neo-gateway{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?;
    for _ in 0..2 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
    None
}

struct ScratchDir(PathBuf);

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A child gateway, killed on drop unless it already exited.
struct ChildNode {
    child: Child,
    addr: String,
}

impl Drop for ChildNode {
    fn drop(&mut self) {
        if matches!(self.child.try_wait(), Ok(None)) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

fn spawn_gateway(
    binary: &Path,
    cfg: &ClusterBenchConfig,
    role: &str,
    store: &Path,
    leader_addr: Option<&str>,
) -> std::io::Result<ChildNode> {
    let mut cmd = Command::new(binary);
    cmd.args(["--role", role])
        .args(["--store", store.to_str().unwrap_or_default()])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--name", &format!("bench-{role}")])
        .args(["--scale", &format!("{}", cfg.scale)])
        .args(["--seed", &format!("{}", cfg.seed)])
        .args(["--workers", &format!("{}", cfg.workers_per_node.max(1))])
        .args(["--poll-ms", "20"])
        .args(["--lease-ttl-ms", "2000"])
        .args(["--ship-ms", "50"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(addr) = leader_addr {
        cmd.args(["--leader", addr]);
    }
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let addr = BufReader::new(stdout)
        .lines()
        .map_while(Result::ok)
        .find_map(|l| l.strip_prefix("NEO_GATEWAY_ADDR=").map(str::to_string))
        .ok_or_else(|| {
            let _ = child.kill();
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "gateway exited before announcing its address",
            )
        })?;
    Ok(ChildNode { child, addr })
}

fn wait_clean(node: &mut ChildNode) -> bool {
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        match node.child.try_wait() {
            Ok(Some(status)) => return status.success(),
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => return false,
        }
    }
    false
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the loopback regime; `None` (with a note on stderr) when the
/// gateway binary is absent.
pub fn run_loopback_bench(cfg: &ClusterBenchConfig) -> Option<LoopbackPoint> {
    let binary = match gateway_binary() {
        Some(b) => b,
        None => {
            eprintln!(
                "loopback regime SKIPPED: neo-gateway binary not found next to {} \
                 (build the workspace binaries first)",
                std::env::current_exe()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default()
            );
            return None;
        }
    };
    let scratch =
        ScratchDir(std::env::temp_dir().join(format!("neo-bench-loopback-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&scratch.0);
    std::fs::create_dir_all(&scratch.0).ok()?;
    let store = scratch.0.join("store");

    let mut leader = spawn_gateway(&binary, cfg, "leader", &store, None).ok()?;
    let mut follower = spawn_gateway(&binary, cfg, "follower", &store, Some(&leader.addr)).ok()?;

    // The children built this same deterministic fixture from scale+seed.
    let db = neo_storage::datagen::imdb::generate(cfg.scale, cfg.seed);
    let workload = neo_query::workload::job::generate(&db, cfg.seed);
    let queries: Vec<_> = workload
        .queries
        .iter()
        .take(cfg.queries.max(1))
        .cloned()
        .collect();

    // Drive phase: every connection replays the workload round-robin.
    // First pass per connection is search-bound, repeats are cache-warm —
    // the mix is the point: this measures the WIRE, not the planner.
    let connections = cfg.workers_per_node.clamp(1, 4);
    let rounds = (cfg.throughput_replicas.max(1) * 8).min(64);
    let started = Instant::now();
    let lat_per_conn: Vec<(Vec<f64>, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let queries = &queries;
                let addr = leader.addr.clone();
                scope.spawn(move || {
                    let mut client = match GatewayClient::connect(&*addr) {
                        Ok(cl) => cl,
                        Err(_) => return (Vec::new(), false),
                    };
                    let mut lats = Vec::with_capacity(rounds * queries.len());
                    let mut consistent = true;
                    for r in 0..rounds {
                        for q in queries {
                            let t = Instant::now();
                            match client.optimize(q.clone(), None) {
                                Ok(reply) => {
                                    lats.push(t.elapsed().as_secs_f64() * 1e3);
                                    consistent &= reply.query_id == q.id;
                                    // Feed some execution reports through the
                                    // wire too (the follower path exercises
                                    // the experience relay in its own tests).
                                    if r == 0 && c == 0 {
                                        consistent &= client
                                            .report_execution(
                                                q.clone(),
                                                reply.plan,
                                                reply.optimize_ms.max(0.1),
                                            )
                                            .is_ok();
                                    }
                                }
                                Err(_) => {
                                    consistent = false;
                                    break;
                                }
                            }
                        }
                    }
                    (lats, consistent)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut lats: Vec<f64> = Vec::new();
    let mut consistent = true;
    for (l, ok) in &lat_per_conn {
        lats.extend_from_slice(l);
        consistent &= *ok;
    }
    lats.sort_by(|a, b| a.total_cmp(b));
    let requests = lats.len() as u64;

    // Wire-requested shutdown, follower first (its relay ships to the
    // leader), then assert both drained and exited 0.
    let shutdown_ok = {
        let follower_down = GatewayClient::connect(&*follower.addr)
            .and_then(|mut c| c.shutdown_server())
            .unwrap_or(false)
            && wait_clean(&mut follower);
        let leader_down = GatewayClient::connect(&*leader.addr)
            .and_then(|mut c| c.shutdown_server())
            .unwrap_or(false)
            && wait_clean(&mut leader);
        follower_down && leader_down
    };

    Some(LoopbackPoint {
        processes: 3,
        connections,
        requests,
        wall_ms,
        qps: if wall_ms > 0.0 {
            requests as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        p50_ms: percentile(&lats, 0.50),
        p99_ms: percentile(&lats, 0.99),
        max_ms: lats.last().copied().unwrap_or(0.0),
        replies_consistent: consistent && requests > 0,
        clean_shutdown: shutdown_ok,
    })
}
