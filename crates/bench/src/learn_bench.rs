//! The `learn-bench` harness (ISSUE 3): drives the closed learning loop —
//! serve → execute → collect → background-retrain → hot-swap — against
//! the engine latency model and writes `BENCH_learn.json`.
//!
//! Three measurements:
//!
//! * **plan-quality trajectory** — mean chosen-plan latency of the served
//!   workload per model generation, starting from an untrained generation
//!   0, against the `neo-expert` Selinger baseline (the paper's learning
//!   curve, Fig. 10, reproduced inside the *service* instead of the
//!   offline runner). The loop is the paper's: executed plans (expert
//!   demonstrations + the service's own choices) feed the replay buffer,
//!   the background trainer retrains a clone and hot-swaps it in;
//! * **serving throughput under training** — queries-optimized/sec with
//!   the trainer idle vs. continuously retraining+swapping in the
//!   background (the "serving never blocks on training" claim, reported
//!   as a ratio);
//! * **swap latency** — the serving-visible wall-clock of each
//!   `publish_model` (slot swap + cache epoch bump), microseconds.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_learn::{BackgroundTrainer, ExperienceSink, ReplayConfig, TrainerConfig};
use neo_query::{workload::job, PartialPlan, Query};
use neo_serve::{OptimizerService, ServeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search budget base (the runner's budget rule adds `3 * |R(q)|`).
const BASE_EXPANSIONS: usize = 12;

/// How long to wait for a background generation before declaring the
/// trainer wedged.
const GENERATION_TIMEOUT: Duration = Duration::from_secs(600);

/// Sizing knobs for one learn-bench run.
#[derive(Clone, Debug)]
pub struct LearnBenchConfig {
    /// IMDB dataset scale.
    pub scale: f64,
    /// Master seed (dataset, workload, net).
    pub seed: u64,
    /// Served workload size (distinct queries).
    pub queries: usize,
    /// Background retrain generations to run.
    pub generations: usize,
    /// Minibatch epochs per generation.
    pub epochs_per_generation: usize,
    /// Minibatch size (smaller = more Adam steps per epoch; the replay
    /// snapshots here are hundreds of samples, not the runner's
    /// thousands).
    pub batch_size: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Expert-envelope factor: the final generation "matches the expert"
    /// when its mean latency is within `envelope_factor ×` the expert's.
    pub envelope_factor: f64,
    /// Stream replication for the throughput measurements.
    pub throughput_replicas: usize,
}

impl LearnBenchConfig {
    /// Default sizing: seconds of wall-clock, minutes nowhere.
    pub fn standard(seed: u64, workers: usize) -> Self {
        LearnBenchConfig {
            scale: 0.05,
            seed,
            queries: 10,
            generations: 5,
            epochs_per_generation: 30,
            batch_size: 16,
            workers: workers.max(1),
            envelope_factor: 2.0,
            throughput_replicas: 10,
        }
    }

    /// CI smoke sizing.
    pub fn smoke(seed: u64) -> Self {
        LearnBenchConfig {
            scale: 0.02,
            seed,
            queries: 6,
            generations: 3,
            epochs_per_generation: 30,
            batch_size: 16,
            workers: 2,
            envelope_factor: 2.0,
            throughput_replicas: 2,
        }
    }
}

/// One point of the plan-quality trajectory.
#[derive(Clone, Debug)]
pub struct TrajectoryPoint {
    /// Model generation serving this pass (0 = untrained).
    pub generation: u64,
    /// Mean chosen-plan latency over the workload, ms (engine model).
    pub mean_latency_ms: f64,
    /// `mean_latency_ms / expert_mean_ms`.
    pub vs_expert: f64,
    /// Mean final-epoch training loss of the retrain that *produced* this
    /// generation (0.0 for generation 0).
    pub mean_loss: f32,
    /// Training samples of that retrain (0 for generation 0).
    pub samples: usize,
    /// Publish (slot swap + epoch bump) latency of that retrain, µs.
    pub swap_us: f64,
}

/// Results of one learn-bench run (serialized to `BENCH_learn.json`).
#[derive(Clone, Debug)]
pub struct LearnBenchReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Served workload size.
    pub queries: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Background generations run.
    pub generations: usize,
    /// Mean latency of the Selinger expert's plans, ms.
    pub expert_mean_ms: f64,
    /// The per-generation learning curve.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Generation-0 (untrained) mean latency, ms.
    pub gen0_mean_ms: f64,
    /// Final-generation mean latency, ms.
    pub final_mean_ms: f64,
    /// `gen0_mean_ms / final_mean_ms` (> 1 means the loop improved).
    pub improvement_vs_gen0: f64,
    /// The envelope factor the acceptance check uses.
    pub envelope_factor: f64,
    /// `final_mean_ms <= envelope_factor * expert_mean_ms`.
    pub within_expert_envelope: bool,
    /// Queries/sec with the trainer idle (frozen model).
    pub throughput_frozen_qps: f64,
    /// Queries/sec while the trainer continuously retrains + swaps.
    pub throughput_training_qps: f64,
    /// `throughput_training_qps / throughput_frozen_qps`. The trainer is
    /// *saturated* during the measured window (back-to-back generations —
    /// the worst case, not the deployed duty cycle), so on a host with
    /// fewer cores than `workers + 1` this ratio is bounded by raw CPU
    /// sharing, not by any serving-path blocking: the only serving-visible
    /// synchronization is the `swap_mean_us`-long publish.
    pub throughput_ratio: f64,
    /// The fair CPU-share bound on `throughput_ratio` for this host: 1.0
    /// when a core is free for the trainer, else `workers / (workers+1)`
    /// (serving's share of the contended cores). A measured ratio at or
    /// near this bound demonstrates serving loses *only* scheduler time to
    /// training — nothing in the serving path blocks on the trainer.
    pub cpu_share_bound: f64,
    /// Background generations completed inside the measured window (≥ 1,
    /// or the "training" measurement measured nothing).
    pub generations_during_window: u64,
    /// Mean publish latency across generations, µs.
    pub swap_mean_us: f64,
    /// Worst publish latency, µs.
    pub swap_max_us: f64,
    /// Checkpoint save → load → identical-predictions check.
    pub checkpoint_roundtrip_ok: bool,
    /// Plans re-served after the final swap are identical across two
    /// synchronous passes (determinism per generation).
    pub stable_after_final_swap: bool,
    /// Telemetry sampler ticks taken during the training-concurrent
    /// throughput window.
    pub telemetry_ticks: u64,
    /// Time series scraped from the throughput service while the
    /// saturated trainer ran — the `learn_*` rates and backlog gauge
    /// alongside the `serve_*` rates (rendered by `obs-report`).
    pub series: Vec<neo_obs::SeriesSnapshot>,
    /// Metrics snapshot of the throughput service after its training-
    /// concurrent window: `serve_*` counters/histograms plus the `learn_*`
    /// metrics its saturated background trainer registered (surfaces as
    /// the envelope's `metrics` section in `BENCH_learn.json`).
    pub metrics: neo_obs::MetricsSnapshot,
}

fn net_cfg() -> NetConfig {
    NetConfig {
        query_layers: vec![64, 32],
        conv_channels: vec![32, 16],
        head_layers: vec![32],
        lr: 5e-3,
        grad_clip: 5.0,
        ignore_structure: false,
    }
}

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    queries: Vec<Query>,
}

fn fixture(cfg: &LearnBenchConfig) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(cfg.scale, cfg.seed));
    let queries: Vec<Query> = job::generate(&db, cfg.seed)
        .queries
        .into_iter()
        .filter(|q| (4..=8).contains(&q.num_relations()))
        .take(cfg.queries)
        .collect();
    assert!(!queries.is_empty(), "workload subset is empty");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    Fixture {
        db,
        featurizer,
        queries,
    }
}

fn service(fx: &Fixture, net: Arc<ValueNet>, workers: usize, use_cache: bool) -> OptimizerService {
    OptimizerService::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        net,
        ServeConfig {
            workers,
            use_cache,
            search_base_expansions: BASE_EXPANSIONS,
            ..Default::default()
        },
    )
}

/// Runs the full learn bench.
pub fn run_learn_bench(cfg: &LearnBenchConfig) -> LearnBenchReport {
    let fx = fixture(cfg);
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();

    // --- Expert baseline: Selinger-style plans, executed on the model.
    let expert_plans: Vec<_> = fx
        .queries
        .iter()
        .map(|q| neo_expert::postgres_expert(&fx.db, q))
        .collect();
    let expert_mean_ms = fx
        .queries
        .iter()
        .zip(&expert_plans)
        .map(|(q, p)| true_latency(&fx.db, q, &profile, &mut oracle, p))
        .sum::<f64>()
        / fx.queries.len() as f64;

    // --- The closed-loop service: untrained net (generation 0) + sink +
    // background trainer.
    let net0 = Arc::new(ValueNet::new(
        fx.featurizer.query_dim(),
        fx.featurizer.plan_channels(),
        net_cfg(),
        cfg.seed,
    ));
    let svc = Arc::new(service(&fx, Arc::clone(&net0), cfg.workers, true));
    let sink = Arc::new(ExperienceSink::default());
    assert!(svc.set_feedback(Arc::clone(&sink) as _));
    let trainer = BackgroundTrainer::spawn(
        Arc::clone(&svc),
        Arc::clone(&sink),
        ReplayConfig::default(),
        TrainerConfig {
            epochs_per_generation: cfg.epochs_per_generation,
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            ..Default::default()
        },
    );

    // Demonstration data (paper §2): the expert's executed plans are the
    // first experience the loop learns from — exactly the runner's
    // bootstrap, but flowing through the serving-side sink.
    for (q, p) in fx.queries.iter().zip(&expert_plans) {
        let latency = true_latency(&fx.db, q, &profile, &mut oracle, p);
        svc.report_execution(q, p, latency);
    }

    // --- Plan-quality trajectory: serve + execute + report per
    // generation, then retrain in the background and hot-swap.
    let mut trajectory: Vec<TrajectoryPoint> = Vec::new();
    let mut stats_by_generation: std::collections::HashMap<u64, (f32, usize, f64)> =
        Default::default();
    for g in 0..=cfg.generations as u64 {
        let outcomes = svc.optimize_stream(&fx.queries);
        let mut total = 0.0;
        for (q, o) in fx.queries.iter().zip(&outcomes) {
            let latency = true_latency(&fx.db, q, &profile, &mut oracle, &o.plan);
            total += latency;
            svc.report_outcome(q, o, latency);
        }
        let mean = total / fx.queries.len() as f64;
        let (mean_loss, samples, swap_us) = stats_by_generation
            .get(&g)
            .copied()
            .unwrap_or((0.0, 0, 0.0));
        trajectory.push(TrajectoryPoint {
            generation: g,
            mean_latency_ms: mean,
            vs_expert: mean / expert_mean_ms.max(1e-9),
            mean_loss,
            samples,
            swap_us,
        });
        if g < cfg.generations as u64 {
            trainer.request_generation();
            assert!(
                trainer.wait_for_generation(g + 1, GENERATION_TIMEOUT),
                "background generation {} never completed",
                g + 1
            );
            for h in trainer.history() {
                stats_by_generation.entry(h.model_generation).or_insert((
                    h.mean_loss,
                    h.samples,
                    h.swap_us,
                ));
            }
        }
    }
    let gen0_mean_ms = trajectory
        .first()
        .expect("trajectory non-empty")
        .mean_latency_ms;
    let final_mean_ms = trajectory
        .last()
        .expect("trajectory non-empty")
        .mean_latency_ms;

    // --- Determinism after the final swap: two passes through a
    // *cache-off* service sharing the final model must agree byte-for-byte
    // — every outcome is a genuine re-search, so this actually pins search
    // determinism under the final weights (comparing two passes on the
    // trajectory service would just hand the same cached plan back twice).
    let final_net = Arc::new((*svc.model()).clone());
    let stable_after_final_swap = {
        let vsvc = service(&fx, Arc::clone(&final_net), cfg.workers, false);
        let a: Vec<_> = vsvc
            .optimize_stream(&fx.queries)
            .into_iter()
            .map(|o| o.plan)
            .collect();
        let b: Vec<_> = vsvc
            .optimize_stream(&fx.queries)
            .into_iter()
            .map(|o| o.plan)
            .collect();
        a == b
    };

    // --- Checkpoint round-trip: the latest published generation restores
    // into a fresh net with bit-identical predictions.
    let checkpoint_roundtrip_ok = match trainer.latest_checkpoint() {
        Some(bytes) => {
            let mut restored = ValueNet::new(
                fx.featurizer.query_dim(),
                fx.featurizer.plan_channels(),
                net_cfg(),
                cfg.seed ^ 0xDEAD,
            );
            BackgroundTrainer::load_checkpoint(&bytes, &mut restored).is_ok() && {
                let served = svc.model();
                fx.queries.iter().all(|q| {
                    let qe = fx.featurizer.encode_query(&fx.db, q);
                    let enc = fx.featurizer.encode_plan(q, &PartialPlan::initial(q), None);
                    served.predict(&[&qe], &[&enc])[0] == restored.predict(&[&qe], &[&enc])[0]
                })
            }
        }
        None => false,
    };

    let history = trainer.history();
    let swap_mean_us = if history.is_empty() {
        0.0
    } else {
        history.iter().map(|h| h.swap_us).sum::<f64>() / history.len() as f64
    };
    let swap_max_us = history.iter().map(|h| h.swap_us).fold(0.0f64, f64::max);
    drop(trainer);

    // --- Throughput with vs. without a concurrent trainer. Cache off so
    // every query is a genuine search; a separate service so the
    // trajectory's cache state cannot bleed in. The trained final model
    // serves both phases.
    drop(svc);
    let tsvc = Arc::new(service(&fx, final_net, cfg.workers, false));
    let tsink = Arc::new(ExperienceSink::default());
    assert!(tsvc.set_feedback(Arc::clone(&tsink) as _));
    let mut stream: Vec<Query> = Vec::new();
    for _ in 0..cfg.throughput_replicas.max(1) {
        stream.extend(fx.queries.iter().cloned());
    }
    // Warm-up (thread spawn, scratch growth), then the frozen phase —
    // median of three timed passes to damp scheduler noise (single-core
    // hosts especially).
    let outcomes = tsvc.optimize_stream(&fx.queries);
    let mut frozen_walls: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            tsvc.optimize_stream(&stream);
            start.elapsed().as_secs_f64()
        })
        .collect();
    let throughput_frozen_qps = stream.len() as f64 / crate::median(&mut frozen_walls).max(1e-9);

    // Seed the trainer's replay with real observations (one pass over the
    // workload) so its background generations do full-size retrains
    // during the measured phase.
    for (q, o) in fx.queries.iter().zip(&outcomes) {
        let latency = true_latency(&fx.db, q, &profile, &mut oracle, &o.plan);
        tsvc.report_outcome(q, o, latency);
    }
    let ttrainer = BackgroundTrainer::spawn(
        Arc::clone(&tsvc),
        Arc::clone(&tsink),
        ReplayConfig::default(),
        TrainerConfig {
            epochs_per_generation: cfg.epochs_per_generation,
            batch_size: cfg.batch_size,
            seed: cfg.seed ^ 0x7070,
            ..Default::default()
        },
    );
    // Scrape the service (serve_* and the trainer's learn_* instruments,
    // all in one registry) for the whole training-concurrent window.
    let sampler = tsvc.start_telemetry(neo_obs::SamplerConfig {
        tick_interval_ms: 10,
        ..Default::default()
    });
    // A requester thread keeps the trainer saturated: back-to-back
    // generations (retrain + hot swap) for the whole measured window.
    let stop_requester = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let requester = {
        let stop = Arc::clone(&stop_requester);
        let t = ttrainer; // moved into the thread, dropped (joined) there
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                n += 1;
                t.request_generation();
                if !t.wait_for_generation(n, GENERATION_TIMEOUT) {
                    break;
                }
            }
            n
        })
    };
    // Give the trainer a head start so the measured window overlaps
    // training for its whole duration; median of three passes, as above.
    std::thread::sleep(Duration::from_millis(30));
    let mut training_walls: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            tsvc.optimize_stream(&stream);
            start.elapsed().as_secs_f64()
        })
        .collect();
    stop_requester.store(true, std::sync::atomic::Ordering::Release);
    let generations_during = requester.join().expect("requester thread");
    tsvc.stop_telemetry();
    let telemetry_ticks = sampler.ticks();
    let series = sampler.series();
    let throughput_training_qps =
        stream.len() as f64 / crate::median(&mut training_walls).max(1e-9);
    assert!(
        generations_during >= 1,
        "the trainer never completed a generation during the measured window"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cpu_share_bound = if cores > cfg.workers {
        1.0
    } else {
        cfg.workers as f64 / (cfg.workers + 1) as f64
    };
    LearnBenchReport {
        available_parallelism: cores,
        queries: fx.queries.len(),
        workers: cfg.workers,
        generations: cfg.generations,
        expert_mean_ms,
        trajectory,
        gen0_mean_ms,
        final_mean_ms,
        improvement_vs_gen0: gen0_mean_ms / final_mean_ms.max(1e-9),
        envelope_factor: cfg.envelope_factor,
        within_expert_envelope: final_mean_ms <= cfg.envelope_factor * expert_mean_ms,
        throughput_frozen_qps,
        throughput_training_qps,
        throughput_ratio: throughput_training_qps / throughput_frozen_qps.max(1e-9),
        cpu_share_bound,
        generations_during_window: generations_during,
        swap_mean_us,
        swap_max_us,
        checkpoint_roundtrip_ok,
        stable_after_final_swap,
        telemetry_ticks,
        series,
        metrics: tsvc.metrics_snapshot(),
    }
}

impl LearnBenchReport {
    /// Pretty-printed JSON (hand-rolled; no serde in the offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"generations\": {},\n", self.generations));
        s.push_str(&format!(
            "  \"expert_mean_ms\": {:.3},\n",
            self.expert_mean_ms
        ));
        s.push_str("  \"trajectory\": [\n");
        for (i, p) in self.trajectory.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"generation\": {}, \"mean_latency_ms\": {:.3}, \
                 \"vs_expert\": {:.3}, \"mean_loss\": {:.5}, \"samples\": {}, \
                 \"swap_us\": {:.1}}}{}\n",
                p.generation,
                p.mean_latency_ms,
                p.vs_expert,
                p.mean_loss,
                p.samples,
                p.swap_us,
                if i + 1 < self.trajectory.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"gen0_mean_ms\": {:.3},\n", self.gen0_mean_ms));
        s.push_str(&format!(
            "  \"final_mean_ms\": {:.3},\n",
            self.final_mean_ms
        ));
        s.push_str(&format!(
            "  \"improvement_vs_gen0\": {:.3},\n",
            self.improvement_vs_gen0
        ));
        s.push_str(&format!(
            "  \"envelope_factor\": {:.2},\n",
            self.envelope_factor
        ));
        s.push_str(&format!(
            "  \"within_expert_envelope\": {},\n",
            self.within_expert_envelope
        ));
        s.push_str(&format!(
            "  \"throughput_frozen_qps\": {:.1},\n",
            self.throughput_frozen_qps
        ));
        s.push_str(&format!(
            "  \"throughput_training_qps\": {:.1},\n",
            self.throughput_training_qps
        ));
        s.push_str(&format!(
            "  \"throughput_ratio\": {:.3},\n",
            self.throughput_ratio
        ));
        s.push_str(&format!(
            "  \"cpu_share_bound\": {:.3},\n",
            self.cpu_share_bound
        ));
        s.push_str(&format!(
            "  \"generations_during_window\": {},\n",
            self.generations_during_window
        ));
        s.push_str(&format!("  \"swap_mean_us\": {:.1},\n", self.swap_mean_us));
        s.push_str(&format!("  \"swap_max_us\": {:.1},\n", self.swap_max_us));
        s.push_str(&format!(
            "  \"checkpoint_roundtrip_ok\": {},\n",
            self.checkpoint_roundtrip_ok
        ));
        s.push_str(&format!(
            "  \"stable_after_final_swap\": {},\n",
            self.stable_after_final_swap
        ));
        s.push_str(&format!(
            "  \"telemetry_ticks\": {},\n",
            self.telemetry_ticks
        ));
        s.push_str(&format!(
            "  \"series\": {}\n",
            neo_obs::JsonNode::Arr(
                self.series
                    .iter()
                    .map(neo_obs::SeriesSnapshot::to_node)
                    .collect()
            )
            .render()
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke: the closed loop finishes in seconds, the
    /// learning trajectory improves on the untrained generation 0, and the
    /// invariants (determinism per generation, checkpoint round-trip)
    /// hold.
    #[test]
    fn smoke_closed_loop_improves_and_stays_consistent() {
        let report = run_learn_bench(&LearnBenchConfig::smoke(7));
        assert_eq!(report.trajectory.len(), 4, "gen 0..=3 measured");
        assert!(report.expert_mean_ms > 0.0);
        assert!(report.gen0_mean_ms > 0.0);
        // The acceptance bar: after ≥3 background generations the served
        // plans beat the untrained generation 0.
        assert!(
            report.final_mean_ms < report.gen0_mean_ms,
            "closed loop failed to improve: gen0 {:.1} ms -> final {:.1} ms",
            report.gen0_mean_ms,
            report.final_mean_ms
        );
        assert!(report.stable_after_final_swap);
        assert!(report.checkpoint_roundtrip_ok);
        assert!(report.throughput_frozen_qps > 0.0);
        assert!(report.throughput_training_qps > 0.0);
        // The envelope snapshot carries both serve- and learn-side metrics:
        // the measured window served real streams and completed ≥1
        // background generation.
        assert!(report.metrics.counter("serve_requests_total").unwrap() > 0);
        assert!(
            report
                .metrics
                .counter("learn_generations_total")
                .unwrap_or(0)
                >= report.generations_during_window,
            "trainer generations missing from the service registry"
        );
        // The sampler scraped the training-concurrent window: it ticked,
        // and the trainer's own instruments show up as time series next
        // to the serving ones.
        assert!(report.telemetry_ticks > 0, "sampler never ticked");
        assert!(
            report.series.iter().any(|s| s.name.contains("learn_")),
            "no learn-side series scraped: {:?}",
            report.series.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
        assert!(report
            .series
            .iter()
            .any(|s| s.name.contains("serve_requests_total_rate")));
        let json = report.to_json();
        assert!(json.contains("\"checkpoint_roundtrip_ok\": true"));
        assert!(json.contains("\"stable_after_final_swap\": true"));
        assert!(json.contains("\"series\": ["));
        assert!(neo_obs::validate(&json).is_ok(), "report JSON malformed");
    }
}
