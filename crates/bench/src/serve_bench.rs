//! The `serve-bench` harness (ISSUE 2): replays a mixed query workload —
//! cold, repeated, and parameter-perturbed queries — through the
//! `neo-serve` [`OptimizerService`] at several concurrency levels and
//! writes `BENCH_serve.json`.
//!
//! Three measurements per worker level:
//!
//! * **cold scaling** — cache disabled, every query searches; reports
//!   queries-optimized/sec and the speedup over one worker (near-linear on
//!   a multi-core host; bounded by [`std::thread::available_parallelism`],
//!   which the report records so single-core CI numbers read correctly);
//! * **mixed workload** — cache enabled, a 50%-repeat stream; reports
//!   throughput, cache hit rate, and p50/p99 per-query optimize latency;
//! * **determinism** — the multi-threaded service's plan choices are
//!   compared byte-for-byte against single-threaded `best_first_search`
//!   reference runs.

use neo::{
    best_first_search, Featurization, Featurizer, NetConfig, SearchBudget, ValueNet,
    DEFAULT_WAVEFRONT,
};
use neo_query::{workload::job, PlanNode, Predicate, Query};
use neo_serve::{OptimizerService, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Search budget base used by every service in the bench (the runner's
/// budget rule adds `3 * |R(q)|`).
const BASE_EXPANSIONS: usize = 12;

/// Minimum acceptable `qps(obs on) / qps(obs off)` on the cold search
/// path, asserted in-binary. The design target is <2% overhead and the
/// best-window estimator typically reads ≥0.99, but the floor leaves
/// headroom for the shared host's burst contention (see
/// [`measure_overhead_ab`]) so the gate only trips on design
/// regressions, not scheduler luck.
pub const OBS_OVERHEAD_FLOOR: f64 = 0.95;

/// Minimum acceptable `qps(sampler on) / qps(sampler off)` on the cold
/// search path — the background [`neo_obs::TelemetrySampler`] must stay
/// cheap enough to earn its always-on default, asserted in-binary with
/// the same noise headroom as the metrics floor above.
pub const SAMPLER_OVERHEAD_FLOOR: f64 = 0.95;

/// Minimum acceptable `qps(tracing on) / qps(tracing off)` on the cold
/// search path — causal span tracing at its default head-sampling rate
/// (plus the always-keep-slow tail latch) must cost ≤ 2% qps to earn its
/// on-by-default config; the floor carries the same burst-contention
/// headroom as the two gates above.
pub const SPAN_OVERHEAD_FLOOR: f64 = 0.95;

/// Sizing knobs for one serve-bench run.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// IMDB dataset scale.
    pub scale: f64,
    /// Master seed (dataset + workload).
    pub seed: u64,
    /// Worker counts to measure (first entry should be 1: it is the
    /// scaling baseline).
    pub worker_levels: Vec<usize>,
    /// Distinct cold queries in the stream.
    pub cold_queries: usize,
    /// Stream replication factor for the cold-scaling measurement (more
    /// work per measurement = steadier wall-clocks).
    pub cold_replicas: usize,
}

impl ServeBenchConfig {
    /// The default sizing: seconds of wall-clock, minutes nowhere.
    pub fn standard(seed: u64, max_workers: usize) -> Self {
        ServeBenchConfig {
            scale: 0.05,
            seed,
            worker_levels: worker_ladder(max_workers),
            cold_queries: 16,
            cold_replicas: 3,
        }
    }

    /// CI smoke sizing: a handful of queries, two worker levels.
    pub fn smoke(seed: u64) -> Self {
        ServeBenchConfig {
            scale: 0.02,
            seed,
            worker_levels: vec![1, 2],
            cold_queries: 6,
            cold_replicas: 1,
        }
    }
}

/// `[1, 2, 4, …, max]` (powers of two, `max` appended when skipped;
/// `max` is clamped to ≥ 1 so `--workers 0` degrades to a 1-worker run).
fn worker_ladder(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut levels = Vec::new();
    let mut w = 1;
    while w <= max {
        levels.push(w);
        w *= 2;
    }
    if *levels.last().expect("max >= 1") != max {
        levels.push(max);
    }
    levels
}

/// One cold-scaling measurement.
#[derive(Clone, Copy, Debug)]
pub struct ColdPoint {
    /// Worker threads.
    pub workers: usize,
    /// Wall-clock for the whole stream, ms.
    pub wall_ms: f64,
    /// Queries optimized per second.
    pub qps: f64,
    /// Throughput over the 1-worker baseline.
    pub speedup_vs_1: f64,
}

/// One mixed-workload measurement.
///
/// The `p50_ms`/`p99_ms`/`p50_hit_ms`/`p50_search_ms` quantiles are exact
/// (computed from the per-outcome latencies the stream returns); the
/// `search_*`/`hit_*` quantiles come from the service's in-process
/// [`neo_obs::LatencyHistogram`]s — what a production scrape would report,
/// accurate to one log-scale bucket.
#[derive(Clone, Copy, Debug)]
pub struct MixedPoint {
    /// Worker threads.
    pub workers: usize,
    /// Wall-clock for the whole stream, ms.
    pub wall_ms: f64,
    /// Queries optimized per second.
    pub qps: f64,
    /// Cache hit rate over the stream.
    pub hit_rate: f64,
    /// Median per-query optimize latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile per-query optimize latency, ms.
    pub p99_ms: f64,
    /// Median cache-hit latency, ms (0 when the stream produced no hits).
    pub p50_hit_ms: f64,
    /// Median search (miss) latency, ms.
    pub p50_search_ms: f64,
    /// Histogram-derived median search latency, ms.
    pub search_p50_ms: f64,
    /// Histogram-derived p95 search latency, ms.
    pub search_p95_ms: f64,
    /// Histogram-derived p99 search latency, ms.
    pub search_p99_ms: f64,
    /// Histogram-derived median cache-hit latency, ms.
    pub hit_p50_ms: f64,
    /// Histogram-derived p95 cache-hit latency, ms.
    pub hit_p95_ms: f64,
    /// Histogram-derived p99 cache-hit latency, ms.
    pub hit_p99_ms: f64,
}

/// Cold-path throughput with the observability layer on vs off — the
/// tentpole's "metrics are cheap enough to leave on" receipt.
#[derive(Clone, Copy, Debug)]
pub struct ObsOverhead {
    /// Worker threads used for the comparison (highest configured level).
    pub workers: usize,
    /// Best-window cold qps with metrics/tracing enabled.
    pub qps_obs_on: f64,
    /// Best-window cold qps with the whole obs layer compiled to
    /// no-ops.
    pub qps_obs_off: f64,
    /// `qps_obs_on / qps_obs_off`; must stay ≥ [`OBS_OVERHEAD_FLOOR`].
    pub ratio: f64,
}

/// Cold-path throughput with causal span tracing on vs off (metrics are
/// on in both trials — this isolates the tracer's guard/buffer cost at
/// its default 1-in-N head sampling + slow-trace latch, where
/// [`ObsOverhead`] isolates the recording instruments').
#[derive(Clone, Copy, Debug)]
pub struct SpanOverhead {
    /// Worker threads used for the comparison (highest configured level).
    pub workers: usize,
    /// Best-window cold qps with tracing at its default config.
    pub qps_tracing_on: f64,
    /// Best-window cold qps with tracing disabled.
    pub qps_tracing_off: f64,
    /// `qps_tracing_on / qps_tracing_off`; must stay ≥
    /// [`SPAN_OVERHEAD_FLOOR`] in release builds.
    pub ratio: f64,
    /// Max spans committed to the ring across the on-trials — proves the
    /// comparison actually recorded traces, not just guards.
    pub spans_recorded: u64,
}

/// Cold-path throughput with the background telemetry sampler running
/// vs stopped (metrics are on in both trials — this isolates the
/// sampler thread's own cost, where [`ObsOverhead`] isolates the
/// recording instruments').
#[derive(Clone, Copy, Debug)]
pub struct SamplerOverhead {
    /// Worker threads used for the comparison (highest configured level).
    pub workers: usize,
    /// Best-window cold qps with a 100 ms-tick sampler scraping
    /// the service.
    pub qps_sampler_on: f64,
    /// Best-window cold qps with no sampler thread.
    pub qps_sampler_off: f64,
    /// `qps_sampler_on / qps_sampler_off`; must stay ≥
    /// [`SAMPLER_OVERHEAD_FLOOR`] in release builds.
    pub ratio: f64,
    /// Max sampler ticks observed across the on-trials — proves the
    /// comparison actually exercised the scrape loop.
    pub ticks: u64,
}

/// Results of one serve-bench run (serialized to `BENCH_serve.json`).
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the hard ceiling on any observed scaling.
    pub available_parallelism: usize,
    /// Distinct cold queries.
    pub cold_queries: usize,
    /// Cold-scaling stream length.
    pub cold_stream_len: usize,
    /// Mixed stream length.
    pub mixed_stream_len: usize,
    /// Fraction of the mixed stream that repeats an earlier query.
    pub repeat_fraction: f64,
    /// Cold scaling per worker level (cache disabled).
    pub cold: Vec<ColdPoint>,
    /// Mixed workload per worker level (cache enabled).
    pub mixed: Vec<MixedPoint>,
    /// Median search latency over median hit latency at the highest
    /// worker level — what a cache hit saves.
    pub hit_speedup: f64,
    /// Multi-threaded plan choices byte-identical to single-threaded
    /// reference searches.
    pub plans_match_single_threaded: bool,
    /// Cold-path throughput with obs on vs off (asserted ≥ the floor).
    pub obs_overhead: ObsOverhead,
    /// Cold-path throughput with the telemetry sampler on vs off
    /// (asserted ≥ its own floor).
    pub sampler_overhead: SamplerOverhead,
    /// Cold-path throughput with span tracing on vs off (asserted ≥ its
    /// own floor).
    pub span_overhead: SpanOverhead,
    /// The highest-concurrency mixed service's span ring as JSON
    /// (`spans` / `recorded` / `dropped`): the per-request waterfalls the
    /// histograms' `p99_exemplar` trace ids resolve into.
    pub traces: String,
    /// Hottest query fingerprints from the highest-concurrency mixed
    /// service — the `obs-report` dashboard's hot-set table.
    pub hot: Vec<neo_obs::FingerprintStat>,
    /// Metrics snapshot of the highest-concurrency mixed-workload service,
    /// taken after its timed stream (surfaces as the envelope's `metrics`
    /// section in `BENCH_serve.json`).
    pub metrics: neo_obs::MetricsSnapshot,
}

/// Perturbs one predicate constant — the "parameterized query" shape: same
/// template, different literal, so the fingerprint (and possibly the best
/// plan) changes.
fn perturb(q: &Query, delta: i64) -> Query {
    let mut out = q.clone();
    out.id = format!("{}~{delta}", q.id);
    if let Some(p) = out.predicates.first_mut() {
        match p {
            Predicate::IntCmp { value, .. } => *value += delta,
            Predicate::IntBetween { hi, .. } => *hi += delta,
            Predicate::StrEq { value, .. } => value.push('~'),
            Predicate::StrContains { needle, .. } => needle.push('~'),
        }
    }
    out
}

/// Builds the service fixture: dataset, workload subset, featurizer, and
/// an untrained (frozen) network — serving throughput does not depend on
/// the weights, and an untrained net keeps the bench self-contained.
struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    net: Arc<ValueNet>,
    cold: Vec<Query>,
}

fn fixture(cfg: &ServeBenchConfig) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(cfg.scale, cfg.seed));
    let cold: Vec<Query> = job::generate(&db, cfg.seed)
        .queries
        .into_iter()
        .filter(|q| q.num_relations() <= 8)
        .take(cfg.cold_queries)
        .collect();
    assert!(!cold.is_empty(), "workload subset is empty");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig::default(),
        cfg.seed,
    ));
    Fixture {
        db,
        featurizer,
        net,
        cold,
    }
}

fn service(
    fx: &Fixture,
    workers: usize,
    use_cache: bool,
    obs: bool,
    tracing: bool,
) -> OptimizerService {
    OptimizerService::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        ServeConfig {
            workers,
            cache_shards: 16,
            use_cache,
            search_base_expansions: BASE_EXPANSIONS,
            wavefront: DEFAULT_WAVEFRONT,
            obs,
            tracing,
            ..Default::default()
        },
    )
}

/// In-binary sanity for the metrics the envelope publishes (ISSUE
/// satellite 5): an inconsistent snapshot fails the bench, not the reader.
///
/// * every request with the cache on probes it exactly once, so
///   `cache_hits_total + cache_misses_total == serve_requests_total`;
/// * every request records one end-to-end latency, so the
///   `serve_optimize_ms` histogram count equals `serve_requests_total`;
/// * both equal the number of queries the bench actually pushed through.
fn assert_metrics_consistent(snap: &neo_obs::MetricsSnapshot, expected_requests: usize) {
    let requests = snap
        .counter("serve_requests_total")
        .expect("serve_requests_total registered");
    assert_eq!(
        requests, expected_requests as u64,
        "serve_requests_total disagrees with the stream length"
    );
    let hits = snap.counter("cache_hits_total").unwrap_or(0);
    let misses = snap.counter("cache_misses_total").unwrap_or(0);
    assert_eq!(
        hits + misses,
        requests,
        "cache lookups (hits {hits} + misses {misses}) != requests {requests}"
    );
    let e2e = snap
        .histogram("serve_optimize_ms")
        .expect("serve_optimize_ms registered");
    assert_eq!(
        e2e.count, requests,
        "optimize histogram count != serve_requests_total"
    );
}

/// Runs one A/B overhead comparison of cold-path qps and returns each
/// side's best `(qps_a, qps_b)` across interleaved trials.
///
/// Estimator notes, learned the hard way on a shared single-core host.
/// The box's noise is *burst contention* — background work steals the
/// core in irregular multi-ms bursts (observed per-trial qps swings of
/// 25% between back-to-back windows), so paired or averaged estimators
/// inherit whichever bursts landed in their windows. But contention
/// only ever slows a side down, never speeds it up, so each side's
/// *best* (max-qps) window across interleaved trials is the estimator
/// that converges on the uncontended speed; the per-trial order
/// alternates so a slow epoch cannot systematically favor one side.
///
/// The pass count is calibrated so each side's measured window spans
/// several 100 ms sampler ticks: with a ~40 ms window, whether a tick
/// lands inside is a coin flip worth ~2% of the window — arrival
/// quantization, not overhead. A ≥0.5 s window amortizes per-tick cost
/// to its steady-state share.
fn measure_overhead_ab(
    cold_stream: &[Query],
    warmup_len: usize,
    mut run_side: impl FnMut(usize, &[Query], usize) -> f64,
) -> (f64, f64) {
    const TRIALS: usize = 7;
    const TARGET_WINDOW_S: f64 = 0.5;
    // Calibrate against the cheap side (1 = instrument/sampler off).
    let calib = run_side(1, &cold_stream[..warmup_len], 1);
    let passes = ((TARGET_WINDOW_S / calib.max(1e-6)).ceil() as usize).clamp(2, 64);
    let queries = (cold_stream.len() * passes) as f64;
    let mut best = [0.0f64; 2];
    for t in 0..TRIALS {
        let mut qps = [0.0f64; 2];
        let order = if t % 2 == 0 { [0usize, 1] } else { [1usize, 0] };
        for side in order {
            let wall = run_side(side, &cold_stream[..warmup_len], passes);
            qps[side] = queries / wall.max(1e-9);
            best[side] = best[side].max(qps[side]);
        }
        if std::env::var_os("NEO_GATE_DEBUG").is_some() {
            eprintln!(
                "gate trial {t}: on {:.1} qps, off {:.1} qps, ratio {:.4} ({passes} passes)",
                qps[0],
                qps[1],
                qps[0] / qps[1].max(1e-9)
            );
        }
    }
    (best[0], best[1])
}

/// Timed `passes` over `cold_stream` for one side of an overhead pair,
/// after an untimed warm-up.
fn timed_passes(
    svc: &OptimizerService,
    cold_stream: &[Query],
    warmup: &[Query],
    passes: usize,
) -> f64 {
    svc.optimize_stream(warmup);
    let start = Instant::now();
    for _ in 0..passes {
        let outcomes = svc.optimize_stream(cold_stream);
        assert_eq!(outcomes.len(), cold_stream.len());
    }
    start.elapsed().as_secs_f64()
}

/// Measures cold-path qps with obs on vs off at `workers` threads,
/// best-window A/B (see [`measure_overhead_ab`]), and asserts the
/// ratio stays above [`OBS_OVERHEAD_FLOOR`].
fn measure_obs_overhead(fx: &Fixture, cold_stream: &[Query], workers: usize) -> ObsOverhead {
    let warmup_len = cold_stream.len().min(fx.cold.len());
    let (qps_on, qps_off) = measure_overhead_ab(cold_stream, warmup_len, |side, warmup, passes| {
        let svc = service(fx, workers, false, side == 0, true);
        timed_passes(&svc, cold_stream, warmup, passes)
    });
    let ratio = qps_on / qps_off.max(1e-9);
    // Release-only: debug-build qps measures the build mode, not the
    // instrument cost.
    assert!(
        cfg!(debug_assertions) || ratio >= OBS_OVERHEAD_FLOOR,
        "obs overhead too high on the cold path: {:.1} qps with metrics vs {:.1} without \
         (ratio {ratio:.4} < {OBS_OVERHEAD_FLOOR})",
        qps_on,
        qps_off
    );
    ObsOverhead {
        workers,
        qps_obs_on: qps_on,
        qps_obs_off: qps_off,
        ratio,
    }
}

/// Measures cold-path qps with the background telemetry sampler running
/// (100 ms tick — 10 scrapes/s, still ~150x a Prometheus-paced
/// deployment; hotter ticks measurably pollute a single core's cache
/// with the registry walk and the gate stops measuring sampler design)
/// vs absent, metrics on in both trials. Best-window A/B (see
/// [`measure_overhead_ab`]); asserts the ratio stays above
/// [`SAMPLER_OVERHEAD_FLOOR`] (release builds only — debug qps is
/// build-mode-bound, not sampler-bound).
fn measure_sampler_overhead(
    fx: &Fixture,
    cold_stream: &[Query],
    workers: usize,
) -> SamplerOverhead {
    let warmup_len = cold_stream.len().min(fx.cold.len());
    let mut ticks = 0u64;
    let (qps_on, qps_off) = measure_overhead_ab(cold_stream, warmup_len, |side, warmup, passes| {
        let sampler_on = side == 0;
        let svc = service(fx, workers, false, true, true);
        if sampler_on {
            svc.start_telemetry(neo_obs::SamplerConfig {
                tick_interval_ms: 100,
                ..Default::default()
            });
        }
        let wall = timed_passes(&svc, cold_stream, warmup, passes);
        if sampler_on {
            if let Some(sampler) = svc.telemetry() {
                ticks = ticks.max(sampler.ticks());
            }
            svc.stop_telemetry();
        }
        wall
    });
    let ratio = qps_on / qps_off.max(1e-9);
    // The hard floor only holds in release builds: in debug the
    // unoptimized scrape loop competes with equally unoptimized search
    // on the same core and the ratio is dominated by build mode, not by
    // sampler design. CI's release `serve-bench --smoke` is the gate.
    assert!(
        cfg!(debug_assertions) || ratio >= SAMPLER_OVERHEAD_FLOOR,
        "telemetry sampler too expensive on the cold path: {:.1} qps with the \
         sampler vs {:.1} without (ratio {ratio:.4} < {SAMPLER_OVERHEAD_FLOOR})",
        qps_on,
        qps_off
    );
    SamplerOverhead {
        workers,
        qps_sampler_on: qps_on,
        qps_sampler_off: qps_off,
        ratio,
        ticks,
    }
}

/// Measures cold-path qps with causal span tracing at its default config
/// (1-in-64 head sampling + the ≥10 ms slow-trace latch) vs disabled,
/// metrics on in both trials. Best-window A/B (see
/// [`measure_overhead_ab`]); asserts the ratio stays above
/// [`SPAN_OVERHEAD_FLOOR`] (release builds only — debug qps is
/// build-mode-bound, not tracer-bound).
fn measure_span_overhead(fx: &Fixture, cold_stream: &[Query], workers: usize) -> SpanOverhead {
    let warmup_len = cold_stream.len().min(fx.cold.len());
    let mut spans_recorded = 0u64;
    let (qps_on, qps_off) = measure_overhead_ab(cold_stream, warmup_len, |side, warmup, passes| {
        let tracing_on = side == 0;
        let svc = service(fx, workers, false, true, tracing_on);
        let wall = timed_passes(&svc, cold_stream, warmup, passes);
        if tracing_on {
            spans_recorded = spans_recorded.max(svc.span_ring().recorded());
        }
        wall
    });
    let ratio = qps_on / qps_off.max(1e-9);
    assert!(
        cfg!(debug_assertions) || ratio >= SPAN_OVERHEAD_FLOOR,
        "span tracing too expensive on the cold path: {:.1} qps with tracing vs \
         {:.1} without (ratio {ratio:.4} < {SPAN_OVERHEAD_FLOOR})",
        qps_on,
        qps_off
    );
    assert!(
        spans_recorded > 0,
        "the tracing side of the span-overhead A/B never committed a span"
    );
    SpanOverhead {
        workers,
        qps_tracing_on: qps_on,
        qps_tracing_off: qps_off,
        ratio,
        spans_recorded,
    }
}

/// `p`-quantile of unsorted latencies (nearest-rank).
fn quantile(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let idx = ((values.len() as f64 * p).ceil() as usize).clamp(1, values.len()) - 1;
    values[idx]
}

/// Runs the full serve bench.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    let fx = fixture(cfg);
    let seed = cfg.seed;

    // --- Cold-scaling stream: every query distinct per replica pass
    // (cache disabled anyway), shuffled deterministically.
    let mut cold_stream: Vec<Query> = Vec::new();
    for r in 0..cfg.cold_replicas.max(1) {
        let mut pass = fx.cold.clone();
        shuffle(&mut pass, seed ^ (r as u64) << 8);
        cold_stream.extend(pass);
    }

    // --- Mixed stream (50% repeats): one cold pass + an equal number of
    // perturbed variants in a first phase, then repeats of phase-1 cold
    // queries as the second phase. Repeats only follow their originals, so
    // the ideal hit rate is exactly the repeat fraction.
    let n = fx.cold.len();
    let mut phase1: Vec<Query> = fx.cold.clone();
    phase1.extend(fx.cold.iter().take(n / 2).map(|q| perturb(q, 3)));
    shuffle(&mut phase1, seed ^ 0xC01D);
    let mut repeats: Vec<Query> = Vec::new();
    let mut i = 0;
    while repeats.len() < phase1.len() {
        repeats.push(fx.cold[i % n].clone());
        i += 1;
    }
    shuffle(&mut repeats, seed ^ 0x4EA7);
    let mixed_stream: Vec<Query> = phase1.iter().chain(repeats.iter()).cloned().collect();
    let repeat_fraction = repeats.len() as f64 / mixed_stream.len() as f64;

    // --- Single-threaded reference plans for the determinism check.
    let reference: Vec<PlanNode> = mixed_stream
        .iter()
        .map(|q| {
            let budget = SearchBudget::expansions(BASE_EXPANSIONS + 3 * q.num_relations())
                .with_wavefront(DEFAULT_WAVEFRONT);
            best_first_search(&fx.net, &fx.featurizer, &fx.db, q, budget, None).0
        })
        .collect();

    // --- Cold scaling (cache disabled).
    let mut cold_points: Vec<ColdPoint> = Vec::new();
    for &w in &cfg.worker_levels {
        let svc = service(&fx, w, false, true, true);
        // Warm-up pass: thread spawn, scratch growth, allocator steady state.
        svc.optimize_stream(&cold_stream[..cold_stream.len().min(fx.cold.len())]);
        let start = Instant::now();
        let outcomes = svc.optimize_stream(&cold_stream);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcomes.len(), cold_stream.len());
        let qps = cold_stream.len() as f64 / (wall_ms / 1e3).max(1e-9);
        let speedup = cold_points.first().map_or(1.0, |b| qps / b.qps.max(1e-9));
        cold_points.push(ColdPoint {
            workers: w,
            wall_ms,
            qps,
            speedup_vs_1: speedup,
        });
    }

    // --- Mixed workload (cache enabled), plus the determinism check at
    // the highest concurrency.
    let mut mixed_points: Vec<MixedPoint> = Vec::new();
    let mut plans_match = true;
    let mut last_metrics = neo_obs::MetricsSnapshot::default();
    let mut hot: Vec<neo_obs::FingerprintStat> = Vec::new();
    let mut last_traces = String::new();
    for &w in &cfg.worker_levels {
        let svc = service(&fx, w, true, true, true);
        // Warm-up on throwaway perturbed variants (thread spawn, scratch
        // growth), then flush the cache so the timed stream starts cold —
        // the hit rate below comes from the timed outcomes only.
        let warmup: Vec<Query> = fx
            .cold
            .iter()
            .enumerate()
            .map(|(i, q)| perturb(q, 1_000 + i as i64))
            .collect();
        svc.optimize_stream(&warmup);
        svc.begin_refinement_epoch();
        let start = Instant::now();
        let outcomes = svc.optimize_stream(&mixed_stream);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let hit_rate =
            outcomes.iter().filter(|o| o.cache_hit).count() as f64 / outcomes.len().max(1) as f64;
        let mut all: Vec<f64> = outcomes.iter().map(|o| o.optimize_ms).collect();
        let mut hits: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.cache_hit)
            .map(|o| o.optimize_ms)
            .collect();
        let mut searches: Vec<f64> = outcomes
            .iter()
            .filter(|o| !o.cache_hit)
            .map(|o| o.optimize_ms)
            .collect();
        for (o, expected) in outcomes.iter().zip(&reference) {
            if &o.plan != expected {
                plans_match = false;
            }
        }
        let search_hist = svc.search_latency();
        let hit_hist = svc.hit_latency();
        mixed_points.push(MixedPoint {
            workers: w,
            wall_ms,
            qps: mixed_stream.len() as f64 / (wall_ms / 1e3).max(1e-9),
            hit_rate,
            p50_ms: quantile(&mut all, 0.50),
            p99_ms: quantile(&mut all, 0.99),
            p50_hit_ms: quantile(&mut hits, 0.50),
            p50_search_ms: quantile(&mut searches, 0.50),
            search_p50_ms: search_hist.p50_ms(),
            search_p95_ms: search_hist.p95_ms(),
            search_p99_ms: search_hist.p99_ms(),
            hit_p50_ms: hit_hist.p50_ms(),
            hit_p95_ms: hit_hist.p95_ms(),
            hit_p99_ms: hit_hist.p99_ms(),
        });
        let snap = svc.metrics_snapshot();
        assert_metrics_consistent(&snap, warmup.len() + mixed_stream.len());
        last_metrics = snap;
        hot = svc.hot_fingerprints(5);
        last_traces = svc.traces_node().render();
    }

    let last = mixed_points.last().expect("at least one worker level");
    let hit_speedup = if last.p50_hit_ms > 0.0 {
        last.p50_search_ms / last.p50_hit_ms
    } else {
        0.0
    };

    // --- Obs overhead on the cold path (in-binary acceptance gate).
    let top_workers = *cfg.worker_levels.last().expect("non-empty worker levels");
    let obs_overhead = measure_obs_overhead(&fx, &cold_stream, top_workers);

    // --- Sampler overhead on the same path (second in-binary gate).
    let sampler_overhead = measure_sampler_overhead(&fx, &cold_stream, top_workers);

    // --- Span-tracing overhead on the same path (third in-binary gate).
    let span_overhead = measure_span_overhead(&fx, &cold_stream, top_workers);

    ServeBenchReport {
        available_parallelism: crate::host_parallelism(),
        cold_queries: fx.cold.len(),
        cold_stream_len: cold_stream.len(),
        mixed_stream_len: mixed_stream.len(),
        repeat_fraction,
        cold: cold_points,
        mixed: mixed_points,
        hit_speedup,
        plans_match_single_threaded: plans_match,
        obs_overhead,
        sampler_overhead,
        span_overhead,
        traces: last_traces,
        hot,
        metrics: last_metrics,
    }
}

/// Deterministic shuffle of the query list (seeded vendored `StdRng`, the
/// same pattern the runner uses for retrain sampling).
fn shuffle(queries: &mut [Query], seed: u64) {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    queries.shuffle(&mut rng);
}

impl ServeBenchReport {
    /// Pretty-printed JSON (hand-rolled; no serde in the offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"cold_queries\": {},\n", self.cold_queries));
        s.push_str(&format!(
            "  \"cold_stream_len\": {},\n",
            self.cold_stream_len
        ));
        s.push_str(&format!(
            "  \"mixed_stream_len\": {},\n",
            self.mixed_stream_len
        ));
        s.push_str(&format!(
            "  \"repeat_fraction\": {:.3},\n",
            self.repeat_fraction
        ));
        s.push_str("  \"cold\": [\n");
        for (i, p) in self.cold.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"workers\": {}, \"wall_ms\": {:.1}, \"qps\": {:.1}, \
                 \"speedup_vs_1\": {:.2}}}{}\n",
                p.workers,
                p.wall_ms,
                p.qps,
                p.speedup_vs_1,
                if i + 1 < self.cold.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"mixed\": [\n");
        for (i, p) in self.mixed.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"workers\": {}, \"wall_ms\": {:.1}, \"qps\": {:.1}, \
                 \"hit_rate\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"p50_hit_ms\": {:.4}, \"p50_search_ms\": {:.3}, \
                 \"search_p50_ms\": {:.3}, \"search_p95_ms\": {:.3}, \
                 \"search_p99_ms\": {:.3}, \"hit_p50_ms\": {:.4}, \
                 \"hit_p95_ms\": {:.4}, \"hit_p99_ms\": {:.4}}}{}\n",
                p.workers,
                p.wall_ms,
                p.qps,
                p.hit_rate,
                p.p50_ms,
                p.p99_ms,
                p.p50_hit_ms,
                p.p50_search_ms,
                p.search_p50_ms,
                p.search_p95_ms,
                p.search_p99_ms,
                p.hit_p50_ms,
                p.hit_p95_ms,
                p.hit_p99_ms,
                if i + 1 < self.mixed.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"obs_overhead\": {{\"workers\": {}, \"qps_obs_on\": {:.1}, \
             \"qps_obs_off\": {:.1}, \"ratio\": {:.4}}},\n",
            self.obs_overhead.workers,
            self.obs_overhead.qps_obs_on,
            self.obs_overhead.qps_obs_off,
            self.obs_overhead.ratio
        ));
        s.push_str(&format!(
            "  \"sampler_overhead\": {{\"workers\": {}, \"qps_sampler_on\": {:.1}, \
             \"qps_sampler_off\": {:.1}, \"ratio\": {:.4}, \"ticks\": {}}},\n",
            self.sampler_overhead.workers,
            self.sampler_overhead.qps_sampler_on,
            self.sampler_overhead.qps_sampler_off,
            self.sampler_overhead.ratio,
            self.sampler_overhead.ticks
        ));
        s.push_str(&format!(
            "  \"span_overhead\": {{\"workers\": {}, \"qps_tracing_on\": {:.1}, \
             \"qps_tracing_off\": {:.1}, \"ratio\": {:.4}, \"spans_recorded\": {}}},\n",
            self.span_overhead.workers,
            self.span_overhead.qps_tracing_on,
            self.span_overhead.qps_tracing_off,
            self.span_overhead.ratio,
            self.span_overhead.spans_recorded
        ));
        s.push_str(&format!("  \"traces\": {},\n", self.traces.trim_end()));
        s.push_str("  \"hot\": [\n");
        for (i, h) in self.hot.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"fingerprint\": \"0x{:032x}\", \"hits\": {}, \"misses\": {}, \
                 \"latency_ewma_ms\": {:.4}, \"executions\": {}, \"regret_ms\": {:.4}}}{}\n",
                h.fingerprint,
                h.hits,
                h.misses,
                h.latency_ewma_ms,
                h.executions,
                h.regret_ms,
                if i + 1 < self.hot.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"hit_speedup\": {:.1},\n", self.hit_speedup));
        s.push_str(&format!(
            "  \"plans_match_single_threaded\": {}\n",
            self.plans_match_single_threaded
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_ladder_shapes() {
        assert_eq!(worker_ladder(4), vec![1, 2, 4]);
        assert_eq!(worker_ladder(6), vec![1, 2, 4, 6]);
        assert_eq!(worker_ladder(1), vec![1]);
        assert_eq!(worker_ladder(0), vec![1], "--workers 0 clamps, not panics");
    }

    #[test]
    fn quantile_nearest_rank() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&mut v, 0.5), 2.0);
        assert_eq!(quantile(&mut v, 0.99), 4.0);
        assert_eq!(quantile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let db = neo_storage::datagen::imdb::generate(0.02, 3);
        let base: Vec<Query> = job::generate(&db, 3).queries.into_iter().take(8).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        shuffle(&mut a, 77);
        shuffle(&mut b, 77);
        assert_eq!(
            a.iter().map(|q| &q.id).collect::<Vec<_>>(),
            b.iter().map(|q| &q.id).collect::<Vec<_>>()
        );
        let mut ids: Vec<&String> = a.iter().map(|q| &q.id).collect();
        ids.sort();
        let mut orig: Vec<&String> = base.iter().map(|q| &q.id).collect();
        orig.sort();
        assert_eq!(ids, orig, "shuffle must be a permutation");
    }

    /// End-to-end smoke: the smoke preset finishes in seconds, reports a
    /// plausible hit rate, and the determinism check passes.
    #[test]
    fn smoke_run_reports_sane_numbers() {
        let report = run_serve_bench(&ServeBenchConfig::smoke(3));
        assert_eq!(report.cold.len(), 2);
        assert_eq!(report.mixed.len(), 2);
        assert!(report.plans_match_single_threaded);
        let last = report.mixed.last().unwrap();
        assert!(
            last.hit_rate >= 0.4,
            "hit rate {:.2} too low for a 50%-repeat stream",
            last.hit_rate
        );
        assert!(report.cold.iter().all(|p| p.qps > 0.0));
        // Histogram-derived quantiles must exist and bracket sanely; the
        // bucketed p50 can only round a latency *up* to its bucket bound.
        assert!(last.search_p50_ms > 0.0);
        assert!(last.search_p99_ms >= last.search_p50_ms);
        assert!(last.hit_p99_ms >= last.hit_p50_ms);
        // The obs-overhead gate already asserted ratio >= floor in-binary.
        assert!(report.obs_overhead.qps_obs_on > 0.0);
        assert!(report.obs_overhead.qps_obs_off > 0.0);
        // The sampler gate's hard floor is release-only (see
        // measure_sampler_overhead); here just require a sane positive
        // ratio and that the on-trial really ticked.
        assert!(report.sampler_overhead.ratio > 0.5);
        assert!(
            report.sampler_overhead.ticks > 0,
            "sampler never ticked during the overhead trial"
        );
        // The span-overhead gate asserted its release-build floor
        // in-binary and actually committed spans on the tracing side.
        assert!(report.span_overhead.ratio > 0.5);
        assert!(report.span_overhead.spans_recorded > 0);
        // The traces section holds real per-request waterfalls: at least
        // one `optimize` root with serving-stage children.
        assert!(neo_obs::validate(&report.traces).is_ok(), "traces JSON");
        assert!(report.traces.contains("\"optimize\""));
        assert!(report.traces.contains("\"search\""));
        // The hot-set table behind the obs-report dashboard is populated.
        assert!(!report.hot.is_empty());
        assert!(report.hot.iter().any(|h| h.hits > 0));
        // The snapshot that ships in the envelope carries the serve metrics.
        assert!(report.metrics.counter("serve_requests_total").unwrap() > 0);
        assert!(report.metrics.histogram("serve_search_ms").is_some());
        let json = report.to_json();
        assert!(json.contains("\"plans_match_single_threaded\": true"));
        assert!(json.contains("\"obs_overhead\""));
        assert!(json.contains("\"sampler_overhead\""));
        assert!(json.contains("\"span_overhead\""));
        assert!(json.contains("\"traces\""));
        assert!(json.contains("\"hot\": ["));
        assert!(neo_obs::validate(&json).is_ok(), "report JSON malformed");
    }
}
