//! `neo-repro obs-report` — a text dashboard over any `BENCH_*.json`
//! envelope (tentpole: the telemetry stack's human-facing end).
//!
//! The report is schema-tolerant: rather than hard-coding where each
//! bench nests its observability sections, it walks the whole parsed
//! tree and renders every `series` array (ASCII sparklines), every
//! `slo` status array (error-budget table), every `hot` fingerprint
//! array, every `traces` span-ring dump (per-trace waterfalls with
//! self-time and the critical path), every histogram's `p99_exemplar`
//! trace link, and every `regressions` verdict it finds, tagged with
//! the dotted path where it was found. A chaos envelope (fleet snapshot
//! embedded under `report.chaos.fleet`) and a serve envelope therefore
//! render through the same code.

use neo_obs::JsonNode;

/// Sparkline glyph ramp, lowest to highest.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `points` as a fixed-height ASCII sparkline, normalized to the
/// series' own min..max range (a flat series renders as all-low bars).
pub fn sparkline(points: &[f64]) -> String {
    if points.is_empty() {
        return String::from("(empty)");
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        lo = lo.min(*p);
        hi = hi.max(*p);
    }
    let span = (hi - lo).max(1e-12);
    points
        .iter()
        .map(|p| {
            let idx = (((p - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[idx.min(RAMP.len() - 1)]
        })
        .collect()
}

/// Collects `(dotted.path, node)` pairs for every object field named
/// `key` anywhere in the tree.
fn find_sections<'a>(node: &'a JsonNode, key: &str) -> Vec<(String, &'a JsonNode)> {
    let mut out = Vec::new();
    walk(node, key, String::new(), &mut out);
    out
}

fn walk<'a>(node: &'a JsonNode, key: &str, path: String, out: &mut Vec<(String, &'a JsonNode)>) {
    let extend = |k: &str| {
        if path.is_empty() {
            k.to_string()
        } else {
            format!("{path}.{k}")
        }
    };
    match node {
        JsonNode::Obj(fields) => {
            for (k, v) in fields {
                if k == key {
                    out.push((extend(k), v));
                }
                walk(v, key, extend(k), out);
            }
        }
        JsonNode::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, key, extend(&i.to_string()), out);
            }
        }
        _ => {}
    }
}

fn f64_field(obj: &JsonNode, key: &str) -> f64 {
    obj.get(key).and_then(JsonNode::as_f64).unwrap_or(0.0)
}

fn str_field<'a>(obj: &'a JsonNode, key: &str) -> &'a str {
    obj.get(key).and_then(JsonNode::as_str).unwrap_or("?")
}

fn render_series(out: &mut String, path: &str, series: &[JsonNode]) {
    out.push_str(&format!("time series at {path} ({}):\n", series.len()));
    for s in series {
        let points: Vec<f64> = s
            .get("points")
            .and_then(JsonNode::as_arr)
            .map(|arr| arr.iter().filter_map(JsonNode::as_f64).collect())
            .unwrap_or_default();
        let last = points.last().copied().unwrap_or(0.0);
        out.push_str(&format!(
            "  {name:<44} @{tick:<5} {spark} last {last:.4}\n",
            name = str_field(s, "name"),
            tick = f64_field(s, "start_tick") as u64,
            spark = sparkline(&points),
        ));
    }
}

fn render_slos(out: &mut String, path: &str, slos: &[JsonNode]) {
    out.push_str(&format!("slo error budgets at {path}:\n"));
    for s in slos {
        out.push_str(&format!(
            "  {name:<24} objective {obj:.3}  budget {budget:>5.1}%  \
             fast {fast:.1}x  slow {slow:.1}x  burns {burns}  breaches {breaches}  \
             bad {bad}/{ticks}\n",
            name = str_field(s, "name"),
            obj = f64_field(s, "objective"),
            budget = f64_field(s, "budget_remaining") * 100.0,
            fast = f64_field(s, "fast_burn"),
            slow = f64_field(s, "slow_burn"),
            burns = f64_field(s, "fast_burns_total") as u64,
            breaches = f64_field(s, "breaches_total") as u64,
            bad = f64_field(s, "bad_ticks") as u64,
            ticks = f64_field(s, "ticks") as u64,
        ));
    }
}

fn render_hot(out: &mut String, path: &str, hot: &[JsonNode]) {
    out.push_str(&format!("hot fingerprints at {path}:\n"));
    for h in hot {
        // Older envelopes have no worst-probe exemplar; render "-".
        let worst = h
            .get("worst_trace")
            .and_then(JsonNode::as_str)
            .unwrap_or("-");
        out.push_str(&format!(
            "  {fp:<34} hits {hits:<6} misses {misses:<6} ewma {ewma:.3} ms  \
             regret {regret:.3} ms  worst {worst_ms:.3} ms trace {worst}\n",
            fp = str_field(h, "fingerprint"),
            hits = f64_field(h, "hits") as u64,
            misses = f64_field(h, "misses") as u64,
            ewma = f64_field(h, "latency_ewma_ms"),
            regret = f64_field(h, "regret_ms"),
            worst_ms = f64_field(h, "worst_ms"),
        ));
    }
}

/// `end_us − start_us` of one span object, microseconds.
fn span_dur_us(s: &JsonNode) -> f64 {
    f64_field(s, "end_us") - f64_field(s, "start_us")
}

/// Renders one `traces` section (a span-ring dump: `spans` array plus
/// `recorded`/`dropped` totals) as per-trace waterfalls.
fn render_traces(out: &mut String, path: &str, section: &JsonNode) {
    let spans = section
        .get("spans")
        .and_then(JsonNode::as_arr)
        .unwrap_or(&[]);
    // Group by trace id, first-seen order (≈ record order).
    let mut order: Vec<&str> = Vec::new();
    let mut by_trace: std::collections::HashMap<&str, Vec<&JsonNode>> =
        std::collections::HashMap::new();
    for s in spans {
        let tid = str_field(s, "trace");
        by_trace
            .entry(tid)
            .or_insert_with(|| {
                order.push(tid);
                Vec::new()
            })
            .push(s);
    }
    out.push_str(&format!(
        "traces at {path}: {n} trace(s), recorded {rec}, dropped {drop}\n",
        n = order.len(),
        rec = f64_field(section, "recorded") as u64,
        drop = f64_field(section, "dropped") as u64,
    ));
    for tid in order {
        render_trace(out, tid, &by_trace[tid]);
    }
}

/// One trace: a header line per root (`children N` is the direct-child
/// count), its critical path (the longest-child chain), and the
/// waterfall with per-span self-time. A span whose parent fell out of
/// the ring's retained window renders as its own root.
fn render_trace(out: &mut String, tid: &str, spans: &[&JsonNode]) {
    let ids: std::collections::HashSet<&str> = spans.iter().map(|s| str_field(s, "span")).collect();
    let mut children: std::collections::HashMap<&str, Vec<usize>> =
        std::collections::HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.get("parent").and_then(JsonNode::as_str) {
            Some(p) if ids.contains(p) => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        f64_field(spans[*a], "start_us").total_cmp(&f64_field(spans[*b], "start_us"))
    };
    for kids in children.values_mut() {
        kids.sort_by(by_start);
    }
    roots.sort_by(by_start);
    for &r in &roots {
        let root = spans[r];
        let direct = children.get(str_field(root, "span")).map_or(0, Vec::len);
        out.push_str(&format!(
            "  trace {tid}: root {name} @{node} {dur:.3} ms, spans {total}, children {direct}\n",
            name = str_field(root, "name"),
            node = str_field(root, "node"),
            dur = span_dur_us(root) / 1e3,
            total = spans.len(),
        ));
        // Critical path: from the root, always follow the longest child.
        let mut crit: Vec<String> = Vec::new();
        let mut cur = r;
        for _ in 0..16 {
            crit.push(format!(
                "{} ({:.3} ms)",
                str_field(spans[cur], "name"),
                span_dur_us(spans[cur]) / 1e3
            ));
            let Some(kids) = children.get(str_field(spans[cur], "span")) else {
                break;
            };
            let Some(next) = kids
                .iter()
                .copied()
                .max_by(|&a, &b| span_dur_us(spans[a]).total_cmp(&span_dur_us(spans[b])))
            else {
                break;
            };
            cur = next;
        }
        out.push_str(&format!("    critical path: {}\n", crit.join(" -> ")));
        waterfall(out, spans, &children, r, f64_field(root, "start_us"), 0);
    }
}

/// Recursive waterfall line: offset from the root's start, duration,
/// self-time (duration minus direct children), and the span's attrs.
fn waterfall(
    out: &mut String,
    spans: &[&JsonNode],
    children: &std::collections::HashMap<&str, Vec<usize>>,
    i: usize,
    t0: f64,
    depth: usize,
) {
    // A malformed parent cycle must render truncated, not recurse forever.
    if depth > 16 {
        return;
    }
    let s = spans[i];
    let kids: &[usize] = children
        .get(str_field(s, "span"))
        .map_or(&[], Vec::as_slice);
    let child_sum: f64 = kids.iter().map(|&k| span_dur_us(spans[k])).sum();
    let self_ms = (span_dur_us(s) - child_sum).max(0.0) / 1e3;
    let attrs = match s.get("attrs") {
        Some(JsonNode::Obj(fields)) if !fields.is_empty() => {
            let kv: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                .collect();
            format!("  {{{}}}", kv.join(" "))
        }
        _ => String::new(),
    };
    out.push_str(&format!(
        "    {pad}{name:<16} @{node:<10} +{off:>9.3} ms {dur:>9.3} ms  self {self_ms:>8.3} ms{attrs}\n",
        pad = "  ".repeat(depth),
        name = str_field(s, "name"),
        node = str_field(s, "node"),
        off = (f64_field(s, "start_us") - t0) / 1e3,
        dur = span_dur_us(s) / 1e3,
    ));
    for &k in kids {
        waterfall(out, spans, children, k, t0, depth + 1);
    }
}

/// Collects every histogram object carrying a non-null `p99_exemplar`
/// (the tail bucket's trace link), tagged with its dotted path.
fn find_exemplar_histograms<'a>(
    node: &'a JsonNode,
    path: String,
    out: &mut Vec<(String, &'a JsonNode)>,
) {
    match node {
        JsonNode::Obj(fields) => {
            if matches!(node.get("p99_exemplar"), Some(JsonNode::Str(_))) {
                out.push((path.clone(), node));
            }
            for (k, v) in fields {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                find_exemplar_histograms(v, p, out);
            }
        }
        JsonNode::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let p = if path.is_empty() {
                    i.to_string()
                } else {
                    format!("{path}.{i}")
                };
                find_exemplar_histograms(item, p, out);
            }
        }
        _ => {}
    }
}

/// The exemplar table: every histogram tail next to the trace id that
/// explains it (resolve the id in a rendered `traces` section above).
fn render_exemplars(out: &mut String, entries: &[(String, &JsonNode)]) {
    out.push_str("histogram p99 exemplars (tail bucket -> trace):\n");
    for (path, hist) in entries {
        out.push_str(&format!(
            "  {path:<56} p99 {p99:.3} ms  trace {t}\n",
            p99 = f64_field(hist, "p99_ms"),
            t = str_field(hist, "p99_exemplar"),
        ));
    }
}

fn render_regressions(out: &mut String, path: &str, section: &JsonNode) {
    let findings = section
        .get("findings")
        .and_then(JsonNode::as_arr)
        .unwrap_or(&[]);
    out.push_str(&format!(
        "regressions at {path}: vs {base} — {n} compared, {s} skipped, {f} finding(s)\n",
        base = str_field(section, "baseline"),
        n = f64_field(section, "compared") as u64,
        s = f64_field(section, "skipped") as u64,
        f = findings.len(),
    ));
    for finding in findings {
        out.push_str(&format!(
            "  REGRESSION {p}: baseline {b:.4} -> current {c:.4} (limit {l:.4})\n",
            p = str_field(finding, "path"),
            b = f64_field(finding, "baseline"),
            c = f64_field(finding, "current"),
            l = f64_field(finding, "limit"),
        ));
    }
}

/// Renders the full text dashboard for one parsed envelope.
///
/// Always emits the envelope header; each observability section is
/// rendered once per place it appears in the tree, and a trailing line
/// counts what was found so an envelope with *no* telemetry reads as
/// such instead of printing nothing.
pub fn render_report(doc: &JsonNode, label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== obs report: {label} (bench \"{bench}\", wall {wall:.3}s, {par} core(s)) ==\n",
        bench = str_field(doc, "bench"),
        wall = f64_field(doc, "wall_clock_s"),
        par = f64_field(doc, "available_parallelism") as u64,
    ));
    let mut sections = 0usize;
    for (path, node) in find_sections(doc, "series") {
        if let Some(series) = node.as_arr() {
            render_series(&mut out, &path, series);
            sections += 1;
        }
    }
    for (path, node) in find_sections(doc, "slo") {
        if let Some(slos) = node.as_arr() {
            render_slos(&mut out, &path, slos);
            sections += 1;
        }
    }
    for (path, node) in find_sections(doc, "hot") {
        if let Some(hot) = node.as_arr() {
            render_hot(&mut out, &path, hot);
            sections += 1;
        }
    }
    for (path, node) in find_sections(doc, "traces") {
        if node.get("spans").and_then(JsonNode::as_arr).is_some() {
            render_traces(&mut out, &path, node);
            sections += 1;
        }
    }
    let mut exemplars = Vec::new();
    find_exemplar_histograms(doc, String::new(), &mut exemplars);
    if !exemplars.is_empty() {
        render_exemplars(&mut out, &exemplars);
        sections += 1;
    }
    for (path, node) in find_sections(doc, "regressions") {
        if node.get("findings").is_some() {
            render_regressions(&mut out, &path, node);
            sections += 1;
        }
    }
    out.push_str(&format!("{sections} observability section(s) rendered\n"));
    out
}

/// Reads, parses, and renders `path`; the `obs-report` subcommand's
/// whole implementation. Returns the rendered text or a description of
/// why the file could not be read.
pub fn report_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = neo_obs::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    Ok(render_report(&doc, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_normalizes_and_handles_degenerate_input() {
        assert_eq!(sparkline(&[]), "(empty)");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁') && line.ends_with('█'));
    }

    #[test]
    fn report_renders_every_section_wherever_it_nests() {
        let doc = neo_obs::parse(
            r#"{
              "bench": "cluster-chaos",
              "available_parallelism": 1,
              "wall_clock_s": 2.5,
              "report": {
                "chaos": {
                  "fleet": {
                    "series": [
                      {"name": "slo/sync_budget", "start_tick": 3, "points": [1.0, 0.4, 1.0]}
                    ],
                    "slo": [
                      {"name": "sync", "objective": 0.9, "budget_remaining": 0.625,
                       "fast_burn": 0.0, "slow_burn": 1.2, "fast_alerting": false,
                       "breached": false, "fast_burns_total": 1, "breaches_total": 0,
                       "ticks": 40, "bad_ticks": 3}
                    ],
                    "hot": [
                      {"fingerprint": "0x3fa9", "hits": 12, "misses": 3,
                       "latency_ewma_ms": 1.25, "executions": 0, "regret_ms": 0.0}
                    ]
                  }
                }
              },
              "regressions": {"baseline": "BENCH_x.json", "compared": 4, "skipped": 1,
                "findings": [{"path": "report.qps", "baseline": 100.0,
                              "current": 10.0, "limit": 35.0}]}
            }"#,
        )
        .expect("test doc parses");
        let text = render_report(&doc, "test");
        assert!(text.contains("bench \"cluster-chaos\""));
        assert!(text.contains("slo/sync_budget"));
        assert!(text.contains("▁")); // sparkline rendered
        assert!(text.contains("budget  62.5%"));
        assert!(text.contains("burns 1"));
        assert!(text.contains("0x3fa9"));
        assert!(text.contains("REGRESSION report.qps"));
        assert!(text.contains("4 observability section(s)"));
        // Each section is tagged with where it was found.
        assert!(text.contains("report.chaos.fleet.series"));
    }

    #[test]
    fn an_envelope_without_telemetry_reads_as_empty_not_blank() {
        let doc = neo_obs::parse("{\"bench\": \"search\", \"wall_clock_s\": 1.0}").expect("parses");
        let text = render_report(&doc, "plain");
        assert!(text.contains("0 observability section(s)"));
    }

    #[test]
    fn trace_view_renders_waterfall_critical_path_and_exemplars() {
        let doc = neo_obs::parse(
            r#"{
              "bench": "serve",
              "wall_clock_s": 1.0,
              "report": {
                "metrics": {
                  "serve_optimize_ms": {"count": 10, "mean_ms": 1.0, "p50_ms": 0.5,
                    "p95_ms": 4.0, "p99_ms": 4.5, "max_ms": 5.0,
                    "p99_exemplar": "00000000000feed1"},
                  "serve_warm_ms": {"count": 3, "mean_ms": 0.1, "p50_ms": 0.1,
                    "p95_ms": 0.2, "p99_ms": 0.2, "max_ms": 0.2,
                    "p99_exemplar": null}
                },
                "traces": {
                  "spans": [
                    {"seq": 0, "trace": "00000000000feed1", "span": "000000000000000a",
                     "parent": null, "name": "optimize", "node": "serve",
                     "start_us": 100, "end_us": 5100, "attrs": {"query": "q7"}},
                    {"seq": 1, "trace": "00000000000feed1", "span": "000000000000000b",
                     "parent": "000000000000000a", "name": "cache_probe", "node": "serve",
                     "start_us": 110, "end_us": 160, "attrs": {}},
                    {"seq": 2, "trace": "00000000000feed1", "span": "000000000000000c",
                     "parent": "000000000000000a", "name": "search", "node": "serve",
                     "start_us": 200, "end_us": 4900, "attrs": {}},
                    {"seq": 3, "trace": "00000000000feed1", "span": "000000000000000d",
                     "parent": "000000000000000a", "name": "cache_insert", "node": "serve",
                     "start_us": 4950, "end_us": 5000, "attrs": {}}
                  ],
                  "recorded": 4,
                  "dropped": 0
                }
              }
            }"#,
        )
        .expect("trace doc parses");
        let text = render_report(&doc, "trace-test");
        // Root line carries the direct-child count and the trace id.
        assert!(text.contains("trace 00000000000feed1: root optimize @serve"));
        assert!(text.contains("children 3"));
        // Critical path follows the longest child.
        assert!(text.contains("critical path: optimize (5.000 ms) -> search (4.700 ms)"));
        // Waterfall keeps every child and renders attrs inline.
        assert!(text.contains("cache_probe"));
        assert!(text.contains("cache_insert"));
        assert!(text.contains("{query=q7}"));
        // Non-null exemplars render with their histogram path; null ones don't.
        assert!(text.contains("histogram p99 exemplars"));
        assert!(text.contains("report.metrics.serve_optimize_ms"));
        assert!(text.contains("trace 00000000000feed1\n"));
        assert!(!text.contains("serve_warm_ms "));
        // Traces + exemplar table count as sections.
        assert!(text.contains("2 observability section(s)"));
    }
}
