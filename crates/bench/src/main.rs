//! `neo-repro` — regenerates every table and figure of the Neo paper's
//! evaluation (see DESIGN.md §3 for the experiment index).
//!
//! ```text
//! neo-repro <command> [--quick|--full] [--episodes N] [--seed S] [--workers W]
//!
//! commands:
//!   stats             dataset/workload summary statistics
//!   fig9-11           overall performance, learning curves, training time
//!   fig12             featurization ablation
//!   fig13             Ext-JOB generalization
//!   fig14             robustness to cardinality estimation errors
//!   fig15             per-query performance under both cost functions
//!   fig16             search time vs performance (+ greedy ablation)
//!   fig17             row-vector training time
//!   table2            similarity vs cardinality
//!   ablation-demo     is demonstration even necessary? (paper 6.3.3)
//!   ablation-treeconv tree convolution vs structure-blind network
//!   executor-vs-model latency-model fidelity vs the real executor
//!   bench-search      inference/search throughput -> BENCH_search.json
//!   serve-bench       multi-query serving throughput -> BENCH_serve.json
//!                     (--workers W sets the top concurrency level,
//!                      --smoke runs the tiny CI preset)
//!   learn-bench       closed-loop online learning -> BENCH_learn.json
//!                     (plan-quality trajectory vs the Selinger expert,
//!                      serving throughput under concurrent retraining,
//!                      hot-swap latency; --smoke for the CI preset)
//!   cluster-bench     multi-node optimization fleet -> BENCH_cluster.json
//!                     (per-node/aggregate qps for 1/2/4-node fleets,
//!                      generation-convergence lag, cross-node plan
//!                      byte-equality, restart recovery from the shared
//!                      checkpoint store, and the leader-kill failover
//!                      experiment: lease takeover latency, term fencing,
//!                      no generation fork, bounded store retention;
//!                      --nodes N caps the fleet sizes, --workers W sets
//!                      workers per node, --smoke for the CI preset)
//!   cluster-bench chaos  fleet soak under seeded fault injection ->
//!                      BENCH_cluster_chaos.json (transient store faults,
//!                      torn reads, crash litter, then a full outage:
//!                      asserts no history fork, no corrupt adoption, no
//!                      lost generation, degraded-leader resign before
//!                      lease lapse, full recovery; --fault-rate R and
//!                      --chaos-seed S tune the schedule)
//!   obs-report        text dashboard over any BENCH_*.json envelope:
//!                     sparklined time series, SLO error budgets, hot
//!                     fingerprints, regression verdicts, per-trace span
//!                     waterfalls (self-time + critical path), and the
//!                     histogram-tail exemplar table
//!   all               every figure/table experiment above, in order
//!                     (the bench-* / *-bench commands run separately:
//!                      they write JSON reports and assert their own
//!                      acceptance criteria)
//!
//! flags (shared across commands):
//!   --quick | --full  experiment sizing preset (default --quick)
//!   --episodes N      training episodes override
//!   --seed S          master seed (datasets, workloads, nets)
//!   --workers W       serve-bench concurrency ceiling / workers per node
//!   --nodes N         cluster-bench fleet-size ceiling (default 4)
//!   --baseline P      compare this run's envelope against P instead of the
//!                     previously committed BENCH_*.json being overwritten
//!   --gate            exit 1 when any envelope metric regressed past its
//!                     tolerance vs the baseline (CI regression gate)
//! ```

use neo_bench::figures;
use neo_bench::harness::Preset;

/// Assembles the envelope with a cross-run regression verdict (compared
/// against `--baseline <path>`, defaulting to the file being overwritten),
/// writes it to `path`, prints the verdict to stderr, and exits non-zero
/// under `--gate` when any metric collapsed past its tolerance.
fn write_gated_envelope(
    bench: &str,
    wall_s: f64,
    metrics: Option<&neo_obs::MetricsSnapshot>,
    report_json: &str,
    path: &str,
    args: &[String],
) {
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| path.to_string());
    let (envelope, regress) =
        neo_bench::bench_envelope_vs_baseline(bench, wall_s, metrics, report_json, &baseline);
    std::fs::write(path, envelope).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprint!("{}", regress.render_text());
    if args.iter().any(|a| a == "--gate") && regress.gate_failed() {
        eprintln!("regression gate FAILED for {bench}: metrics above collapsed past tolerance");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    if cmd == "obs-report" {
        // Text dashboard over any BENCH_*.json envelope: sparklined time
        // series, SLO error budgets, hot fingerprints, regression verdicts.
        let file = args
            .iter()
            .position(|a| a == "--file")
            .and_then(|i| args.get(i + 1))
            .or_else(|| args.get(1).filter(|a| !a.starts_with("--")))
            .cloned();
        let Some(file) = file else {
            eprintln!("usage: neo-repro obs-report <BENCH_*.json> (or --file <path>)");
            std::process::exit(2);
        };
        match neo_bench::obs_report::report_file(&file) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("obs-report: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let preset = Preset::from_args(&args);
    eprintln!(
        "preset: imdb x{}, tpch x{}, corp x{}, {} queries/workload, {} episodes, seed {}",
        preset.imdb_scale,
        preset.tpch_scale,
        preset.corp_scale,
        preset.queries_per_workload,
        preset.episodes,
        preset.seed
    );
    let only: Option<Vec<neo_bench::WorkloadKind>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|w| {
            w.split(',')
                .filter_map(|n| match n {
                    "job" => Some(neo_bench::WorkloadKind::Job),
                    "tpch" => Some(neo_bench::WorkloadKind::Tpch),
                    "corp" => Some(neo_bench::WorkloadKind::Corp),
                    _ => None,
                })
                .collect()
        });
    match cmd {
        "fig9-11" | "learning" => match &only {
            Some(kinds) => figures::fig9_to_11_filtered(&preset, kinds),
            None => figures::fig9_to_11(&preset),
        },
        "fig12" => figures::fig12(&preset),
        "fig13" => figures::fig13(&preset),
        "fig14" => figures::fig14(&preset),
        "fig15" => figures::fig15(&preset),
        "fig16" => figures::fig16(&preset),
        "fig17" => figures::fig17(&preset),
        "table2" => figures::table2(&preset),
        "stats" => figures::stats(&preset),
        "ablation-demo" => figures::ablation_demo(&preset),
        "ablation-treeconv" => figures::ablation_treeconv(&preset),
        "executor-vs-model" => figures::executor_vs_model(&preset),
        "bench-search" => {
            // Inference/search throughput (ISSUE 1): legacy per-expansion
            // predict vs the batched InferenceSession, plus end-to-end
            // wavefront search under the paper's 250 ms cutoff. Writes
            // BENCH_search.json so the perf trajectory is tracked per PR.
            let scale = if args.iter().any(|a| a == "--full") {
                0.12
            } else {
                0.05
            };
            neo_bench::section("search/inference throughput (BENCH_search.json)");
            let started = std::time::Instant::now();
            let report = neo_bench::harness::run_search_bench(scale, preset.seed);
            let wall_s = started.elapsed().as_secs_f64();
            print!("{}", report.to_json());
            let path = "BENCH_search.json";
            write_gated_envelope(
                "search",
                wall_s,
                Some(&report.metrics),
                &report.to_json(),
                path,
                &args,
            );
            eprintln!(
                "speedup {:.2}x (old {:.0} plans/s -> best batched {:.0} plans/s); wrote {path}",
                report.speedup,
                report.old_path.plans_per_sec,
                report
                    .new_path
                    .iter()
                    .map(|p| p.plans_per_sec)
                    .fold(0.0f64, f64::max),
            );
        }
        "serve-bench" => {
            // Multi-query serving throughput (ISSUE 2): cold scaling across
            // worker counts, a 50%-repeat mixed workload through the sharded
            // plan cache, and the single-threaded determinism check. Writes
            // BENCH_serve.json.
            let workers = args
                .iter()
                .position(|a| a == "--workers")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(4usize);
            let cfg = if args.iter().any(|a| a == "--smoke") {
                neo_bench::ServeBenchConfig::smoke(preset.seed)
            } else {
                neo_bench::ServeBenchConfig::standard(preset.seed, workers)
            };
            neo_bench::section("multi-query serving throughput (BENCH_serve.json)");
            let started = std::time::Instant::now();
            let report = neo_bench::run_serve_bench(&cfg);
            let wall_s = started.elapsed().as_secs_f64();
            print!("{}", report.to_json());
            let path = "BENCH_serve.json";
            write_gated_envelope(
                "serve",
                wall_s,
                Some(&report.metrics),
                &report.to_json(),
                path,
                &args,
            );
            let cold_best = report.cold.last().expect("cold points");
            let mixed_best = report.mixed.last().expect("mixed points");
            eprintln!(
                "cold scaling {:.2}x at {} workers ({} core(s) available); \
                 mixed hit rate {:.2}, hit speedup {:.0}x, plans match: {}; wrote {path}",
                cold_best.speedup_vs_1,
                cold_best.workers,
                report.available_parallelism,
                mixed_best.hit_rate,
                report.hit_speedup,
                report.plans_match_single_threaded,
            );
            eprintln!(
                "histograms: search p50/p95/p99 {:.2}/{:.2}/{:.2} ms, \
                 cache-hit p50/p95/p99 {:.3}/{:.3}/{:.3} ms; \
                 obs overhead on the cold path: {:.1} qps on vs {:.1} qps off \
                 (ratio {:.4}, floor {:.2})",
                mixed_best.search_p50_ms,
                mixed_best.search_p95_ms,
                mixed_best.search_p99_ms,
                mixed_best.hit_p50_ms,
                mixed_best.hit_p95_ms,
                mixed_best.hit_p99_ms,
                report.obs_overhead.qps_obs_on,
                report.obs_overhead.qps_obs_off,
                report.obs_overhead.ratio,
                neo_bench::serve_bench::OBS_OVERHEAD_FLOOR,
            );
            eprintln!(
                "span overhead on the cold path: {:.1} qps tracing on vs {:.1} qps off \
                 (ratio {:.4}, floor {:.2}, {} span(s) committed)",
                report.span_overhead.qps_tracing_on,
                report.span_overhead.qps_tracing_off,
                report.span_overhead.ratio,
                neo_bench::serve_bench::SPAN_OVERHEAD_FLOOR,
                report.span_overhead.spans_recorded,
            );
            assert!(
                report.plans_match_single_threaded,
                "multi-threaded serving diverged from single-threaded plans"
            );
        }
        "learn-bench" => {
            // Closed-loop online learning (ISSUE 3): plan-quality
            // trajectory across background retrain generations vs the
            // Selinger expert baseline, serving throughput with a
            // concurrent trainer, and hot-swap latency. Writes
            // BENCH_learn.json.
            let workers = args
                .iter()
                .position(|a| a == "--workers")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(4usize);
            let cfg = if args.iter().any(|a| a == "--smoke") {
                neo_bench::LearnBenchConfig::smoke(preset.seed)
            } else {
                neo_bench::LearnBenchConfig::standard(preset.seed, workers)
            };
            neo_bench::section("closed-loop online learning (BENCH_learn.json)");
            let started = std::time::Instant::now();
            let report = neo_bench::run_learn_bench(&cfg);
            let wall_s = started.elapsed().as_secs_f64();
            print!("{}", report.to_json());
            let path = "BENCH_learn.json";
            write_gated_envelope(
                "learn",
                wall_s,
                Some(&report.metrics),
                &report.to_json(),
                path,
                &args,
            );
            eprintln!(
                "trajectory {:.1} ms (gen 0, untrained) -> {:.1} ms (gen {}) = {:.2}x better; \
                 expert {:.1} ms (final at {:.2}x, envelope {:.1}x: {}); \
                 throughput {:.0} qps frozen vs {:.0} qps while retraining \
                 ({:.0}%, CPU fair-share bound {:.0}% on {} core(s)); \
                 swap {:.0} us mean; wrote {path}",
                report.gen0_mean_ms,
                report.final_mean_ms,
                report.generations,
                report.improvement_vs_gen0,
                report.expert_mean_ms,
                report.final_mean_ms / report.expert_mean_ms.max(1e-9),
                report.envelope_factor,
                if report.within_expert_envelope {
                    "within"
                } else {
                    "OUTSIDE"
                },
                report.throughput_frozen_qps,
                report.throughput_training_qps,
                report.throughput_ratio * 100.0,
                report.cpu_share_bound * 100.0,
                report.available_parallelism,
                report.swap_mean_us,
            );
            assert!(
                report.final_mean_ms < report.gen0_mean_ms,
                "closed loop failed to improve on the untrained model"
            );
            assert!(
                report.stable_after_final_swap,
                "post-swap serving is not deterministic"
            );
            assert!(
                report.checkpoint_roundtrip_ok,
                "checkpoint save -> load -> predict round-trip failed"
            );
        }
        "cluster-bench" if args.get(1).map(String::as_str) == Some("chaos") => {
            // Chaos soak standalone (ISSUE 6): the fleet's closed loop
            // under a seeded fault-injecting store, then a full store
            // outage survived by graceful degradation. All robustness
            // invariants (no history fork, no corrupt adoption, no lost
            // generation, resign-before-lease-lapse, full recovery) are
            // asserted inside the binary; the measured point is written
            // to BENCH_cluster_chaos.json.
            let workers = args
                .iter()
                .position(|a| a == "--workers")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(2usize);
            let nodes = args
                .iter()
                .position(|a| a == "--nodes")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(3usize);
            let mut cfg = if args.iter().any(|a| a == "--smoke") {
                neo_bench::ClusterBenchConfig::smoke(preset.seed)
            } else {
                neo_bench::ClusterBenchConfig::standard(preset.seed, nodes, workers)
            };
            if let Some(rate) = args
                .iter()
                .position(|a| a == "--fault-rate")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
            {
                cfg.chaos_fault_rate = rate;
            }
            if let Some(seed) = args
                .iter()
                .position(|a| a == "--chaos-seed")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
            {
                cfg.chaos_seed = seed;
            }
            neo_bench::section(
                "chaos soak: fleet under fault injection (BENCH_cluster_chaos.json)",
            );
            let started = std::time::Instant::now();
            let point = neo_bench::run_chaos_bench(&cfg);
            let wall_s = started.elapsed().as_secs_f64();
            let json = format!("{{\n  \"chaos\": {}\n}}\n", point.to_json());
            print!("{json}");
            let path = "BENCH_cluster_chaos.json";
            write_gated_envelope(
                "cluster-chaos",
                wall_s,
                Some(&point.metrics),
                &json,
                path,
                &args,
            );
            eprintln!(
                "chaos: {} nodes soaked {} generation(s) at fault rate {:.0}% (seed {}): \
                 {} faults / {} torn reads / {} crash litters over {} ops, \
                 {} retries recovered {} ops, 0 lost generations, history forks: {}; \
                 outage {:.0} ms degraded the leader (resigned pre-lapse: {}), \
                 term {} -> {}, fleet recovered healthy: {}; wrote {path}",
                point.nodes,
                point.soak_generations,
                point.fault_rate * 100.0,
                point.seed,
                point.injected_faults,
                point.corrupt_loads,
                point.crash_publishes,
                point.ops,
                point.retry_retries,
                point.retry_recoveries,
                point.history_forks,
                point.outage_ms,
                point.resigned_before_lease_expiry,
                point.old_term,
                point.new_term,
                point.recovered_all_healthy,
            );
            eprintln!(
                "postmortem: {} ring events reconstruct outage -> resign -> fenced \
                 takeover (no logs); ex-leader Degraded->Healthy in {:.0} ms; \
                 fleet snapshot embedded in {path}",
                point.events_recorded, point.leader_recovery_ms,
            );
        }
        "cluster-bench" => {
            // Multi-node optimization fleet (ISSUE 4): shared checkpoint
            // store, centralized training, crash-recovering followers.
            // Writes BENCH_cluster.json; the fleet invariants (generation
            // convergence, cross-node plan byte-equality, warm restart
            // recovery) are asserted inside the binary.
            let workers = args
                .iter()
                .position(|a| a == "--workers")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(2usize);
            let nodes = args
                .iter()
                .position(|a| a == "--nodes")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(4usize);
            let cfg = if args.iter().any(|a| a == "--smoke") {
                neo_bench::ClusterBenchConfig::smoke(preset.seed)
            } else {
                neo_bench::ClusterBenchConfig::standard(preset.seed, nodes, workers)
            };
            neo_bench::section("multi-node optimization fleet (BENCH_cluster.json)");
            let started = std::time::Instant::now();
            let report = neo_bench::run_cluster_bench(&cfg);
            let wall_s = started.elapsed().as_secs_f64();
            print!("{}", report.to_json());
            let path = "BENCH_cluster.json";
            write_gated_envelope(
                "cluster",
                wall_s,
                Some(&report.chaos.metrics),
                &report.to_json(),
                path,
                &args,
            );
            let largest = report.scaling.last().expect("scaling points");
            eprintln!(
                "fleet {} nodes: aggregate {:.0} qps search-bound / {:.0} qps warm-hit \
                 ({} core(s) available), \
                 convergence lag mean {:.1} ms / max {:.1} ms, \
                 all nodes at generation {}, plans byte-identical: {}; \
                 restart recovered to generation {} in {:.1} ms \
                 (retrained: {}); wrote {path}",
                largest.nodes,
                largest.aggregate_search_qps,
                largest.aggregate_hit_qps,
                report.available_parallelism,
                largest.convergence_lag_ms_mean,
                largest.convergence_lag_ms_max,
                largest.final_generation,
                largest.plans_identical,
                report.restart.recovered_generation,
                report.restart.recovery_ms,
                report.restart.retrained_during_recovery,
            );
            let f = &report.failover;
            eprintln!(
                "failover: leader killed at generation {}, {} promoted in {:.0} ms \
                 (term {} -> {}), history advanced to generation {}, \
                 survivors identical: {}; retain kept {} checkpoint(s), {} tmp file(s)",
                f.generation_at_kill,
                f.promoted_node,
                f.promotion_ms,
                f.old_term,
                f.new_term,
                f.post_failover_generation,
                f.survivors_identical,
                f.retained_checkpoints,
                f.tmp_files,
            );
            assert!(
                report.scaling.iter().all(|p| p.plans_identical),
                "cross-node plan divergence"
            );
            assert!(
                !report.restart.retrained_during_recovery
                    && report.restart.plans_match_after_recovery,
                "restart recovery was not warm"
            );
            assert!(
                f.new_term > f.old_term
                    && f.post_failover_generation > f.generation_at_kill
                    && f.survivors_identical
                    && f.tmp_files == 0,
                "leader failover forked or littered the fleet history"
            );
        }
        "all" => {
            figures::fig9_to_11(&preset);
            figures::fig12(&preset);
            figures::fig13(&preset);
            figures::fig14(&preset);
            figures::fig15(&preset);
            figures::fig16(&preset);
            figures::fig17(&preset);
            figures::table2(&preset);
            figures::ablation_demo(&preset);
            figures::ablation_treeconv(&preset);
            figures::executor_vs_model(&preset);
        }
        _ => {
            if cmd != "help" && cmd != "--help" && cmd != "-h" {
                eprintln!("unknown command {cmd:?}");
            }
            eprintln!(
                "usage: neo-repro <command> [--quick|--full] [--episodes N] [--seed S] \
                 [--workers W] [--nodes N]\n\
                 commands: stats fig9-11 fig12 fig13 fig14 fig15 fig16 fig17 table2 \
                 ablation-demo ablation-treeconv executor-vs-model bench-search \
                 serve-bench learn-bench cluster-bench obs-report all\n\
                 every bench that writes a BENCH_*.json accepts --baseline P \
                 (compare against P instead of the file being overwritten) and \
                 --gate (exit 1 on any regression past tolerance)\n\
                 obs-report <file>: render the observability dashboard for a \
                 BENCH_*.json envelope\n\
                 serve-bench flags: --workers W (top concurrency level, default 4), \
                 --smoke (tiny CI preset)\n\
                 learn-bench flags: --workers W (service workers, default 4), \
                 --smoke (tiny CI preset)\n\
                 cluster-bench flags: --nodes N (fleet-size ceiling, default 4), \
                 --workers W (workers per node, default 2), --seed S, \
                 --smoke (tiny CI preset)\n\
                 cluster-bench chaos: fault-injected fleet soak -> BENCH_cluster_chaos.json; \
                 flags: --fault-rate R (per-op transient-fault probability, default 0.12), \
                 --chaos-seed S (fault schedule seed; same seed + same op sequence \
                 reproduces the same fault schedule), --nodes/--workers/--smoke as above"
            );
            std::process::exit(if cmd == "help" || cmd == "--help" || cmd == "-h" {
                0
            } else {
                2
            });
        }
    }
}
