//! Shared experiment machinery: presets, dataset/workload construction,
//! and the learning-run driver used by Figures 9–13.

use neo::{CostKind, FeaturizationChoice, NeoConfig, NetConfig};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_expert::{native_optimize, postgres_expert};
use neo_query::{Query, Workload};
use neo_storage::{datagen, Database};

/// Experiment sizing preset.
#[derive(Clone, Debug)]
pub struct Preset {
    /// Dataset scale factors.
    pub imdb_scale: f64,
    /// TPC-H scale factor.
    pub tpch_scale: f64,
    /// Corp scale factor.
    pub corp_scale: f64,
    /// Queries kept per workload (stratified subsample; `usize::MAX` = all).
    pub queries_per_workload: usize,
    /// Drop queries with more than this many relations (`None` = keep all).
    /// Quick mode trims the 13–17-relation tail: a single catastrophic
    /// large-join plan otherwise dominates single-seed totals.
    pub max_relations: Option<usize>,
    /// Corp workload generation count.
    pub corp_query_count: usize,
    /// Training episodes.
    pub episodes: usize,
    /// Neo configuration template (featurization overridden per run).
    pub neo: NeoConfig,
    /// Master seed.
    pub seed: u64,
}

impl Preset {
    /// Single-core-friendly preset (minutes). Dataset scales keep the
    /// paper's *relative* sizes (TPC-H < JOB < Corp).
    pub fn quick() -> Self {
        Preset {
            imdb_scale: 0.12,
            tpch_scale: 0.12,
            corp_scale: 0.1,
            queries_per_workload: 44,
            max_relations: Some(12),
            corp_query_count: 60,
            episodes: 18,
            neo: NeoConfig {
                featurization: FeaturizationChoice::RVectorJoins,
                net: NetConfig {
                    query_layers: vec![64, 32, 16],
                    conv_channels: vec![32, 32, 24],
                    head_layers: vec![32, 16],
                    lr: 2e-3,
                    grad_clip: 5.0,
                    ignore_structure: false,
                },
                bootstrap_epochs: 24,
                epochs_per_episode: 3,
                batch_size: 64,
                max_samples_per_retrain: 3072,
                search_base_expansions: 28,
                emb_dim: 16,
                emb_epochs: 1,
                cost_kind: CostKind::WorkloadLatency,
                ..Default::default()
            },
            seed: 42,
        }
    }

    /// Paper-shaped preset (hours on one core): full datasets, all 113 JOB
    /// queries, more episodes, bigger network.
    pub fn full() -> Self {
        Preset {
            imdb_scale: 1.0,
            tpch_scale: 1.0,
            corp_scale: 1.0,
            queries_per_workload: usize::MAX,
            max_relations: None,
            corp_query_count: 150,
            episodes: 30,
            neo: NeoConfig {
                featurization: FeaturizationChoice::RVectorJoins,
                net: NetConfig::default(),
                emb_dim: 32,
                emb_epochs: 2,
                ..Default::default()
            },
            seed: 42,
        }
    }

    /// Parses `--full` / `--quick` style argument lists.
    pub fn from_args(args: &[String]) -> Self {
        let mut p =
            if args.iter().any(|a| a == "--full") { Preset::full() } else { Preset::quick() };
        if let Some(i) = args.iter().position(|a| a == "--episodes") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                p.episodes = v;
            }
        }
        if let Some(i) = args.iter().position(|a| a == "--seed") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                p.seed = v;
            }
        }
        p
    }
}

/// The three evaluation workloads (paper §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Join Order Benchmark over the IMDB-like database.
    Job,
    /// TPC-H-like.
    Tpch,
    /// Corp-like dashboard workload.
    Corp,
}

impl WorkloadKind {
    /// All three, in the paper's order.
    pub const ALL: [WorkloadKind; 3] = [WorkloadKind::Job, WorkloadKind::Tpch, WorkloadKind::Corp];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Job => "JOB",
            WorkloadKind::Tpch => "TPC-H",
            WorkloadKind::Corp => "Corp",
        }
    }
}

/// Builds the dataset for a workload kind under a preset.
pub fn build_db(kind: WorkloadKind, preset: &Preset) -> Database {
    match kind {
        WorkloadKind::Job => datagen::imdb::generate(preset.imdb_scale, preset.seed),
        WorkloadKind::Tpch => datagen::tpch::generate(preset.tpch_scale, preset.seed),
        WorkloadKind::Corp => datagen::corp::generate(preset.corp_scale, preset.seed),
    }
}

/// Builds (and optionally subsamples) the workload, stratified by relation
/// count so the size distribution is preserved.
pub fn build_workload(db: &Database, kind: WorkloadKind, preset: &Preset) -> Workload {
    let mut wl = match kind {
        WorkloadKind::Job => neo_query::workload::job::generate(db, preset.seed),
        WorkloadKind::Tpch => neo_query::workload::tpch::generate(db, preset.seed),
        WorkloadKind::Corp => {
            neo_query::workload::corp::generate(db, preset.seed, preset.corp_query_count)
        }
    };
    if let Some(cap) = preset.max_relations {
        wl.queries.retain(|q| q.num_relations() <= cap);
    }
    let take = preset.queries_per_workload;
    if wl.queries.len() > take {
        // Stratified: sort by (relations, id) and take evenly spaced.
        let mut idx: Vec<usize> = (0..wl.queries.len()).collect();
        idx.sort_by_key(|&i| (wl.queries[i].num_relations(), wl.queries[i].id.clone()));
        let step = wl.queries.len() as f64 / take as f64;
        let keep: Vec<usize> = (0..take).map(|k| idx[(k as f64 * step) as usize]).collect();
        let mut kept: Vec<Query> = Vec::with_capacity(take);
        for (i, q) in wl.queries.iter().enumerate() {
            if keep.contains(&i) {
                kept.push(q.clone());
            }
        }
        wl.queries = kept;
    }
    wl
}

/// Train/test split: random 80/20 for JOB and Corp, template-aware for
/// TPC-H (paper §6.1).
pub fn split_workload(
    wl: &Workload,
    kind: WorkloadKind,
    seed: u64,
) -> (Vec<Query>, Vec<Query>) {
    match kind {
        WorkloadKind::Tpch => wl.split_by_family(0.2, seed),
        _ => wl.split_random(0.2, seed),
    }
}

/// One point of a learning curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Episode index (0 = right after bootstrap).
    pub episode: usize,
    /// Total Neo test-set latency / total native-optimizer latency.
    pub norm_vs_native: f64,
    /// Median over test queries of (Neo latency / native latency) — the
    /// robust per-query view (the paper suppresses the same noise by
    /// reporting medians over fifty runs).
    pub median_vs_native: f64,
    /// Total Neo test-set latency / PostgreSQL-plans-on-this-engine total.
    pub norm_vs_pg: f64,
    /// Median over test queries of (Neo latency / PostgreSQL-plan latency).
    pub median_vs_pg: f64,
    /// Cumulative NN wall-clock minutes so far.
    pub nn_wall_min: f64,
    /// Cumulative simulated execution minutes so far.
    pub exec_sim_min: f64,
    /// Mean retrain loss this episode.
    pub loss: f32,
}

/// Result of one learning run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Target engine.
    pub engine: Engine,
    /// Workload name.
    pub workload: &'static str,
    /// Featurization legend name.
    pub feat: &'static str,
    /// Learning curve, episode 0 (post-bootstrap) onward.
    pub curve: Vec<CurvePoint>,
    /// Row-vector build time (ms), 0 for 1-Hot/Histogram.
    pub emb_build_ms: f64,
}

impl RunRecord {
    /// Final relative-to-native performance (the Fig. 9 quantity): the
    /// median of the last three episodes. The paper reports the median of
    /// fifty random restarts at episode 100; with a single seed and far
    /// fewer episodes, a trailing median plays the same noise-suppression
    /// role (see EXPERIMENTS.md).
    pub fn final_relative(&self) -> f64 {
        let n = self.curve.len();
        if n == 0 {
            return f64::NAN;
        }
        let mut tail: Vec<f64> =
            self.curve[n.saturating_sub(3)..].iter().map(|c| c.median_vs_native).collect();
        crate::median(&mut tail)
    }

    /// First cumulative wall-clock minutes at which Neo matched the
    /// PostgreSQL-plans baseline / the native optimizer (Fig. 11).
    /// Returns `(nn_min, exec_min)` or `None` if never reached.
    pub fn milestone(&self, vs_native: bool) -> Option<(f64, f64)> {
        self.curve
            .iter()
            .find(|c| if vs_native { c.median_vs_native <= 1.0 } else { c.median_vs_pg <= 1.0 })
            .map(|c| (c.nn_wall_min, c.exec_sim_min))
    }
}

/// Runs one full learning experiment: bootstrap from the PostgreSQL-like
/// expert, train for `preset.episodes` episodes, and evaluate the test set
/// against the native optimizer after every episode.
pub fn run_learning(
    db: &Database,
    kind: WorkloadKind,
    engine: Engine,
    featurization: FeaturizationChoice,
    preset: &Preset,
    seed: u64,
) -> RunRecord {
    let wl = build_workload(db, kind, preset);
    let (train, test) = split_workload(&wl, kind, seed);
    let mut cfg = preset.neo.clone();
    cfg.featurization = featurization;
    cfg.seed = seed;

    // Baselines on the test set.
    let profile = engine.profile();
    let mut oracle = CardinalityOracle::new();
    let mut native_lats = Vec::with_capacity(test.len());
    let mut pg_lats = Vec::with_capacity(test.len());
    for q in &test {
        let native = native_optimize(db, q, engine, &mut oracle);
        native_lats.push(true_latency(db, q, &profile, &mut oracle, &native));
        let pg = postgres_expert(db, q);
        pg_lats.push(true_latency(db, q, &profile, &mut oracle, &pg));
    }
    let native_total: f64 = native_lats.iter().sum();
    let pg_total: f64 = pg_lats.iter().sum();

    let mut neo = neo::Neo::bootstrap(db, engine, train, cfg);
    let mut curve = Vec::new();
    let eval = |neo: &mut neo::Neo, loss: f32, episode: usize| -> CurvePoint {
        let lats = neo.evaluate(&test);
        let total: f64 = lats.iter().sum();
        let mut rn: Vec<f64> =
            lats.iter().zip(&native_lats).map(|(l, n)| l / n.max(1e-9)).collect();
        let mut rp: Vec<f64> = lats.iter().zip(&pg_lats).map(|(l, p)| l / p.max(1e-9)).collect();
        CurvePoint {
            episode,
            norm_vs_native: total / native_total.max(1e-9),
            median_vs_native: crate::median(&mut rn),
            norm_vs_pg: total / pg_total.max(1e-9),
            median_vs_pg: crate::median(&mut rp),
            nn_wall_min: neo.nn_wall_ms / 60_000.0,
            exec_sim_min: neo.sim_exec_ms / 60_000.0,
            loss,
        }
    };
    curve.push(eval(&mut neo, 0.0, 0));
    for ep in 1..=preset.episodes {
        let stats = neo.run_episode(ep);
        curve.push(eval(&mut neo, stats.mean_loss, ep));
    }
    RunRecord {
        engine,
        workload: kind.name(),
        feat: featurization_name(featurization),
        curve,
        emb_build_ms: neo.emb_build_ms,
    }
}

/// Legend name for a featurization choice.
pub fn featurization_name(f: FeaturizationChoice) -> &'static str {
    match f {
        FeaturizationChoice::OneHot => "1-Hot",
        FeaturizationChoice::Histogram => "Histograms",
        FeaturizationChoice::RVectorJoins => "R-Vectors",
        FeaturizationChoice::RVectorNoJoins => "R-Vectors (no joins)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_args_parse() {
        let p = Preset::from_args(&["--episodes".into(), "3".into(), "--seed".into(), "9".into()]);
        assert_eq!(p.episodes, 3);
        assert_eq!(p.seed, 9);
        let f = Preset::from_args(&["--full".into()]);
        assert_eq!(f.queries_per_workload, usize::MAX);
        assert!(f.max_relations.is_none());
    }

    #[test]
    fn quick_workloads_respect_caps() {
        let p = Preset::quick();
        for kind in WorkloadKind::ALL {
            let db = build_db(kind, &p);
            let wl = build_workload(&db, kind, &p);
            assert!(wl.queries.len() <= p.queries_per_workload, "{}", kind.name());
            if let Some(cap) = p.max_relations {
                assert!(wl.queries.iter().all(|q| q.num_relations() <= cap));
            }
            // Stratification preserves a spread of sizes.
            let sizes: std::collections::HashSet<usize> =
                wl.queries.iter().map(|q| q.num_relations()).collect();
            assert!(sizes.len() >= 3, "{} sizes collapsed: {:?}", kind.name(), sizes);
            // Split is a partition.
            let (train, test) = split_workload(&wl, kind, p.seed);
            assert_eq!(train.len() + test.len(), wl.queries.len());
        }
    }

    #[test]
    fn milestone_finds_first_crossing() {
        let mk = |episode, m: f64| CurvePoint {
            episode,
            norm_vs_native: m,
            median_vs_native: m,
            norm_vs_pg: m * 2.0,
            median_vs_pg: m * 2.0,
            nn_wall_min: episode as f64,
            exec_sim_min: episode as f64 * 10.0,
            loss: 0.0,
        };
        let rec = RunRecord {
            engine: Engine::PostgresLike,
            workload: "JOB",
            feat: "R-Vectors",
            curve: vec![mk(0, 5.0), mk(1, 1.2), mk(2, 0.9), mk(3, 0.8)],
            emb_build_ms: 0.0,
        };
        assert_eq!(rec.milestone(true), Some((2.0, 20.0)));
        assert!(rec.milestone(false).is_none()); // vs_pg never <= 1
        // Trailing median of the last three points.
        assert!((rec.final_relative() - 0.9).abs() < 1e-9);
    }
}
