//! Shared experiment machinery: presets, dataset/workload construction,
//! the learning-run driver used by Figures 9–13, and the inference/search
//! throughput benchmark behind `BENCH_search.json`.

use neo::{
    best_first_search, CostKind, Featurization, FeaturizationChoice, Featurizer, NeoConfig,
    NetConfig, SearchBudget, ValueNet,
};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_expert::{native_optimize, postgres_expert};
use neo_query::{children, PartialPlan, Query, QueryContext, Workload};
use neo_storage::{datagen, Database};
use std::time::Instant;

/// Experiment sizing preset.
#[derive(Clone, Debug)]
pub struct Preset {
    /// Dataset scale factors.
    pub imdb_scale: f64,
    /// TPC-H scale factor.
    pub tpch_scale: f64,
    /// Corp scale factor.
    pub corp_scale: f64,
    /// Queries kept per workload (stratified subsample; `usize::MAX` = all).
    pub queries_per_workload: usize,
    /// Drop queries with more than this many relations (`None` = keep all).
    /// Quick mode trims the 13–17-relation tail: a single catastrophic
    /// large-join plan otherwise dominates single-seed totals.
    pub max_relations: Option<usize>,
    /// Corp workload generation count.
    pub corp_query_count: usize,
    /// Training episodes.
    pub episodes: usize,
    /// Neo configuration template (featurization overridden per run).
    pub neo: NeoConfig,
    /// Master seed.
    pub seed: u64,
}

impl Preset {
    /// Single-core-friendly preset (minutes). Dataset scales keep the
    /// paper's *relative* sizes (TPC-H < JOB < Corp).
    pub fn quick() -> Self {
        Preset {
            imdb_scale: 0.12,
            tpch_scale: 0.12,
            corp_scale: 0.1,
            queries_per_workload: 44,
            max_relations: Some(12),
            corp_query_count: 60,
            episodes: 18,
            neo: NeoConfig {
                featurization: FeaturizationChoice::RVectorJoins,
                net: NetConfig {
                    query_layers: vec![64, 32, 16],
                    conv_channels: vec![32, 32, 24],
                    head_layers: vec![32, 16],
                    lr: 2e-3,
                    grad_clip: 5.0,
                    ignore_structure: false,
                },
                bootstrap_epochs: 24,
                epochs_per_episode: 3,
                batch_size: 64,
                max_samples_per_retrain: 3072,
                search_base_expansions: 28,
                emb_dim: 16,
                emb_epochs: 1,
                cost_kind: CostKind::WorkloadLatency,
                ..Default::default()
            },
            seed: 42,
        }
    }

    /// Paper-shaped preset (hours on one core): full datasets, all 113 JOB
    /// queries, more episodes, bigger network.
    pub fn full() -> Self {
        Preset {
            imdb_scale: 1.0,
            tpch_scale: 1.0,
            corp_scale: 1.0,
            queries_per_workload: usize::MAX,
            max_relations: None,
            corp_query_count: 150,
            episodes: 30,
            neo: NeoConfig {
                featurization: FeaturizationChoice::RVectorJoins,
                net: NetConfig::default(),
                emb_dim: 32,
                emb_epochs: 2,
                ..Default::default()
            },
            seed: 42,
        }
    }

    /// Parses `--full` / `--quick` style argument lists.
    pub fn from_args(args: &[String]) -> Self {
        let mut p = if args.iter().any(|a| a == "--full") {
            Preset::full()
        } else {
            Preset::quick()
        };
        if let Some(i) = args.iter().position(|a| a == "--episodes") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                p.episodes = v;
            }
        }
        if let Some(i) = args.iter().position(|a| a == "--seed") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                p.seed = v;
            }
        }
        p
    }
}

/// The three evaluation workloads (paper §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Join Order Benchmark over the IMDB-like database.
    Job,
    /// TPC-H-like.
    Tpch,
    /// Corp-like dashboard workload.
    Corp,
}

impl WorkloadKind {
    /// All three, in the paper's order.
    pub const ALL: [WorkloadKind; 3] = [WorkloadKind::Job, WorkloadKind::Tpch, WorkloadKind::Corp];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Job => "JOB",
            WorkloadKind::Tpch => "TPC-H",
            WorkloadKind::Corp => "Corp",
        }
    }
}

/// Builds the dataset for a workload kind under a preset.
pub fn build_db(kind: WorkloadKind, preset: &Preset) -> Database {
    match kind {
        WorkloadKind::Job => datagen::imdb::generate(preset.imdb_scale, preset.seed),
        WorkloadKind::Tpch => datagen::tpch::generate(preset.tpch_scale, preset.seed),
        WorkloadKind::Corp => datagen::corp::generate(preset.corp_scale, preset.seed),
    }
}

/// Builds (and optionally subsamples) the workload, stratified by relation
/// count so the size distribution is preserved.
pub fn build_workload(db: &Database, kind: WorkloadKind, preset: &Preset) -> Workload {
    let mut wl = match kind {
        WorkloadKind::Job => neo_query::workload::job::generate(db, preset.seed),
        WorkloadKind::Tpch => neo_query::workload::tpch::generate(db, preset.seed),
        WorkloadKind::Corp => {
            neo_query::workload::corp::generate(db, preset.seed, preset.corp_query_count)
        }
    };
    if let Some(cap) = preset.max_relations {
        wl.queries.retain(|q| q.num_relations() <= cap);
    }
    let take = preset.queries_per_workload;
    if wl.queries.len() > take {
        // Stratified: sort by (relations, id) and take evenly spaced.
        let mut idx: Vec<usize> = (0..wl.queries.len()).collect();
        idx.sort_by_key(|&i| (wl.queries[i].num_relations(), wl.queries[i].id.clone()));
        let step = wl.queries.len() as f64 / take as f64;
        let keep: Vec<usize> = (0..take).map(|k| idx[(k as f64 * step) as usize]).collect();
        let mut kept: Vec<Query> = Vec::with_capacity(take);
        for (i, q) in wl.queries.iter().enumerate() {
            if keep.contains(&i) {
                kept.push(q.clone());
            }
        }
        wl.queries = kept;
    }
    wl
}

/// Train/test split: random 80/20 for JOB and Corp, template-aware for
/// TPC-H (paper §6.1).
pub fn split_workload(wl: &Workload, kind: WorkloadKind, seed: u64) -> (Vec<Query>, Vec<Query>) {
    match kind {
        WorkloadKind::Tpch => wl.split_by_family(0.2, seed),
        _ => wl.split_random(0.2, seed),
    }
}

/// One point of a learning curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Episode index (0 = right after bootstrap).
    pub episode: usize,
    /// Total Neo test-set latency / total native-optimizer latency.
    pub norm_vs_native: f64,
    /// Median over test queries of (Neo latency / native latency) — the
    /// robust per-query view (the paper suppresses the same noise by
    /// reporting medians over fifty runs).
    pub median_vs_native: f64,
    /// Total Neo test-set latency / PostgreSQL-plans-on-this-engine total.
    pub norm_vs_pg: f64,
    /// Median over test queries of (Neo latency / PostgreSQL-plan latency).
    pub median_vs_pg: f64,
    /// Cumulative NN wall-clock minutes so far.
    pub nn_wall_min: f64,
    /// Cumulative simulated execution minutes so far.
    pub exec_sim_min: f64,
    /// Mean retrain loss this episode.
    pub loss: f32,
}

/// Result of one learning run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Target engine.
    pub engine: Engine,
    /// Workload name.
    pub workload: &'static str,
    /// Featurization legend name.
    pub feat: &'static str,
    /// Learning curve, episode 0 (post-bootstrap) onward.
    pub curve: Vec<CurvePoint>,
    /// Row-vector build time (ms), 0 for 1-Hot/Histogram.
    pub emb_build_ms: f64,
}

impl RunRecord {
    /// Final relative-to-native performance (the Fig. 9 quantity): the
    /// median of the last three episodes. The paper reports the median of
    /// fifty random restarts at episode 100; with a single seed and far
    /// fewer episodes, a trailing median plays the same noise-suppression
    /// role (see EXPERIMENTS.md).
    pub fn final_relative(&self) -> f64 {
        let n = self.curve.len();
        if n == 0 {
            return f64::NAN;
        }
        let mut tail: Vec<f64> = self.curve[n.saturating_sub(3)..]
            .iter()
            .map(|c| c.median_vs_native)
            .collect();
        crate::median(&mut tail)
    }

    /// First cumulative wall-clock minutes at which Neo matched the
    /// PostgreSQL-plans baseline / the native optimizer (Fig. 11).
    /// Returns `(nn_min, exec_min)` or `None` if never reached.
    pub fn milestone(&self, vs_native: bool) -> Option<(f64, f64)> {
        self.curve
            .iter()
            .find(|c| {
                if vs_native {
                    c.median_vs_native <= 1.0
                } else {
                    c.median_vs_pg <= 1.0
                }
            })
            .map(|c| (c.nn_wall_min, c.exec_sim_min))
    }
}

/// Runs one full learning experiment: bootstrap from the PostgreSQL-like
/// expert, train for `preset.episodes` episodes, and evaluate the test set
/// against the native optimizer after every episode.
pub fn run_learning(
    db: &Database,
    kind: WorkloadKind,
    engine: Engine,
    featurization: FeaturizationChoice,
    preset: &Preset,
    seed: u64,
) -> RunRecord {
    let wl = build_workload(db, kind, preset);
    let (train, test) = split_workload(&wl, kind, seed);
    let mut cfg = preset.neo.clone();
    cfg.featurization = featurization;
    cfg.seed = seed;

    // Baselines on the test set.
    let profile = engine.profile();
    let mut oracle = CardinalityOracle::new();
    let mut native_lats = Vec::with_capacity(test.len());
    let mut pg_lats = Vec::with_capacity(test.len());
    for q in &test {
        let native = native_optimize(db, q, engine, &mut oracle);
        native_lats.push(true_latency(db, q, &profile, &mut oracle, &native));
        let pg = postgres_expert(db, q);
        pg_lats.push(true_latency(db, q, &profile, &mut oracle, &pg));
    }
    let native_total: f64 = native_lats.iter().sum();
    let pg_total: f64 = pg_lats.iter().sum();

    let mut neo = neo::Neo::bootstrap(db, engine, train, cfg);
    let mut curve = Vec::new();
    let eval = |neo: &mut neo::Neo, loss: f32, episode: usize| -> CurvePoint {
        let lats = neo.evaluate(&test);
        let total: f64 = lats.iter().sum();
        let mut rn: Vec<f64> = lats
            .iter()
            .zip(&native_lats)
            .map(|(l, n)| l / n.max(1e-9))
            .collect();
        let mut rp: Vec<f64> = lats
            .iter()
            .zip(&pg_lats)
            .map(|(l, p)| l / p.max(1e-9))
            .collect();
        CurvePoint {
            episode,
            norm_vs_native: total / native_total.max(1e-9),
            median_vs_native: crate::median(&mut rn),
            norm_vs_pg: total / pg_total.max(1e-9),
            median_vs_pg: crate::median(&mut rp),
            nn_wall_min: neo.nn_wall_ms / 60_000.0,
            exec_sim_min: neo.sim_exec_ms / 60_000.0,
            loss,
        }
    };
    curve.push(eval(&mut neo, 0.0, 0));
    for ep in 1..=preset.episodes {
        let stats = neo.run_episode(ep);
        curve.push(eval(&mut neo, stats.mean_loss, ep));
    }
    RunRecord {
        engine,
        workload: kind.name(),
        feat: featurization_name(featurization),
        curve,
        emb_build_ms: neo.emb_build_ms,
    }
}

/// Faithful reimplementation of the *seed* scoring pipeline, kept as the
/// benchmark baseline: naive `i-k-j` matmul, a fresh allocation per layer
/// per call, argmax bookkeeping in pooling, and the query-level MLP re-run
/// over `n` replicated rows on every call — exactly what
/// `ValueNet::predict` compiled to before the batched inference engine
/// landed (the live kernels have since been replaced, so measuring today's
/// `predict` would understate the change).
mod legacy {
    use neo_nn::{LayerNorm, LeakyRelu, Linear, Matrix, Mlp, TreeConv, TreeTopology, NO_CHILD};

    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, n) = (a.rows(), b.cols());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            for (t, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data()[t * n..(t + 1) * n];
                let orow = &mut out.data_mut()[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn linear(lin: &Linear, x: &Matrix) -> Matrix {
        let mut y = matmul_naive(x, &lin.w.value);
        y.add_row_broadcast(&lin.b.value);
        y
    }

    fn mlp(net: &Mlp, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for (lin, norm, act) in net.layers() {
            h = linear(lin, &h);
            if let Some(n) = norm {
                h = layer_norm(n, &h);
            }
            if let Some(a) = act {
                h = leaky(a, &h);
            }
        }
        h
    }

    fn layer_norm(ln: &LayerNorm, x: &Matrix) -> Matrix {
        // The seed's normalize() allocated the output, the normalized copy
        // and the inv-std vector every call.
        let (n, d) = (x.rows(), x.cols());
        let mut out = Matrix::zeros(n, d);
        let mut xhat = Matrix::zeros(n, d);
        let mut inv_stds = Vec::with_capacity(n);
        let gain = ln.gain.value.data();
        let bias = ln.bias.value.data();
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + 1e-5).sqrt();
            inv_stds.push(inv_std);
            for (c, &v) in row.iter().enumerate() {
                xhat.set(r, c, (v - mean) * inv_std);
            }
            for c in 0..d {
                out.set(r, c, gain[c] * xhat.get(r, c) + bias[c]);
            }
        }
        out
    }

    fn leaky(act: &LeakyRelu, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for v in out.data_mut() {
            if *v < 0.0 {
                *v *= act.slope;
            }
        }
        out
    }

    fn tree_conv(conv: &TreeConv, x: &Matrix, topo: &TreeTopology) -> Matrix {
        let n = topo.num_nodes();
        let c = conv.cin();
        let mut g = Matrix::zeros(n, 3 * c);
        for i in 0..n {
            let grow = g.row_mut(i);
            grow[0..c].copy_from_slice(x.row(i));
        }
        for i in 0..n {
            let l = topo.left[i];
            if l != NO_CHILD {
                let src = x.row(l as usize).to_vec();
                g.row_mut(i)[c..2 * c].copy_from_slice(&src);
            }
            let r = topo.right[i];
            if r != NO_CHILD {
                let src = x.row(r as usize).to_vec();
                g.row_mut(i)[2 * c..3 * c].copy_from_slice(&src);
            }
        }
        let mut y = matmul_naive(&g, &conv.w.value);
        y.add_row_broadcast(&conv.b.value);
        y
    }

    fn pool(x: &Matrix, topo: &TreeTopology) -> Matrix {
        let (n, c) = (x.rows(), x.cols());
        let t = topo.num_trees;
        let mut out = Matrix::from_vec(t, c, vec![f32::NEG_INFINITY; t * c]);
        // The seed's inference pooling still tracked argmax indices.
        let mut argmax = vec![u32::MAX; t * c];
        for i in 0..n {
            let tree = topo.tree_of[i] as usize;
            let row = x.row(i);
            let orow = out.row_mut(tree);
            for (ch, (&v, o)) in row.iter().zip(orow.iter_mut()).enumerate() {
                if v > *o {
                    *o = v;
                    argmax[tree * c + ch] = i as u32;
                }
            }
        }
        std::hint::black_box(&argmax);
        out
    }

    /// The seed's `ValueNet::predict`: stacks the batch (replicating the
    /// query encoding into one row per plan), runs the query MLP over all
    /// replicated rows, augments, convolves, pools, and runs the head.
    pub fn predict(
        query_mlp: &Mlp,
        convs: &[TreeConv],
        acts: &[LeakyRelu],
        head: &Mlp,
        query_enc: &[f32],
        plans: &[&neo::EncodedPlan],
    ) -> Vec<f32> {
        let qdim = query_enc.len();
        let total_nodes: usize = plans.iter().map(|p| p.feats.rows()).sum();
        let channels = plans[0].feats.cols();
        let mut feats = Matrix::zeros(total_nodes, channels);
        let mut q = Matrix::zeros(plans.len(), qdim);
        let mut topo = TreeTopology {
            left: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            tree_of: Vec::with_capacity(total_nodes),
            num_trees: plans.len(),
        };
        let mut node_off = 0u32;
        for (i, plan) in plans.iter().enumerate() {
            q.row_mut(i).copy_from_slice(query_enc);
            let n = plan.feats.rows();
            for r in 0..n {
                feats
                    .row_mut(node_off as usize + r)
                    .copy_from_slice(plan.feats.row(r));
                let l = plan.topo.left[r];
                let rr = plan.topo.right[r];
                topo.left.push(if l == NO_CHILD { l } else { l + node_off });
                topo.right
                    .push(if rr == NO_CHILD { rr } else { rr + node_off });
                topo.tree_of.push(i as u32);
            }
            node_off += n as u32;
        }
        let qout = mlp(query_mlp, &q);
        let (n, c) = (feats.rows(), feats.cols());
        let qe = qout.cols();
        let mut aug = Matrix::zeros(n, c + qe);
        for i in 0..n {
            let row = aug.row_mut(i);
            row[..c].copy_from_slice(feats.row(i));
            row[c..].copy_from_slice(qout.row(topo.tree_of[i] as usize));
        }
        let mut h = aug;
        for (conv, act) in convs.iter().zip(acts) {
            h = leaky(act, &tree_conv(conv, &h, &topo));
        }
        let pooled = pool(&h, &topo);
        mlp(head, &pooled).data().to_vec()
    }
}

/// One scoring-path measurement of the search throughput benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ScoringPoint {
    /// Plans per forward-pass call.
    pub batch_size: usize,
    /// Plans scored per second.
    pub plans_per_sec: f64,
}

/// One end-to-end search measurement.
#[derive(Clone, Copy, Debug)]
pub struct SearchPoint {
    /// Wavefront width `K`.
    pub wavefront: usize,
    /// Expansions performed within the budget.
    pub expansions: usize,
    /// Plans scored within the budget.
    pub scored: usize,
    /// Wall-clock milliseconds for the whole search.
    pub wall_ms: f64,
    /// Scoring throughput of the run.
    pub plans_per_sec: f64,
}

/// Results of the inference/search throughput benchmark (tracked across
/// PRs via `BENCH_search.json`).
#[derive(Clone, Debug)]
pub struct SearchBenchReport {
    /// Relations in the benchmark query.
    pub num_relations: usize,
    /// The pre-change scoring path: `ValueNet::predict` over one
    /// expansion's children at a time (query MLP re-run per call).
    pub old_path: ScoringPoint,
    /// The batched `InferenceSession` path at several batch sizes.
    pub new_path: Vec<ScoringPoint>,
    /// `new_path` best throughput over `old_path` throughput.
    pub speedup: f64,
    /// End-to-end `best_first_search` runs at several wavefront widths.
    pub searches: Vec<SearchPoint>,
    /// Metrics recorded by the bench itself (search walls as a
    /// [`neo_obs::LatencyHistogram`], expansion/scored totals): the raw
    /// search library has no service wrapper, so the bench carries its own
    /// registry and the envelope's `metrics` section shows the same
    /// latencies a scrape of a serving node would.
    pub metrics: neo_obs::MetricsSnapshot,
}

/// Measures plans-scored/sec for the legacy per-expansion `predict` path
/// versus the batched [`neo::ValueNet::session`] path, plus end-to-end
/// search throughput at several wavefront widths. `scale` sizes the
/// dataset (0.05 ≈ seconds, CI smoke can pass 0.02).
pub fn run_search_bench(scale: f64, seed: u64) -> SearchBenchReport {
    let db = datagen::imdb::generate(scale, seed);
    let wl = neo_query::workload::job::generate(&db, seed);
    let q = wl
        .queries
        .iter()
        .find(|q| q.num_relations() == 8)
        .or_else(|| wl.queries.iter().max_by_key(|q| q.num_relations()))
        .expect("JOB workload is non-empty");
    let f = Featurizer::new(&db, Featurization::Histogram);
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), NetConfig::default(), seed);
    let qenc = f.encode_query(&db, q);
    let ctx = QueryContext::new(&db, q);

    // A pool of distinct partial plans, breadth-first from the initial
    // state, pre-encoded so only scoring is measured. Mid-search states
    // dominate real scoring traffic, so the pool deliberately mixes depths;
    // the legacy path's per-call batch is the mean per-expansion fan-out
    // over the same states — exactly the batches the seed search issued.
    let mut pool: Vec<PartialPlan> = Vec::new();
    let mut frontier = vec![PartialPlan::initial(q)];
    while pool.len() < 512 && !frontier.is_empty() {
        let mut next: Vec<PartialPlan> = Vec::new();
        for p in &frontier {
            next.extend(children(p, &ctx));
        }
        pool.extend(frontier);
        frontier = next;
        // Rotate so deeper levels do not degenerate to one lineage.
        frontier.truncate(256);
    }
    pool.truncate(512);
    let encs: Vec<_> = pool.iter().map(|p| f.encode_plan(q, p, None)).collect();
    // The legacy path's operating point: one expansion's children per
    // call. Measure the empirical mean batch from a real K = 1 search
    // under the paper's cutoff rather than guessing a fan-out (root
    // states fan ~50 wide, but mid-search states — where scoring traffic
    // actually happens — fan ~5-15).
    let (_, probe) = best_first_search(
        &net,
        &f,
        &db,
        q,
        SearchBudget::timed(250.0).with_wavefront(1),
        None,
    );
    let old_batch = (probe.scored as f64 / probe.batches.max(1) as f64).round() as usize;
    let old_batch = old_batch.clamp(1, encs.len());

    // Both paths are timed in interleaved rounds and summarized by their
    // *median* pass time: the interleaving makes scheduler-noise windows
    // on shared machines hit both paths alike, and the median discards
    // the preempted passes entirely.
    let (query_mlp, convs, conv_acts, head) = net.parts();
    let old_pass = || {
        let start = Instant::now();
        for c in encs.chunks(old_batch) {
            let prefs: Vec<&neo::EncodedPlan> = c.iter().collect();
            std::hint::black_box(legacy::predict(
                query_mlp, convs, conv_acts, head, &qenc, &prefs,
            ));
        }
        start.elapsed().as_secs_f64()
    };
    let mut session = net.session(&qenc);
    const NEW_BATCHES: [usize; 3] = [64, 128, 256];
    let mut new_pass = |batch: usize| {
        let start = Instant::now();
        for c in encs.chunks(batch) {
            std::hint::black_box(session.score_pool(c));
        }
        start.elapsed().as_secs_f64()
    };
    let _ = old_pass(); // warm-up (caches, scratch growth)
    for b in NEW_BATCHES {
        let _ = new_pass(b);
    }
    let rounds = 9;
    let mut old_secs = Vec::with_capacity(rounds);
    let mut new_secs = [const { Vec::new() }; NEW_BATCHES.len()];
    for _ in 0..rounds {
        old_secs.push(old_pass());
        for (bi, &b) in NEW_BATCHES.iter().enumerate() {
            new_secs[bi].push(new_pass(b));
        }
    }
    let median_throughput = |secs: &mut Vec<f64>| {
        secs.sort_by(f64::total_cmp);
        encs.len() as f64 / secs[secs.len() / 2]
    };
    let old_path = ScoringPoint {
        batch_size: old_batch,
        plans_per_sec: median_throughput(&mut old_secs),
    };
    let mut new_path = Vec::new();
    for (bi, &batch) in NEW_BATCHES.iter().enumerate() {
        new_path.push(ScoringPoint {
            batch_size: batch,
            plans_per_sec: median_throughput(&mut new_secs[bi]),
        });
    }
    let best_new = new_path
        .iter()
        .map(|p| p.plans_per_sec)
        .fold(0.0f64, f64::max);
    let speedup = best_new / old_path.plans_per_sec.max(1e-9);

    let registry = neo_obs::MetricsRegistry::new();
    let wall_hist = registry.histogram("search_wall_ms");
    let expansions_total = registry.counter("search_expansions_total");
    let scored_total = registry.counter("search_plans_scored_total");
    let mut searches = Vec::new();
    for k in [1usize, 4, neo::DEFAULT_WAVEFRONT.max(8)] {
        let budget = SearchBudget::timed(250.0).with_wavefront(k);
        let (_, stats) = best_first_search(&net, &f, &db, q, budget, None);
        wall_hist.record_ms(stats.wall_ms);
        expansions_total.add(stats.expansions as u64);
        scored_total.add(stats.scored as u64);
        searches.push(SearchPoint {
            wavefront: k,
            expansions: stats.expansions,
            scored: stats.scored,
            wall_ms: stats.wall_ms,
            plans_per_sec: stats.scored as f64 / (stats.wall_ms / 1e3).max(1e-9),
        });
    }

    SearchBenchReport {
        num_relations: q.num_relations(),
        old_path,
        new_path,
        speedup,
        searches,
        metrics: registry.snapshot(),
    }
}

impl SearchBenchReport {
    /// Serializes the report as pretty-printed JSON (no serde in the
    /// dependency-light build; the structure is flat enough by hand).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"num_relations\": {},\n", self.num_relations));
        s.push_str(&format!(
            "  \"old_path\": {{\"batch_size\": {}, \"plans_per_sec\": {:.1}}},\n",
            self.old_path.batch_size, self.old_path.plans_per_sec
        ));
        s.push_str("  \"new_path\": [\n");
        for (i, p) in self.new_path.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"batch_size\": {}, \"plans_per_sec\": {:.1}}}{}\n",
                p.batch_size,
                p.plans_per_sec,
                if i + 1 < self.new_path.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"speedup\": {:.2},\n", self.speedup));
        s.push_str("  \"searches\": [\n");
        for (i, p) in self.searches.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"wavefront\": {}, \"expansions\": {}, \"scored\": {}, \
                 \"wall_ms\": {:.1}, \"plans_per_sec\": {:.1}}}{}\n",
                p.wavefront,
                p.expansions,
                p.scored,
                p.wall_ms,
                p.plans_per_sec,
                if i + 1 < self.searches.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Legend name for a featurization choice.
pub fn featurization_name(f: FeaturizationChoice) -> &'static str {
    match f {
        FeaturizationChoice::OneHot => "1-Hot",
        FeaturizationChoice::Histogram => "Histograms",
        FeaturizationChoice::RVectorJoins => "R-Vectors",
        FeaturizationChoice::RVectorNoJoins => "R-Vectors (no joins)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_args_parse() {
        let p = Preset::from_args(&["--episodes".into(), "3".into(), "--seed".into(), "9".into()]);
        assert_eq!(p.episodes, 3);
        assert_eq!(p.seed, 9);
        let f = Preset::from_args(&["--full".into()]);
        assert_eq!(f.queries_per_workload, usize::MAX);
        assert!(f.max_relations.is_none());
    }

    #[test]
    fn quick_workloads_respect_caps() {
        let p = Preset::quick();
        for kind in WorkloadKind::ALL {
            let db = build_db(kind, &p);
            let wl = build_workload(&db, kind, &p);
            assert!(
                wl.queries.len() <= p.queries_per_workload,
                "{}",
                kind.name()
            );
            if let Some(cap) = p.max_relations {
                assert!(wl.queries.iter().all(|q| q.num_relations() <= cap));
            }
            // Stratification preserves a spread of sizes.
            let sizes: std::collections::HashSet<usize> =
                wl.queries.iter().map(|q| q.num_relations()).collect();
            assert!(
                sizes.len() >= 3,
                "{} sizes collapsed: {:?}",
                kind.name(),
                sizes
            );
            // Split is a partition.
            let (train, test) = split_workload(&wl, kind, p.seed);
            assert_eq!(train.len() + test.len(), wl.queries.len());
        }
    }

    #[test]
    fn milestone_finds_first_crossing() {
        let mk = |episode, m: f64| CurvePoint {
            episode,
            norm_vs_native: m,
            median_vs_native: m,
            norm_vs_pg: m * 2.0,
            median_vs_pg: m * 2.0,
            nn_wall_min: episode as f64,
            exec_sim_min: episode as f64 * 10.0,
            loss: 0.0,
        };
        let rec = RunRecord {
            engine: Engine::PostgresLike,
            workload: "JOB",
            feat: "R-Vectors",
            curve: vec![mk(0, 5.0), mk(1, 1.2), mk(2, 0.9), mk(3, 0.8)],
            emb_build_ms: 0.0,
        };
        assert_eq!(rec.milestone(true), Some((2.0, 20.0)));
        assert!(rec.milestone(false).is_none()); // vs_pg never <= 1
                                                 // Trailing median of the last three points.
        assert!((rec.final_relative() - 0.9).abs() < 1e-9);
    }
}
