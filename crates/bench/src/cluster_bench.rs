//! The `cluster-bench` harness (ISSUE 4): drives a multi-node
//! optimization fleet — shared checkpoint store, centralized training,
//! crash-recovering followers — and writes `BENCH_cluster.json`.
//!
//! Four measurements:
//!
//! * **fleet scaling** — per-node and aggregate optimize throughput for
//!   1/2/4-node fleets (every node drives the same replicated stream
//!   concurrently; on a single-core container the aggregate is core-bound
//!   and `available_parallelism` is recorded, as in `serve-bench`);
//! * **generation-convergence lag** — wall-clock from a leader publish
//!   until every follower's background poller has adopted the generation;
//! * **cross-node plan equality** — after each generation, every node
//!   re-optimizes the workload and must choose **byte-identical** plans
//!   (asserted in-binary: the fleet-wide determinism invariant);
//! * **restart recovery** — a follower is killed and rebuilt from nothing
//!   but the store; it must come back at the manifest's generation,
//!   warm, with zero retraining anywhere;
//! * **leader failover** (ISSUE 5) — the leader is killed mid-loop on a
//!   failover-enabled fleet; a surviving candidate must claim the
//!   expired lease within one lease timeout, promote itself, and publish
//!   a strictly higher generation that every survivor adopts with
//!   byte-identical plans and no generation fork; the store's retention
//!   GC (`retain(keep_last = 3)`) must leave exactly the manifest
//!   generation + 2 predecessors and zero `.tmp` litter on disk;
//! * **chaos soak** (ISSUE 6) — the same closed loop runs with every
//!   store operation behind a seeded [`FaultInjectingStore`] injecting
//!   transient faults, torn checkpoint reads, and crash-publish litter at
//!   a ≥ 10 % fault rate; asserted in-binary: the generation history
//!   never forks, no corrupt checkpoint is ever adopted, every transient
//!   fault is absorbed by bounded retries with zero lost generations,
//!   and the lease never lapses outside an injected full outage — which
//!   is then injected, degrading the leader until it resigns *before*
//!   its lease expires, and the fleet recovers to a fenced successor
//!   term with byte-identical plans and every node `Healthy` again.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_cluster::{
    ChaosConfig, CheckpointStore, Cluster, ClusterConfig, FaultInjectingStore, FsCheckpointStore,
    DEFAULT_EVENT_CAPACITY,
};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_learn::{ReplayConfig, RetryPolicy, TrainerConfig};
use neo_obs::{EventKind, EventRing, SamplerConfig, SloSpec};
use neo_query::{workload::job, PlanNode, Query};
use neo_serve::{join_named, HealthPolicy, ServeConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search budget base (the runner's budget rule adds `3 * |R(q)|`).
const BASE_EXPANSIONS: usize = 12;

/// How long to wait for a background generation / fleet convergence.
const FLEET_TIMEOUT: Duration = Duration::from_secs(600);

/// Lease TTL for the chaos experiment, ms. Much longer than the failover
/// experiment's 250 ms: the soak asserts *hard zeros* (no churn, no lease
/// gap, no lost generation), so a starved tick thread must never cause a
/// spurious deposition — with a 4 s TTL the leader has 2 s of renewal
/// slack, and a takeover after the injected outage still lands within a
/// few seconds (the lease clock runs from the resigned leader's last
/// renewal). The degraded-leader resignation itself is health-driven and
/// independent of the TTL.
const CHAOS_LEASE_TTL_MS: u64 = 4_000;

/// Sizing knobs for one cluster-bench run.
#[derive(Clone, Debug)]
pub struct ClusterBenchConfig {
    /// IMDB dataset scale.
    pub scale: f64,
    /// Master seed (dataset, workload, net).
    pub seed: u64,
    /// Served workload size (distinct queries).
    pub queries: usize,
    /// Background generations the leader trains per fleet size.
    pub generations: usize,
    /// Minibatch epochs per generation.
    pub epochs_per_generation: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Fleet sizes to measure (e.g. `[1, 2, 4]`).
    pub node_counts: Vec<usize>,
    /// Stream replication for the throughput measurement.
    pub throughput_replicas: usize,
    /// Follower manifest-poll interval, ms.
    pub poll_interval_ms: u64,
    /// Leader-lease TTL for the failover experiment, ms.
    pub lease_ttl_ms: u64,
    /// Store retention (`keep_last`) for the failover experiment.
    pub retain_generations: usize,
    /// Chaos experiment: per-op transient-fault probability (≥ 0.10 per
    /// the robustness acceptance bar).
    pub chaos_fault_rate: f64,
    /// Chaos experiment: fault-schedule seed (same seed + same op
    /// sequence ⇒ same schedule; pinned by `neo-cluster`'s chaos tests).
    pub chaos_seed: u64,
    /// Chaos experiment: generations trained under the fault storm
    /// before the full-outage phase.
    pub chaos_generations: u64,
}

impl ClusterBenchConfig {
    /// Default sizing: 1/2/4 nodes (clamped to `--nodes`), seconds of
    /// wall-clock per fleet size.
    pub fn standard(seed: u64, nodes: usize, workers: usize) -> Self {
        let max = nodes.max(1);
        ClusterBenchConfig {
            scale: 0.05,
            seed,
            queries: 8,
            generations: 3,
            epochs_per_generation: 20,
            batch_size: 16,
            workers_per_node: workers.max(1),
            node_counts: [1usize, 2, 4]
                .iter()
                .copied()
                .filter(|&n| n <= max)
                .collect(),
            throughput_replicas: 8,
            poll_interval_ms: 5,
            lease_ttl_ms: 250,
            retain_generations: 3,
            chaos_fault_rate: 0.12,
            chaos_seed: seed ^ 0x00C0_FFEE,
            chaos_generations: 3,
        }
    }

    /// CI smoke sizing.
    pub fn smoke(seed: u64) -> Self {
        ClusterBenchConfig {
            scale: 0.02,
            seed,
            queries: 5,
            generations: 2,
            epochs_per_generation: 10,
            batch_size: 16,
            workers_per_node: 2,
            node_counts: vec![1, 2],
            throughput_replicas: 2,
            poll_interval_ms: 5,
            lease_ttl_ms: 250,
            retain_generations: 3,
            chaos_fault_rate: 0.12,
            chaos_seed: seed ^ 0x00C0_FFEE,
            chaos_generations: 2,
        }
    }
}

/// One fleet size's measurements.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Fleet size (leader included).
    pub nodes: usize,
    /// Search-bound queries/sec per node (every optimize is a genuine
    /// wavefront search; epoch bumped per replica pass), node order.
    pub per_node_search_qps: Vec<f64>,
    /// Search-bound fleet total: queries served / wall of the slowest
    /// node, all nodes driven concurrently.
    pub aggregate_search_qps: f64,
    /// Hit-bound fleet total: the replicated stream against warm caches
    /// (repeat-traffic capacity).
    pub aggregate_hit_qps: f64,
    /// Fleet-wide cache hit rate during the hit-bound pass (~1.0 by
    /// construction; recorded so the two regimes are interpretable).
    pub warm_hit_rate: f64,
    /// Mean wall-clock from leader publish to full fleet convergence, ms.
    pub convergence_lag_ms_mean: f64,
    /// Worst observed convergence lag, ms.
    pub convergence_lag_ms_max: f64,
    /// The generation every node ended on (asserted equal in-binary).
    pub final_generation: u64,
    /// Cross-node plan byte-equality held for every generation.
    pub plans_identical: bool,
}

/// Generation-lineage trace evidence (ISSUE 9, largest scaling fleet):
/// one trained generation's complete causal trace — sink drain → train →
/// checkpoint → publish → store write on the leader, plus every
/// follower's adoption — stitched across nodes through the manifest's
/// span context and recorded in the fleet's shared span ring.
#[derive(Clone, Debug)]
pub struct LineagePoint {
    /// Fleet size the trace was captured in (leader included).
    pub nodes: usize,
    /// The verified trace's id (16 hex digits).
    pub trace_id: String,
    /// Spans recorded under the verified trace.
    pub spans: usize,
    /// Distinct follower `adopt` spans in the trace (must be
    /// `nodes − 1`: every follower joined the trace).
    pub adopts: usize,
    /// Every lifecycle stage present under the one trace id (asserted
    /// in-binary before the point is returned).
    pub complete: bool,
    /// The fleet span ring as JSON (`spans` / `recorded` / `dropped`) —
    /// every trained generation's lineage trace, embedded in the
    /// envelope's `lineage.traces` section.
    pub traces: String,
}

/// Restart-recovery measurements (largest fleet).
#[derive(Clone, Debug)]
pub struct RestartPoint {
    /// Fleet size the restart ran in.
    pub nodes: usize,
    /// The leader's generation at kill time.
    pub leader_generation: u64,
    /// The generation the rebuilt node recovered to from the store.
    pub recovered_generation: u64,
    /// Wall-clock of kill → rebuilt-and-serving, ms.
    pub recovery_ms: f64,
    /// Whether recovery triggered any retraining (must be false).
    pub retrained_during_recovery: bool,
    /// The recovered node's plans match the leader's byte-for-byte.
    pub plans_match_after_recovery: bool,
}

/// Leader-failover measurements (failover-enabled fleet).
#[derive(Clone, Debug)]
pub struct FailoverPoint {
    /// Fleet size before the kill (leader included).
    pub nodes: usize,
    /// The lease TTL the experiment ran with, ms.
    pub lease_ttl_ms: u64,
    /// The killed leader's lease term.
    pub old_term: u64,
    /// The store's latest generation right after the kill (the killed
    /// leader's drain may publish one final in-flight generation on the
    /// way down).
    pub generation_at_kill: u64,
    /// Name of the candidate that promoted itself.
    pub promoted_node: String,
    /// The successor's minted lease term (must exceed `old_term`).
    pub new_term: u64,
    /// Wall-clock from kill-complete to a survivor holding the lease, ms
    /// — bounded by one lease timeout plus scheduling slack, asserted
    /// in-binary. ~0 means the kill's drain (the in-flight generation
    /// finishing on the way down) outlasted the TTL, so a survivor had
    /// already promoted before the dying leader finished its teardown.
    pub promotion_ms: f64,
    /// The store's latest generation after the successor's first publish
    /// (strictly greater than `generation_at_kill`).
    pub post_failover_generation: u64,
    /// Mean chosen-plan latency (engine latency model) under the
    /// untrained gen-0 net / right before the kill / after the
    /// successor's publish — the "trajectory keeps improving across the
    /// failover" witness.
    pub mean_ms_gen0: f64,
    /// See `mean_ms_gen0`.
    pub mean_ms_pre_kill: f64,
    /// See `mean_ms_gen0`.
    pub mean_ms_post_failover: f64,
    /// Every survivor serves the successor's generation *and* term, and
    /// chooses byte-identical plans.
    pub survivors_identical: bool,
    /// `gen-*.ckpt` files on disk after the successor's publish — exactly
    /// `retain_generations` (manifest + predecessors).
    pub retained_checkpoints: usize,
    /// `*.tmp` files on disk after the failover (must be 0).
    pub tmp_files: usize,
}

/// Chaos-soak measurements (fault-injected fleet; every invariant below
/// is also asserted in-binary before the point is returned).
#[derive(Clone, Debug)]
pub struct ChaosPoint {
    /// Fleet size under the storm (leader included).
    pub nodes: usize,
    /// Fault-schedule seed.
    pub seed: u64,
    /// Per-op transient-fault probability during the soak.
    pub fault_rate: f64,
    /// Lease TTL the chaos fleet ran with, ms.
    pub lease_ttl_ms: u64,
    /// Generations trained under the sustained fault storm.
    pub soak_generations: u64,
    /// Store operations that reached the fault injector.
    pub ops: u64,
    /// Transient faults injected (outage faults included).
    pub injected_faults: u64,
    /// Faults injected by the full-outage phase specifically.
    pub outage_faults: u64,
    /// Injected latency events.
    pub injected_delays: u64,
    /// Torn (half-length) checkpoint reads served — every one must have
    /// been rejected by frame checksum verification, never adopted.
    pub corrupt_loads: u64,
    /// Publish faults that also dropped crash litter (`gen-N.ckpt.tmp`)
    /// on disk, exactly like a writer dying between write and rename.
    pub crash_publishes: u64,
    /// Node-side retry attempts, fleet total.
    pub retry_attempts: u64,
    /// Retries after a failed attempt, fleet total.
    pub retry_retries: u64,
    /// Ops that failed at least once and then succeeded, fleet total.
    pub retry_recoveries: u64,
    /// Ops that exhausted every attempt, fleet total (absorbed by the
    /// next tick, counted by the health trackers).
    pub retry_exhausted: u64,
    /// Leader-side checkpoint-persist retries (trainer's retry stats).
    pub persist_retries: u64,
    /// Generations lost to an exhausted persist retry (must be 0: no
    /// transient fault may cost a generation).
    pub persist_failures: u64,
    /// `(generation, term)` history regressions observed by the clean
    /// store monitor (must be 0: the history never forks).
    pub history_forks: u64,
    /// Monitor samples during the soak with no live lease (must be 0:
    /// the lease lapses only under an injected outage).
    pub lease_gaps: u64,
    /// Manifest generation at the end of the experiment.
    pub final_generation: u64,
    /// The soak-phase leader's lease term.
    pub old_term: u64,
    /// The post-outage successor's minting term (fences `old_term`).
    pub new_term: u64,
    /// Times the soak leader's health tracker entered `Degraded` (≥ 1:
    /// the outage degraded it).
    pub leader_degraded_entries: u64,
    /// The degraded leader stepped down while its lease was still live
    /// (must be true: resign-before-lapse, not lapse-then-lose).
    pub resigned_before_lease_expiry: bool,
    /// Wall-clock the injected full outage lasted, ms.
    pub outage_ms: f64,
    /// Every node returned to `Healthy` after the outage.
    pub recovered_all_healthy: bool,
    /// Cross-node plan byte-equality held through storm and outage.
    pub plans_identical: bool,
    /// `gen-*.ckpt` files on disk at the end.
    pub retained_checkpoints: usize,
    /// `*.tmp` files on disk at the end (must be 0: crash litter is
    /// swept by the next successful publish).
    pub tmp_files: usize,
    /// The ex-leader's measured Degraded→Healthy excursion, ms (the
    /// health tracker's `last_recovery_ms` after the fleet recovered).
    pub leader_recovery_ms: f64,
    /// Events captured by the shared ring across storm + outage +
    /// recovery (chaos faults, health transitions, resignation, fenced
    /// takeover, model swaps).
    pub events_recorded: usize,
    /// Events silently displaced by ring wraparound (recorded so the
    /// postmortem is honest about being a tail when non-zero).
    pub events_dropped: u64,
    /// The p99 exemplar of some node's `cluster_sync_ms` histogram (16
    /// hex digits): the trace id of the slowest-bucket adoption the
    /// tail-latency question should start from.
    pub sync_p99_exemplar: String,
    /// The exemplar's trace id resolves to recorded spans in the fleet
    /// span ring (must be true: an exemplar that dangles is noise).
    pub sync_exemplar_resolvable: bool,
    /// Telemetry sampler ticks taken across storm + outage + recovery.
    pub telemetry_ticks: u64,
    /// Fast-window `BudgetBurn` episodes the `sync` availability SLO
    /// raised (≥ 1: the outage must trip the detector).
    pub slo_fast_burns: u64,
    /// The first post-outage `BudgetBurn` hit the event ring before the
    /// resigned regime's lease expired on the store clock (must be
    /// true: the burn-rate alert leads the failover machinery).
    pub budget_burn_before_lease_lapse: bool,
    /// `sync` SLO error budget right after the outage lifted (≈ 0: the
    /// outage spent it).
    pub slo_budget_after_outage: f64,
    /// `sync` SLO error budget after recovery slid the outage out of
    /// the window (asserted to refill past `slo_budget_after_outage`).
    pub slo_budget_final: f64,
    /// The post-recovery [`neo_obs::FleetSnapshot`] as JSON: per-node
    /// metrics registries, health, and the full event-ring dump — the
    /// log-free postmortem record, embedded in `BENCH_cluster_chaos.json`.
    pub fleet: String,
    /// Metrics snapshot of the ex-leader's service after recovery
    /// (surfaces as the envelope's `metrics` section).
    pub metrics: neo_obs::MetricsSnapshot,
}

/// Results of one cluster-bench run (serialized to `BENCH_cluster.json`).
#[derive(Clone, Debug)]
pub struct ClusterBenchReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Served workload size.
    pub queries: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Generations trained per fleet size.
    pub generations: usize,
    /// Per-fleet-size measurements.
    pub scaling: Vec<ScalingPoint>,
    /// The generation-lineage trace captured on the largest fleet.
    pub lineage: LineagePoint,
    /// The restart-recovery experiment.
    pub restart: RestartPoint,
    /// The leader-kill failover experiment.
    pub failover: FailoverPoint,
    /// The chaos-soak experiment.
    pub chaos: ChaosPoint,
    /// The loopback-socket regime (leader + follower as separate OS
    /// processes, driven over real TCP). `None` when the `neo-gateway`
    /// binary was not available next to the benchmark.
    pub loopback: Option<crate::loopback_bench::LoopbackPoint>,
}

fn net_cfg() -> NetConfig {
    NetConfig {
        query_layers: vec![64, 32],
        conv_channels: vec![32, 16],
        head_layers: vec![32],
        lr: 5e-3,
        grad_clip: 5.0,
        ignore_structure: false,
    }
}

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    net: Arc<ValueNet>,
    queries: Vec<Query>,
}

fn fixture(cfg: &ClusterBenchConfig) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(cfg.scale, cfg.seed));
    let queries: Vec<Query> = job::generate(&db, cfg.seed)
        .queries
        .into_iter()
        .filter(|q| (4..=8).contains(&q.num_relations()))
        .take(cfg.queries)
        .collect();
    assert!(!queries.is_empty(), "workload subset is empty");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        net_cfg(),
        cfg.seed,
    ));
    Fixture {
        db,
        featurizer,
        net,
        queries,
    }
}

fn cluster_cfg(cfg: &ClusterBenchConfig, nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        serve: ServeConfig {
            workers: cfg.workers_per_node,
            // Seeds off: cross-node byte-equality then holds
            // unconditionally, including for restart-recovered nodes with
            // no seed history (see `neo_cluster::ClusterConfig` docs).
            use_seeds: false,
            search_base_expansions: BASE_EXPANSIONS,
            ..Default::default()
        },
        trainer: TrainerConfig {
            epochs_per_generation: cfg.epochs_per_generation,
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            ..Default::default()
        },
        replay: ReplayConfig::default(),
        poll_interval_ms: cfg.poll_interval_ms,
        auto_poll: true,
        // Scaling fleets measure throughput with every core saturated;
        // failover stays off there so a starved tick thread can never
        // trigger a spurious deposition mid-measurement. The dedicated
        // failover experiment turns it on.
        lease_ttl_ms: 60_000,
        failover: false,
        retain_generations: None,
        retry: RetryPolicy::default(),
        health: HealthPolicy::default(),
        events: None,
        spans: None,
    }
}

/// A scratch store directory unique to this run + experiment.
fn store_dir(cfg: &ClusterBenchConfig, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "neo-cluster-bench-{}-{}-{tag}",
        std::process::id(),
        cfg.seed
    ))
}

/// Serves the workload on every node (reporting observations with
/// predictions into the fleet sink), trains one generation, waits for
/// fleet-wide convergence, and checks cross-node plan equality. Returns
/// (lag_ms, plans_identical).
fn run_generation(
    cluster: &Cluster,
    fx: &Fixture,
    oracle: &mut CardinalityOracle,
    generation: u64,
) -> (f64, bool) {
    let profile = Engine::PostgresLike.profile();
    for i in 0..cluster.len() {
        let svc = cluster.node(i).service();
        let outcomes = svc.optimize_stream(&fx.queries);
        for (q, o) in fx.queries.iter().zip(&outcomes) {
            let latency = true_latency(&fx.db, q, &profile, oracle, &o.plan);
            svc.report_outcome(q, o, latency);
        }
    }
    cluster.leader().trainer().request_generation();
    assert!(
        cluster
            .leader()
            .trainer()
            .wait_for_generation(generation, FLEET_TIMEOUT),
        "generation {generation} never completed"
    );
    let lag_start = Instant::now();
    assert!(
        cluster.wait_converged(generation, FLEET_TIMEOUT),
        "fleet never converged to generation {generation}"
    );
    let lag_ms = lag_start.elapsed().as_secs_f64() * 1e3;

    let plans = plans_per_node(cluster, fx);
    let identical = plans.iter().all(|p| p == &plans[0]);
    assert!(
        identical,
        "cross-node plan divergence at generation {generation}"
    );
    (lag_ms, identical)
}

/// Every node's chosen plans for the workload at its current generation.
fn plans_per_node(cluster: &Cluster, fx: &Fixture) -> Vec<Vec<PlanNode>> {
    (0..cluster.len())
        .map(|i| {
            cluster
                .node(i)
                .service()
                .optimize_stream(&fx.queries)
                .into_iter()
                .map(|o| o.plan)
                .collect()
        })
        .collect()
}

/// Counts store-directory files by kind: (`gen-*.ckpt` checkpoints,
/// `*.tmp` litter). `LEADER.tmp` is excluded from the litter count: the
/// live leader renews its lease every tick via tmp+rename, so that file
/// legitimately exists for microseconds at a time while the fleet runs —
/// it is in-flight protocol traffic, not the crashed-publish litter
/// retention must eliminate.
fn store_dir_census(dir: &std::path::Path) -> (usize, usize) {
    let mut checkpoints = 0;
    let mut tmp = 0;
    for entry in std::fs::read_dir(dir).expect("read store dir").flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("gen-") && name.ends_with(".ckpt") {
            checkpoints += 1;
        } else if name.ends_with(".tmp") && name != "LEADER.tmp" {
            tmp += 1;
        }
    }
    (checkpoints, tmp)
}

/// Serves the workload on every node and reports the measured latencies
/// into the fleet sink — one round of experience for whoever trains it.
fn feed_experience(cluster: &Cluster, fx: &Fixture, oracle: &mut CardinalityOracle) {
    let profile = Engine::PostgresLike.profile();
    for i in 0..cluster.len() {
        let svc = cluster.node(i).service();
        let outcomes = svc.optimize_stream(&fx.queries);
        for (q, o) in fx.queries.iter().zip(&outcomes) {
            let latency = true_latency(&fx.db, q, &profile, oracle, &o.plan);
            svc.report_outcome(q, o, latency);
        }
    }
}

/// Feeds experience and trains until the store's history reaches
/// `target`, tolerating leadership churn (the failover fleet runs with
/// short-TTL leases, so a starved tick thread can legitimately move
/// leadership mid-experiment): each attempt asks whichever node
/// currently leads, and re-feeds + re-requests if leadership moves or
/// the generation stalls (e.g. an in-flight generation was fenced on a
/// deposed leader and published nothing).
fn close_loop_until(cluster: &Cluster, fx: &Fixture, oracle: &mut CardinalityOracle, target: u64) {
    let observe = Arc::clone(cluster.store());
    close_loop_until_via(cluster, &observe, fx, oracle, target);
}

/// [`close_loop_until`] with an explicit observation store: the chaos
/// experiment watches progress through a *clean* handle to the underlying
/// store, so the harness's own bookkeeping reads are never fault-injected
/// (only the fleet's traffic is).
fn close_loop_until_via(
    cluster: &Cluster,
    observe: &Arc<dyn CheckpointStore>,
    fx: &Fixture,
    oracle: &mut CardinalityOracle,
    target: u64,
) {
    let store_latest = || {
        observe
            .latest_generation()
            .expect("manifest readable")
            .unwrap_or(0)
    };
    let deadline = Instant::now() + FLEET_TIMEOUT;
    while store_latest() < target {
        assert!(
            Instant::now() < deadline,
            "generation {target} never reached the store"
        );
        // Leadership first, experience second: experience is fed at most
        // once per confirmed attempt, never per leaderless wait
        // iteration.
        let Some((leader, term)) = wait_for_termed_leader(cluster, deadline) else {
            continue; // wait_for_termed_leader slept already
        };
        let Some(trainer) = cluster.node(leader).try_trainer() else {
            std::thread::sleep(Duration::from_millis(2));
            continue; // demoted between discovery and the handle grab
        };
        feed_experience(cluster, fx, oracle);
        trainer.request_generation();
        // The churn check compares the *term*, not just the index: a
        // self re-election (same node, term+1) fences the generation we
        // just requested, and waiting out the attempt deadline for it
        // would stall the experiment instead of re-requesting promptly.
        let attempt_deadline = Instant::now() + Duration::from_secs(60);
        while store_latest() < target
            && cluster.leader_index() == Some(leader)
            && cluster.node(leader).term() == term
            && Instant::now() < attempt_deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert!(
        cluster.wait_converged(store_latest(), FLEET_TIMEOUT),
        "fleet never converged to generation {target}"
    );
}

/// Blocks until some node both leads *and* has its lease term recorded
/// (`term() > 0`), returning `(index, term)`. A bare
/// `wait_for_leader` + `term()` pair is racy: a self re-election's
/// demote/promote pair passes through a `held_term == 0` window that
/// would read as "leader holds no lease". Returns `None` only at the
/// deadline (after having slept).
fn wait_for_termed_leader(cluster: &Cluster, deadline: Instant) -> Option<(usize, u64)> {
    loop {
        if let Some(i) = cluster.leader_index() {
            let term = cluster.node(i).term();
            if term > 0 {
                return Some((i, term));
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The leader-kill failover experiment: train a failover-enabled fleet,
/// kill the leader mid-loop, and assert the fleet's closed loop survives
/// — a candidate promotes within one lease timeout, publishes a strictly
/// higher generation under a higher term, every survivor adopts it with
/// byte-identical plans, and the store's retention GC keeps the
/// directory bounded with zero tmp litter.
fn run_failover_experiment(cfg: &ClusterBenchConfig, fx: &Fixture, nodes: usize) -> FailoverPoint {
    assert!(nodes >= 2, "failover needs a survivor");
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();
    let dir = store_dir(cfg, "failover");
    let _ = std::fs::remove_dir_all(&dir);
    let store: Arc<dyn CheckpointStore> =
        Arc::new(FsCheckpointStore::open(&dir).expect("open store dir"));
    let mut fleet_cfg = cluster_cfg(cfg, nodes);
    fleet_cfg.failover = true;
    fleet_cfg.lease_ttl_ms = cfg.lease_ttl_ms;
    fleet_cfg.retain_generations = Some(cfg.retain_generations);
    let mut cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        fleet_cfg,
    )
    .expect("assemble failover fleet");

    // Mean chosen-plan latency of the workload as `node` plans it now.
    let mean_ms = |cluster: &Cluster, node: usize, oracle: &mut CardinalityOracle| -> f64 {
        let outcomes = cluster.node(node).service().optimize_stream(&fx.queries);
        let lats: Vec<f64> = fx
            .queries
            .iter()
            .zip(&outcomes)
            .map(|(q, o)| true_latency(&fx.db, q, &profile, oracle, &o.plan))
            .collect();
        crate::mean(&lats)
    };

    let mean_ms_gen0 = mean_ms(&cluster, 0, &mut oracle);
    for g in 1..=cfg.generations as u64 {
        close_loop_until(&cluster, fx, &mut oracle, g);
        let plans = plans_per_node(&cluster, fx);
        assert!(
            plans.iter().all(|p| p == &plans[0]),
            "cross-node plan divergence at generation {g}"
        );
    }
    let mean_ms_pre_kill = mean_ms(&cluster, 0, &mut oracle);
    // Leadership is discovered, not assumed: with short-TTL leases a
    // starved tick thread can have legitimately moved it off node 0 (or
    // be mid-self-re-election, which `wait_for_termed_leader` rides out).
    let (doomed, old_term) = wait_for_termed_leader(&cluster, Instant::now() + FLEET_TIMEOUT)
        .expect("no leader before the kill");

    // Kill the leader mid-loop: one more generation is requested so the
    // kill lands with work in flight — drain-then-stop publishes it on
    // the way down (or it is fenced/abandoned before any store write;
    // all are legal), and the lease is *not* released, exactly like a
    // crash.
    if let Some(trainer) = cluster.node(doomed).try_trainer() {
        trainer.request_generation();
    }
    cluster.kill_node(doomed);
    let generation_at_kill = cluster
        .store()
        .latest_generation()
        .expect("manifest readable after kill")
        .expect("store has pre-kill generations");
    let kill_complete = Instant::now();
    let (promoted_idx, promoted_term) =
        wait_for_termed_leader(&cluster, kill_complete + FLEET_TIMEOUT)
            .expect("no surviving candidate promoted itself");
    let promotion_ms = kill_complete.elapsed().as_secs_f64() * 1e3;
    // "Within one lease timeout": expiry runs from the dead leader's last
    // renewal, so from kill-complete the bound is one TTL plus poll +
    // scheduling slack.
    let promotion_bound_ms = cfg.lease_ttl_ms as f64 + 1_000.0;
    assert!(
        promotion_ms <= promotion_bound_ms,
        "promotion took {promotion_ms:.0} ms, bound {promotion_bound_ms:.0} ms"
    );
    let promoted_node = cluster.node(promoted_idx).name().to_string();
    assert!(
        promoted_term > old_term,
        "successor term {promoted_term} does not fence the dead leader's {old_term}"
    );

    // The loop keeps closing on the survivors: fresh experience, then at
    // least one generation minted past the kill point.
    close_loop_until(&cluster, fx, &mut oracle, generation_at_kill + 1);
    let manifest = cluster
        .store()
        .manifest()
        .expect("manifest readable")
        .expect("store non-empty");
    let post_failover_generation = manifest.generation;
    // The minting term of the post-kill history (equals the promoted
    // node's term unless a further — legitimate — failover happened).
    let new_term = manifest.term;
    assert!(
        post_failover_generation > generation_at_kill,
        "successor did not advance the generation history \
         ({post_failover_generation} vs {generation_at_kill} at kill)"
    );
    assert!(
        new_term > old_term,
        "the post-kill history carries term {new_term}, not fenced past {old_term}"
    );

    // No fork: every survivor serves the manifest's generation under the
    // successor's term, and plans stay byte-identical fleet-wide.
    for i in 0..cluster.len() {
        assert_eq!(
            (cluster.node(i).generation(), cluster.node(i).served_term()),
            (post_failover_generation, new_term),
            "node {i} diverged from the successor's history"
        );
    }
    let plans = plans_per_node(&cluster, fx);
    let survivors_identical = plans.iter().all(|p| p == &plans[0]);
    assert!(
        survivors_identical,
        "survivor plan divergence after failover"
    );
    let mean_ms_post_failover = mean_ms(&cluster, 0, &mut oracle);
    // The successor's training continues the trajectory rather than
    // derailing it. Tiny presets (the smoke workload) can wobble around
    // the untrained baseline, so the hard in-binary bound is
    // non-divergence; the recorded means let the standard run show the
    // actual improvement.
    let trajectory_bound = mean_ms_gen0.max(mean_ms_pre_kill) * 1.5;
    assert!(
        mean_ms_post_failover <= trajectory_bound,
        "trajectory diverged across the failover ({mean_ms_post_failover:.2} ms vs \
         gen-0 {mean_ms_gen0:.2} ms / pre-kill {mean_ms_pre_kill:.2} ms)"
    );

    // Retention: exactly the manifest generation + keep_last − 1
    // predecessors on disk, each loadable, zero tmp litter.
    let (retained_checkpoints, tmp_files) = store_dir_census(&dir);
    assert_eq!(
        retained_checkpoints, cfg.retain_generations,
        "retain(keep_last={}) left the wrong checkpoint census",
        cfg.retain_generations
    );
    assert_eq!(tmp_files, 0, "tmp litter survived the failover");
    for g in
        (post_failover_generation + 1 - cfg.retain_generations as u64)..=post_failover_generation
    {
        cluster
            .store()
            .load(g)
            .unwrap_or_else(|e| panic!("retained generation {g} unloadable: {e}"));
    }

    let point = FailoverPoint {
        nodes,
        lease_ttl_ms: cfg.lease_ttl_ms,
        old_term,
        generation_at_kill,
        promoted_node,
        new_term,
        promotion_ms,
        post_failover_generation,
        mean_ms_gen0,
        mean_ms_pre_kill,
        mean_ms_post_failover,
        survivors_identical,
        retained_checkpoints,
        tmp_files,
    };
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    point
}

/// Wall-clock milliseconds since the Unix epoch (the lease clock).
fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The chaos-soak experiment: a failover-enabled fleet runs its closed
/// loop with every store operation behind a seeded [`FaultInjectingStore`]
/// — transient faults, torn checkpoint reads, crash-publish litter — then
/// survives a full store outage via graceful degradation. A monitor
/// thread watches the *unwrapped* store the whole soak and proves the
/// published history never forks and the lease never lapses outside the
/// injected outage.
fn run_chaos_experiment(cfg: &ClusterBenchConfig, fx: &Fixture, nodes: usize) -> ChaosPoint {
    assert!(nodes >= 2, "chaos needs a candidate for the takeover");
    let mut oracle = CardinalityOracle::new();
    let dir = store_dir(cfg, "chaos");
    let _ = std::fs::remove_dir_all(&dir);
    let inner = Arc::new(FsCheckpointStore::open(&dir).expect("open store dir"));
    let chaos = Arc::new(FaultInjectingStore::over_fs(
        Arc::clone(&inner),
        ChaosConfig {
            seed: cfg.chaos_seed,
            fault_rate: cfg.chaos_fault_rate,
            // A quarter of fault-free reads serve a torn frame: follower
            // adoption then exercises checksum rejection constantly.
            corrupt_load_rate: 0.25,
            // Torn leases are covered by the dedicated store/chaos tests;
            // here the lease file stays intact so the "exactly one
            // promotion during the soak" assertion is exact.
            torn_lease_rate: 0.0,
            // Every publish fault leaves crash litter behind.
            crash_publish_rate: 1.0,
            latency_rate: 0.05,
            latency_ms: 1,
        },
    ));
    // Fleet assembly happens before the storm starts. One shared event
    // ring spans the chaos layer and every node: the postmortem below is
    // reconstructed from this ring alone, no logs.
    chaos.set_paused(true);
    let events = Arc::new(EventRing::new(DEFAULT_EVENT_CAPACITY));
    chaos.attach_events(Arc::clone(&events), "chaos-store");
    let mut fleet_cfg = cluster_cfg(cfg, nodes);
    fleet_cfg.events = Some(Arc::clone(&events));
    fleet_cfg.failover = true;
    fleet_cfg.lease_ttl_ms = CHAOS_LEASE_TTL_MS;
    fleet_cfg.retain_generations = Some(cfg.retain_generations);
    // Two extra persist attempts over the node default: "no transient
    // fault costs a generation" is asserted as a hard zero, so the
    // odds of a publish exhausting its retries are pushed to ~1e-6.
    fleet_cfg.trainer.persist_retry = RetryPolicy {
        attempts: 6,
        ..RetryPolicy::default()
    };
    // The storm stresses the replication protocol, not the learning
    // (learn-bench owns plan quality): minimal epochs keep each
    // generation's CPU burst short, so training never starves the tick
    // threads that renew the lease — the soak's zero-churn assertions
    // must hold even on a saturated single-core host.
    fleet_cfg.trainer.epochs_per_generation = 2;
    let store: Arc<dyn CheckpointStore> = Arc::clone(&chaos) as Arc<dyn CheckpointStore>;
    let cluster = Cluster::new(
        Arc::clone(&fx.db),
        Arc::clone(&fx.featurizer),
        Arc::clone(&fx.net),
        store,
        fleet_cfg,
    )
    .expect("assemble chaos fleet");
    let observe: Arc<dyn CheckpointStore> = Arc::clone(&inner) as Arc<dyn CheckpointStore>;

    // Fleet telemetry (tentpole): a 10 ms sampler scrapes every node's
    // registry, and one fleet-aggregate availability SLO watches
    // `cluster_sync_failures_total` — which only moves when a retry
    // budget exhausts, so the soak's absorbed faults never register.
    // The 6-tick fast window at a 5× burn threshold trips on 3 bad
    // ticks (~tens of ms of outage), far inside the 4 s lease TTL; no
    // `SloNotify` is attached, so the alert path cannot perturb the
    // soak's zero-churn health assertions.
    let sampler = cluster.start_telemetry(SamplerConfig {
        tick_interval_ms: 10,
        ..Default::default()
    });
    sampler.add_slo(
        SloSpec::availability("sync", "cluster_sync_failures_total", 0.9)
            .with_windows(128, 6)
            .with_burn_thresholds(5.0, 3.0),
    );

    // The clean-view monitor: samples the inner store directly (not
    // fault-injected) and records (generation, term) transitions plus
    // any sample where no unexpired lease exists.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let inner = Arc::clone(&inner);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("chaos-monitor".into())
            .spawn(move || {
                let mut history: Vec<(u64, u64)> = Vec::new();
                let mut forks = 0u64;
                let mut lease_gaps = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if let Ok(Some(m)) = inner.manifest() {
                        let sample = (m.generation, m.term);
                        if history.last() != Some(&sample) {
                            if let Some(&(g, t)) = history.last() {
                                // A fork: the generation went backwards,
                                // or an already-published generation
                                // reappeared under a different term, or
                                // the minting term regressed.
                                if sample.0 < g || (sample.0 == g && sample.1 != t) || sample.1 < t
                                {
                                    forks += 1;
                                }
                            }
                            history.push(sample);
                        }
                    }
                    match inner.read_lease() {
                        Ok(Some(lease)) if lease.expires_at_ms > wall_ms() => {}
                        _ => lease_gaps += 1,
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                (history, forks, lease_gaps)
            })
            .expect("spawn chaos monitor")
    };

    // --- Phase 1: the soak. Closed loop under a sustained fault storm.
    chaos.set_paused(false);
    let soak_generations = cfg.chaos_generations.max(1);
    for g in 1..=soak_generations {
        close_loop_until_via(&cluster, &observe, fx, &mut oracle, g);
    }
    let plans = plans_per_node(&cluster, fx);
    let mut plans_identical = plans.iter().all(|p| p == &plans[0]);
    assert!(plans_identical, "plan divergence under the fault storm");

    let (soak_leader, old_term) = wait_for_termed_leader(&cluster, Instant::now() + FLEET_TIMEOUT)
        .expect("no leader after the soak");
    let soak_trainer = cluster.node(soak_leader).trainer();
    let persist = soak_trainer.persist_retry_stats();
    let persist_failures = soak_trainer.persist_failures();
    assert_eq!(
        persist_failures, 0,
        "a generation was lost to an exhausted persist retry"
    );
    assert_eq!(
        soak_trainer.completed_generations(),
        soak_generations,
        "the storm forced retraining (every generation must publish on \
         its first training pass, faults absorbed by retries)"
    );
    drop(soak_trainer);
    let promotions_soak: u64 = (0..cluster.len())
        .map(|i| cluster.node(i).promotions())
        .sum();
    assert_eq!(
        promotions_soak, 1,
        "leadership churned during the soak: the lease must stay held \
         outside an injected outage"
    );

    // Torn-read probe: pump loads through the injector until the
    // corrupt-read path demonstrably fired, and check every torn frame
    // is rejected by checksum verification while clean frames match the
    // store byte-for-byte.
    let latest = inner
        .latest_generation()
        .expect("clean manifest")
        .expect("store non-empty after soak");
    let reference = inner.load(latest).expect("clean load");
    let (mut torn_seen, mut clean_seen) = (0u64, 0u64);
    for _ in 0..64 {
        // A load Err is just an injected transient fault; skip it.
        if let Ok(bytes) = chaos.load(latest) {
            match neo::checkpoint::decode(&bytes) {
                Ok(_) => {
                    assert_eq!(bytes, reference, "clean load diverged from the store");
                    clean_seen += 1;
                }
                Err(_) => torn_seen += 1,
            }
        }
    }
    assert!(
        torn_seen > 0,
        "corrupt-load injection never fired in 64 probes"
    );
    assert!(clean_seen > 0, "no clean load in 64 probes");

    // Soak verdict from the monitor: no fork, no lease gap.
    stop.store(true, Ordering::Release);
    let (history, history_forks, lease_gaps) = join_named(monitor);
    assert_eq!(history_forks, 0, "generation history forked under chaos");
    assert_eq!(
        lease_gaps, 0,
        "the lease lapsed during the soak without an injected outage"
    );
    assert_eq!(
        history.last().map(|&(g, _)| g),
        Some(soak_generations),
        "monitor missed the soak history: {history:?}"
    );

    // --- Phase 2: full store outage. Every operation fails until lifted;
    // the leader must degrade and resign while its lease is still live,
    // and a recovered candidate must take over under a fencing term.
    let outage_start = Instant::now();
    chaos.set_outage(true);
    let resign_deadline = Instant::now() + FLEET_TIMEOUT;
    while cluster.node(soak_leader).is_leader() {
        assert!(
            Instant::now() < resign_deadline,
            "degraded leader never resigned under the outage"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Release through the dead store cannot land, so the old regime's
    // lease record must still be on disk, unexpired: the resignation beat
    // the lease clock rather than riding the lapse.
    let resigned_before_lease_expiry = match inner.read_lease() {
        Ok(Some(lease)) => lease.term == old_term && lease.expires_at_ms > wall_ms(),
        _ => false,
    };
    assert!(
        resigned_before_lease_expiry,
        "leader resigned only after its lease had already lapsed"
    );
    // Keep the outage on until the resigned regime's lease actually
    // expires on the store clock: the ex-leader must not slip back in by
    // renewing its own still-live lease at the old term — recovery has
    // to be a fencing claim on an expired lease, exactly like the
    // crash-failover path.
    let expiry_deadline = Instant::now() + Duration::from_millis(2 * CHAOS_LEASE_TTL_MS + 1_000);
    while let Ok(Some(lease)) = inner.read_lease() {
        if lease.expires_at_ms <= wall_ms() {
            break;
        }
        assert!(
            Instant::now() < expiry_deadline,
            "resigned regime's lease never expired"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Sequence fence for the telemetry assertion below: every ring
    // event with `seq` under this happened before the lease lapsed.
    let lease_lapse_seq = events.recorded();
    chaos.set_outage(false);
    let outage_ms = outage_start.elapsed().as_secs_f64() * 1e3;
    // The outage filled the SLO window with bad ticks; read the spent
    // budget now, before recovery starts sliding them back out.
    let slo_budget_after_outage = sampler
        .slo_status()
        .first()
        .expect("sync slo declared")
        .budget_remaining;

    let (_, new_term) = wait_for_termed_leader(&cluster, Instant::now() + FLEET_TIMEOUT)
        .expect("no candidate took over after the outage lifted");
    assert!(
        new_term > old_term,
        "takeover term {new_term} does not fence the resigned regime's {old_term}"
    );
    let leader_health = cluster.node(soak_leader).health();
    assert!(
        leader_health.degraded_entries >= 1,
        "the outage never degraded the leader"
    );

    // --- Phase 3: recovery. The loop keeps closing under the (still
    // running) storm, and the whole fleet returns to Healthy.
    close_loop_until_via(&cluster, &observe, fx, &mut oracle, soak_generations + 1);
    let manifest = inner
        .manifest()
        .expect("clean manifest")
        .expect("store non-empty");
    assert!(
        manifest.generation > soak_generations && manifest.term > old_term,
        "the successor did not advance the history under a fencing term \
         (gen {} term {})",
        manifest.generation,
        manifest.term
    );
    let plans = plans_per_node(&cluster, fx);
    plans_identical &= plans.iter().all(|p| p == &plans[0]);
    assert!(plans_identical, "plan divergence after the outage");
    let health_deadline = Instant::now() + FLEET_TIMEOUT;
    while !cluster.all_healthy() {
        assert!(
            Instant::now() < health_deadline,
            "fleet never recovered to Healthy: {:?}",
            cluster.health_states()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let promotions_total: u64 = (0..cluster.len())
        .map(|i| cluster.node(i).promotions())
        .sum();
    assert!(
        promotions_total >= 2,
        "no promotion happened across the outage"
    );

    // The error budget must refill as post-recovery good ticks slide the
    // outage out of the slow window — the release half of the alert
    // story (a detector that can fire but never stand down is noise).
    let refill_deadline = Instant::now() + FLEET_TIMEOUT;
    let slo_budget_final = loop {
        let budget = sampler
            .slo_status()
            .first()
            .expect("sync slo declared")
            .budget_remaining;
        if budget > 0.6 {
            break budget;
        }
        assert!(
            Instant::now() < refill_deadline,
            "sync error budget never refilled after recovery (stuck at {budget:.3})"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        slo_budget_final > slo_budget_after_outage,
        "budget did not refill: {slo_budget_after_outage:.3} -> {slo_budget_final:.3}"
    );

    // Satellite: the ex-leader's Degraded→Healthy excursion must be a
    // *measurable duration*, not just a counter — the monotonic
    // transition timestamps exist precisely so this number exists.
    let leader_recovery_ms = cluster
        .node(soak_leader)
        .health()
        .last_recovery_ms
        .expect("the ex-leader's recovery time must be measurable");
    assert!(
        leader_recovery_ms > 0.0,
        "recovery duration collapsed to zero"
    );

    // Postmortem from the event ring alone: the outage starts, the soak
    // leader resigns *after* it, and a successor acquires the fencing
    // term after that — the full story, with no recourse to logs.
    let ring_events = events.snapshot();
    let soak_leader_name = format!("node-{soak_leader}");
    let outage_at = ring_events
        .iter()
        .position(|e| e.kind == EventKind::Outage && e.detail == "start")
        .expect("outage start missing from the event ring");
    let resign_at = ring_events
        .iter()
        .position(|e| {
            e.kind == EventKind::LeaderResigned
                && e.node == soak_leader_name
                && e.detail.contains(&format!("term {old_term}"))
        })
        .expect("soak leader's resignation missing from the event ring");
    let takeover_at = ring_events
        .iter()
        .position(|e| {
            e.kind == EventKind::LeaseAcquired && e.detail.contains(&format!("term {new_term}"))
        })
        .expect("fenced takeover missing from the event ring");
    assert!(
        outage_at < resign_at && resign_at < takeover_at,
        "event ring does not reconstruct outage ({outage_at}) -> resign \
         ({resign_at}) -> fenced takeover ({takeover_at})"
    );
    assert!(
        ring_events
            .iter()
            .any(|e| e.kind == EventKind::ChaosFault && e.node == "chaos-store"),
        "injected faults left no trace in the event ring"
    );

    // The burn-rate alert led the failover machinery: the first
    // fast-window `BudgetBurn` after the outage started landed in the
    // ring before the resigned regime's lease expired on the store
    // clock (compared by global sequence number, immune to how the
    // single-core scheduler interleaved the two).
    let outage_seq = ring_events[outage_at].seq;
    let first_burn = ring_events
        .iter()
        .find(|e| {
            e.kind == EventKind::BudgetBurn
                && e.node == "telemetry"
                && e.detail.contains("fast window")
                && e.seq > outage_seq
        })
        .expect("the outage never tripped the sync SLO's fast burn window");
    let budget_burn_before_lease_lapse = first_burn.seq < lease_lapse_seq;
    assert!(
        budget_burn_before_lease_lapse,
        "budget burn (seq {}) fired only after the lease lapsed (seq fence {})",
        first_burn.seq, lease_lapse_seq
    );
    let slo_status = sampler
        .slo_status()
        .into_iter()
        .next()
        .expect("sync slo declared");
    let slo_fast_burns = slo_status.fast_burns_total;
    assert!(slo_fast_burns >= 1, "no fast-burn episode was counted");

    // Fleet-wide retry totals: the storm must have exercised the retry
    // path and recovered through it.
    let (mut attempts, mut retries, mut recoveries, mut exhausted) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..cluster.len() {
        let s = cluster.node(i).retry_stats();
        attempts += s.attempts;
        retries += s.retries;
        recoveries += s.recoveries;
        exhausted += s.exhausted;
    }
    assert!(
        retries > 0 && recoveries > 0,
        "the storm never exercised the retry path (retries {retries}, recoveries {recoveries})"
    );

    let stats = chaos.stats();
    assert!(
        stats.total_faults() > 0 && stats.outage_faults > 0,
        "the injector never fired"
    );
    let (retained_checkpoints, tmp_files) = store_dir_census(&dir);
    assert_eq!(
        tmp_files, 0,
        "crash-publish litter survived ({} faulted publishes dropped litter; \
         every successful publish must sweep it)",
        stats.crash_publishes
    );

    // Tail-latency exemplar (ISSUE 9): some node's `cluster_sync_ms`
    // p99 bucket must carry the trace id of a real adoption, and that
    // trace must resolve to spans in the fleet's shared span ring — the
    // link from "sync is slow" straight to the lineage waterfall.
    let ring_spans = cluster.spans().snapshot();
    let sync_p99_exemplar = (0..cluster.len())
        .find_map(|i| {
            cluster
                .node(i)
                .service()
                .metrics_snapshot()
                .histogram("cluster_sync_ms")
                .and_then(|h| h.exemplar_for_quantile(0.99))
        })
        .expect("no node's sync histogram carries a p99 exemplar");
    let sync_exemplar_resolvable = ring_spans.iter().any(|s| s.trace == sync_p99_exemplar);
    assert!(
        sync_exemplar_resolvable,
        "sync p99 exemplar {sync_p99_exemplar} resolves to no trace in the span ring"
    );

    let point = ChaosPoint {
        nodes,
        seed: cfg.chaos_seed,
        fault_rate: cfg.chaos_fault_rate,
        lease_ttl_ms: CHAOS_LEASE_TTL_MS,
        soak_generations,
        ops: stats.total_ops(),
        injected_faults: stats.total_faults(),
        outage_faults: stats.outage_faults,
        injected_delays: stats.delays,
        corrupt_loads: stats.corrupt_loads,
        crash_publishes: stats.crash_publishes,
        retry_attempts: attempts,
        retry_retries: retries,
        retry_recoveries: recoveries,
        retry_exhausted: exhausted,
        persist_retries: persist.retries,
        persist_failures,
        history_forks,
        lease_gaps,
        final_generation: manifest.generation,
        old_term,
        new_term: manifest.term,
        leader_degraded_entries: leader_health.degraded_entries,
        resigned_before_lease_expiry,
        outage_ms,
        recovered_all_healthy: true,
        plans_identical,
        retained_checkpoints,
        tmp_files,
        leader_recovery_ms,
        events_recorded: ring_events.len(),
        events_dropped: events.dropped(),
        sync_p99_exemplar: sync_p99_exemplar.to_string(),
        sync_exemplar_resolvable,
        telemetry_ticks: sampler.ticks(),
        slo_fast_burns,
        budget_burn_before_lease_lapse,
        slo_budget_after_outage,
        slo_budget_final,
        fleet: cluster.fleet_snapshot().to_json(),
        metrics: cluster.node(soak_leader).service().metrics_snapshot(),
    };
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    point
}

/// Runs the chaos experiment standalone (own fixture) — the
/// `cluster-bench chaos` CLI mode.
pub fn run_chaos_bench(cfg: &ClusterBenchConfig) -> ChaosPoint {
    let largest = cfg.node_counts.iter().copied().max().unwrap_or(2);
    let fx = fixture(cfg);
    run_chaos_experiment(cfg, &fx, largest.clamp(2, 3))
}

/// Runs the full cluster bench.
pub fn run_cluster_bench(cfg: &ClusterBenchConfig) -> ClusterBenchReport {
    assert!(!cfg.node_counts.is_empty(), "no fleet sizes requested");
    let largest = *cfg.node_counts.iter().max().unwrap();
    // Fail before minutes of work, not at the final report: the
    // restart-recovery experiment needs a follower to kill.
    assert!(
        largest >= 2,
        "cluster-bench needs a fleet size >= 2 for the restart-recovery \
         experiment (largest requested fleet: {largest} node(s); pass --nodes 2 or more)"
    );
    let fx = fixture(cfg);
    let mut scaling = Vec::new();
    let mut lineage: Option<LineagePoint> = None;
    let mut restart: Option<RestartPoint> = None;

    for &nodes in &cfg.node_counts {
        let dir = store_dir(cfg, &format!("n{nodes}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store: Arc<dyn CheckpointStore> =
            Arc::new(FsCheckpointStore::open(&dir).expect("open store dir"));
        let mut cluster = Cluster::new(
            Arc::clone(&fx.db),
            Arc::clone(&fx.featurizer),
            Arc::clone(&fx.net),
            store,
            cluster_cfg(cfg, nodes),
        )
        .expect("assemble cluster");
        let mut oracle = CardinalityOracle::new();

        // --- Train + converge + equality-check, generation by generation.
        let mut lags = Vec::new();
        let mut identical_all = true;
        for g in 1..=cfg.generations as u64 {
            let (lag_ms, identical) = run_generation(&cluster, &fx, &mut oracle, g);
            lags.push(lag_ms);
            identical_all &= identical;
        }
        let node_generations: Vec<u64> = cluster.generations();
        let final_generation = cluster.leader().generation();
        assert!(
            node_generations.iter().all(|&g| g == final_generation),
            "fleet ended divergent: {node_generations:?}"
        );

        // --- Concurrent throughput, two regimes, every node driven at
        // once (one driver thread per node):
        //
        // * **search-bound**: each replica pass begins with an epoch bump,
        //   so every optimize is a genuine wavefront search — the fleet's
        //   NN-work capacity;
        // * **hit-bound**: the replicated stream against warm caches —
        //   the fleet's repeat-traffic capacity (hit rate recorded; ~1.0
        //   by construction).
        let drive = |search_bound: bool| -> Vec<f64> {
            let handles: Vec<_> = (0..cluster.len())
                .map(|i| {
                    let svc = Arc::clone(cluster.node(i).service());
                    let queries = fx.queries.clone();
                    let replicas = cfg.throughput_replicas.max(1);
                    std::thread::Builder::new()
                        .name(format!("cluster-bench-driver-{i}"))
                        .spawn(move || {
                            let start = Instant::now();
                            for _ in 0..replicas {
                                if search_bound {
                                    svc.begin_refinement_epoch();
                                }
                                svc.optimize_stream(&queries);
                            }
                            start.elapsed().as_secs_f64()
                        })
                        .expect("spawn driver thread")
                })
                .collect();
            handles.into_iter().map(join_named).collect()
        };
        let per_node_stream = (cfg.throughput_replicas.max(1) * fx.queries.len()) as f64;
        let aggregate = |walls: &[f64]| -> f64 {
            let slowest = walls.iter().copied().fold(0.0f64, f64::max);
            cluster.len() as f64 * per_node_stream / slowest.max(1e-9)
        };

        let search_walls = drive(true);
        let per_node_search_qps: Vec<f64> = search_walls
            .iter()
            .map(|w| per_node_stream / w.max(1e-9))
            .collect();
        let aggregate_search_qps = aggregate(&search_walls);

        let hits_before = (0..cluster.len())
            .map(|i| cluster.node(i).service().cache_stats())
            .collect::<Vec<_>>();
        let hit_walls = drive(false);
        let aggregate_hit_qps = aggregate(&hit_walls);
        let (hits, probes) = (0..cluster.len())
            .map(|i| {
                let after = cluster.node(i).service().cache_stats();
                (
                    after.hits - hits_before[i].hits,
                    (after.hits + after.misses) - (hits_before[i].hits + hits_before[i].misses),
                )
            })
            .fold((0u64, 0u64), |(h, p), (dh, dp)| (h + dh, p + dp));

        scaling.push(ScalingPoint {
            nodes,
            per_node_search_qps,
            aggregate_search_qps,
            aggregate_hit_qps,
            warm_hit_rate: hits as f64 / (probes.max(1)) as f64,
            convergence_lag_ms_mean: crate::mean(&lags),
            convergence_lag_ms_max: lags.iter().copied().fold(0.0f64, f64::max),
            final_generation,
            plans_identical: identical_all,
        });

        // --- Generation lineage (ISSUE 9), before the restart below adds
        // an extra recovery adoption to the ring: the last trained
        // generation must have left one complete causal trace — the
        // leader's drain → train → checkpoint → publish → store write,
        // plus every follower's adoption stitched in through the
        // manifest's span context.
        if nodes == largest && nodes >= 2 {
            let spans = cluster.spans().snapshot();
            let root = spans
                .iter()
                .filter(|s| s.name == "generation")
                .max_by_key(|s| s.seq)
                .expect("no lineage root in the fleet span ring");
            let in_trace: Vec<_> = spans.iter().filter(|s| s.trace == root.trace).collect();
            let stage = |name: &str| in_trace.iter().any(|s| s.name == name);
            let complete = stage("drain")
                && stage("train")
                && stage("checkpoint")
                && stage("publish")
                && stage("store_write");
            assert!(
                complete,
                "lineage trace {} is missing a lifecycle stage: {:?}",
                root.trace,
                in_trace.iter().map(|s| s.name).collect::<Vec<_>>()
            );
            let adopt_nodes: std::collections::BTreeSet<&str> = in_trace
                .iter()
                .filter(|s| s.name == "adopt")
                .map(|s| s.node.as_str())
                .collect();
            assert_eq!(
                adopt_nodes.len(),
                nodes - 1,
                "not every follower's adoption joined the lineage trace: {adopt_nodes:?}"
            );
            lineage = Some(LineagePoint {
                nodes,
                trace_id: root.trace.to_string(),
                spans: in_trace.len(),
                adopts: adopt_nodes.len(),
                complete,
                traces: cluster.spans().to_node().render(),
            });
        }

        // --- Restart recovery, on the largest fleet with followers.
        if nodes == largest && nodes >= 2 {
            let leader_generation = cluster.leader().generation();
            let trained_before = cluster.leader().trainer().completed_generations();
            let reference_plans = plans_per_node(&cluster, &fx);
            let recovery_start = Instant::now();
            cluster.restart_follower(1).expect("restart follower");
            let recovery_ms = recovery_start.elapsed().as_secs_f64() * 1e3;
            let recovered_generation = cluster.node(1).generation();
            assert_eq!(
                cluster.node(1).recovered_generation(),
                Some(leader_generation),
                "restarted node did not recover from the store"
            );
            let retrained = cluster.leader().trainer().completed_generations() != trained_before;
            assert!(!retrained, "restart triggered a retrain");
            let recovered_plans: Vec<PlanNode> = cluster
                .node(1)
                .service()
                .optimize_stream(&fx.queries)
                .into_iter()
                .map(|o| o.plan)
                .collect();
            let plans_match = recovered_plans == reference_plans[0];
            assert!(plans_match, "recovered node disagrees on plans");
            restart = Some(RestartPoint {
                nodes,
                leader_generation,
                recovered_generation,
                recovery_ms,
                retrained_during_recovery: retrained,
                plans_match_after_recovery: plans_match,
            });
        }

        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Leader failover runs on its own failover-enabled fleet (3 nodes
    // when the run allows, else the minimum 2), and the chaos soak on
    // its own fault-injected one.
    let failover = run_failover_experiment(cfg, &fx, largest.clamp(2, 3));
    let chaos = run_chaos_experiment(cfg, &fx, largest.clamp(2, 3));
    // The only regime with REAL process and socket boundaries; skipped
    // (recorded as null) when the neo-gateway binary isn't built.
    let loopback = crate::loopback_bench::run_loopback_bench(cfg);

    ClusterBenchReport {
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        queries: fx.queries.len(),
        workers_per_node: cfg.workers_per_node,
        generations: cfg.generations,
        scaling,
        lineage: lineage.expect("node_counts must include a multi-node fleet (≥ 2)"),
        restart: restart.expect("node_counts must include a multi-node fleet (≥ 2)"),
        failover,
        chaos,
        loopback,
    }
}

impl ChaosPoint {
    /// The chaos section as a JSON object (also embedded verbatim in
    /// [`ClusterBenchReport::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"nodes\": {}, \"seed\": {}, \"fault_rate\": {:.3}, \
             \"lease_ttl_ms\": {}, \"soak_generations\": {}, \"ops\": {}, \
             \"injected_faults\": {}, \"outage_faults\": {}, \"injected_delays\": {}, \
             \"corrupt_loads\": {}, \"crash_publishes\": {}, \
             \"retry_attempts\": {}, \"retry_retries\": {}, \"retry_recoveries\": {}, \
             \"retry_exhausted\": {}, \"persist_retries\": {}, \"persist_failures\": {}, \
             \"history_forks\": {}, \"lease_gaps\": {}, \"final_generation\": {}, \
             \"old_term\": {}, \"new_term\": {}, \"leader_degraded_entries\": {}, \
             \"resigned_before_lease_expiry\": {}, \"outage_ms\": {:.2}, \
             \"recovered_all_healthy\": {}, \"plans_identical\": {}, \
             \"retained_checkpoints\": {}, \"tmp_files\": {}, \
             \"leader_recovery_ms\": {:.2}, \"events_recorded\": {}, \
             \"events_dropped\": {}, \"sync_p99_exemplar\": \"{}\", \
             \"sync_exemplar_resolvable\": {}, \"telemetry_ticks\": {}, \
             \"slo_fast_burns\": {}, \"budget_burn_before_lease_lapse\": {}, \
             \"slo_budget_after_outage\": {:.4}, \"slo_budget_final\": {:.4}, \
             \"fleet\": {}}}",
            self.nodes,
            self.seed,
            self.fault_rate,
            self.lease_ttl_ms,
            self.soak_generations,
            self.ops,
            self.injected_faults,
            self.outage_faults,
            self.injected_delays,
            self.corrupt_loads,
            self.crash_publishes,
            self.retry_attempts,
            self.retry_retries,
            self.retry_recoveries,
            self.retry_exhausted,
            self.persist_retries,
            self.persist_failures,
            self.history_forks,
            self.lease_gaps,
            self.final_generation,
            self.old_term,
            self.new_term,
            self.leader_degraded_entries,
            self.resigned_before_lease_expiry,
            self.outage_ms,
            self.recovered_all_healthy,
            self.plans_identical,
            self.retained_checkpoints,
            self.tmp_files,
            self.leader_recovery_ms,
            self.events_recorded,
            self.events_dropped,
            self.sync_p99_exemplar,
            self.sync_exemplar_resolvable,
            self.telemetry_ticks,
            self.slo_fast_burns,
            self.budget_burn_before_lease_lapse,
            self.slo_budget_after_outage,
            self.slo_budget_final,
            self.fleet.trim_end()
        )
    }
}

impl ClusterBenchReport {
    /// Pretty-printed JSON (hand-rolled; no serde in the offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!(
            "  \"workers_per_node\": {},\n",
            self.workers_per_node
        ));
        s.push_str(&format!("  \"generations\": {},\n", self.generations));
        s.push_str("  \"scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            let qps = p
                .per_node_search_qps
                .iter()
                .map(|q| format!("{q:.1}"))
                .collect::<Vec<_>>()
                .join(", ");
            let gens = p.final_generation;
            s.push_str(&format!(
                "    {{\"nodes\": {}, \"per_node_search_qps\": [{qps}], \
                 \"aggregate_search_qps\": {:.1}, \"aggregate_hit_qps\": {:.1}, \
                 \"warm_hit_rate\": {:.3}, \
                 \"convergence_lag_ms_mean\": {:.2}, \"convergence_lag_ms_max\": {:.2}, \
                 \"final_generation\": {gens}, \"plans_identical\": {}}}{}\n",
                p.nodes,
                p.aggregate_search_qps,
                p.aggregate_hit_qps,
                p.warm_hit_rate,
                p.convergence_lag_ms_mean,
                p.convergence_lag_ms_max,
                p.plans_identical,
                if i + 1 < self.scaling.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        let l = &self.lineage;
        s.push_str(&format!(
            "  \"lineage\": {{\"nodes\": {}, \"trace_id\": \"{}\", \"spans\": {}, \
             \"adopts\": {}, \"complete\": {}, \"traces\": {}}},\n",
            l.nodes,
            l.trace_id,
            l.spans,
            l.adopts,
            l.complete,
            l.traces.trim_end()
        ));
        let r = &self.restart;
        s.push_str(&format!(
            "  \"restart\": {{\"nodes\": {}, \"leader_generation\": {}, \
             \"recovered_generation\": {}, \"recovery_ms\": {:.2}, \
             \"retrained_during_recovery\": {}, \"plans_match_after_recovery\": {}}},\n",
            r.nodes,
            r.leader_generation,
            r.recovered_generation,
            r.recovery_ms,
            r.retrained_during_recovery,
            r.plans_match_after_recovery
        ));
        let f = &self.failover;
        s.push_str(&format!(
            "  \"failover\": {{\"nodes\": {}, \"lease_ttl_ms\": {}, \"old_term\": {}, \
             \"generation_at_kill\": {}, \"promoted_node\": \"{}\", \"new_term\": {}, \
             \"promotion_ms\": {:.2}, \"post_failover_generation\": {}, \
             \"mean_ms_gen0\": {:.2}, \"mean_ms_pre_kill\": {:.2}, \
             \"mean_ms_post_failover\": {:.2}, \"survivors_identical\": {}, \
             \"retained_checkpoints\": {}, \"tmp_files\": {}}},\n",
            f.nodes,
            f.lease_ttl_ms,
            f.old_term,
            f.generation_at_kill,
            f.promoted_node,
            f.new_term,
            f.promotion_ms,
            f.post_failover_generation,
            f.mean_ms_gen0,
            f.mean_ms_pre_kill,
            f.mean_ms_post_failover,
            f.survivors_identical,
            f.retained_checkpoints,
            f.tmp_files
        ));
        s.push_str(&format!("  \"chaos\": {},\n", self.chaos.to_json()));
        match &self.loopback {
            Some(p) => s.push_str(&format!("  \"loopback\": {}\n", p.to_json())),
            None => s.push_str("  \"loopback\": null\n"),
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke: a 1-node and a 2-node fleet train, converge, and
    /// agree on plans; the killed follower recovers warm from the store.
    #[test]
    fn smoke_fleet_trains_converges_and_recovers() {
        let report = run_cluster_bench(&ClusterBenchConfig::smoke(7));
        assert_eq!(report.scaling.len(), 2);
        for p in &report.scaling {
            assert!(p.plans_identical);
            assert_eq!(p.final_generation, 2);
            assert!(p.aggregate_search_qps > 0.0);
            assert!(p.aggregate_hit_qps > 0.0);
            assert_eq!(p.per_node_search_qps.len(), p.nodes);
        }
        // Generation lineage (ISSUE 9): the last trained generation left
        // one complete causal trace — drain → train → checkpoint →
        // publish → store write plus the follower's adoption — and the
        // ring dump it rode in on is well-formed JSON.
        let l = &report.lineage;
        assert!(l.complete);
        assert_eq!(l.adopts, l.nodes - 1);
        assert!(l.spans >= 7, "lineage trace suspiciously thin: {}", l.spans);
        assert!(neo_obs::validate(&l.traces).is_ok(), "lineage traces JSON");
        assert_eq!(report.restart.nodes, 2);
        assert_eq!(
            report.restart.recovered_generation,
            report.restart.leader_generation
        );
        assert!(!report.restart.retrained_during_recovery);
        assert!(report.restart.plans_match_after_recovery);
        // Leader failover: a survivor promoted under a fencing term,
        // advanced the history, and the store stayed bounded and clean.
        let f = &report.failover;
        assert_eq!(f.nodes, 2);
        assert!(f.new_term > f.old_term);
        assert!(f.post_failover_generation > f.generation_at_kill);
        assert!(f.survivors_identical);
        assert_eq!(f.retained_checkpoints, 3);
        assert_eq!(f.tmp_files, 0);
        assert!(f.mean_ms_post_failover <= f.mean_ms_gen0.max(f.mean_ms_pre_kill) * 1.5);
        // Chaos soak: the storm fired, every transient fault was absorbed
        // without losing a generation, the history never forked, no
        // corrupt checkpoint was adopted, and the outage ended in a
        // fenced takeover with the whole fleet Healthy again.
        let c = &report.chaos;
        assert!(c.injected_faults > 0 && c.outage_faults > 0);
        assert!(c.corrupt_loads > 0);
        assert!(c.retry_retries > 0 && c.retry_recoveries > 0);
        assert_eq!(c.persist_failures, 0);
        assert_eq!(c.history_forks, 0);
        assert_eq!(c.lease_gaps, 0);
        assert!(c.new_term > c.old_term);
        assert!(c.leader_degraded_entries >= 1);
        assert!(c.resigned_before_lease_expiry);
        assert!(c.recovered_all_healthy && c.plans_identical);
        assert_eq!(c.tmp_files, 0);
        assert!(c.final_generation > c.soak_generations);
        // Observability: the recovery excursion is a measurable duration,
        // the shared ring captured the storm, and the fleet snapshot is a
        // well-formed JSON document with the event dump inside.
        assert!(c.leader_recovery_ms > 0.0);
        assert!(c.events_recorded > 0);
        assert!(neo_obs::validate(&c.fleet).is_ok(), "fleet snapshot JSON");
        assert!(c.fleet.contains("\"events\""));
        assert!(c.fleet.contains("\"nodes\""));
        // Tail-latency exemplar: the chaos fleet's sync p99 bucket links
        // to a trace resolvable in the snapshot's `traces` section.
        assert!(c.sync_exemplar_resolvable);
        assert!(c.fleet.contains("\"traces\""));
        assert!(c.fleet.contains(&c.sync_p99_exemplar));
        // Telemetry: the sampler scraped the fleet throughout the storm,
        // the sync SLO's fast burn window tripped before the resigned
        // regime's lease lapsed, and the error budget refilled once the
        // outage healed.
        assert!(c.telemetry_ticks > 0);
        assert!(c.slo_fast_burns >= 1);
        assert!(c.budget_burn_before_lease_lapse);
        assert!(c.slo_budget_final > c.slo_budget_after_outage);
        assert!(c.fleet.contains("\"series\""));
        assert!(c.fleet.contains("\"slo\""));
        assert!(c.metrics.counter("serve_requests_total").unwrap() > 0);
        assert!(c.metrics.counter("cluster_sync_adoptions_total").is_some());
        let json = report.to_json();
        assert!(neo_obs::validate(&json).is_ok(), "report JSON malformed");
        assert!(json.contains("\"lineage\""));
        assert!(json.contains(&l.trace_id));
        assert!(json.contains("\"plans_identical\": true"));
        assert!(json.contains("\"retrained_during_recovery\": false"));
        assert!(json.contains("\"survivors_identical\": true"));
        assert!(json.contains("\"chaos\": {"));
        assert!(json.contains("\"history_forks\": 0"));
        assert!(json.contains("\"persist_failures\": 0"));
        assert!(json.contains("\"budget_burn_before_lease_lapse\": true"));
        assert!(json.contains("\"slo_fast_burns\""));
        assert!(json.contains("\"telemetry_ticks\""));
        // Loopback regime: present when the neo-gateway binary is built
        // (the CI bench step builds release binaries first, so the real
        // BENCH_cluster.json always carries it); under a bare lib-test
        // run it may legitimately be null — but never absent.
        assert!(json.contains("\"loopback\""));
        if let Some(l) = &report.loopback {
            assert_eq!(l.processes, 3);
            assert!(l.requests > 0);
            assert!(l.qps > 0.0);
            assert!(l.p50_ms > 0.0 && l.p99_ms >= l.p50_ms && l.max_ms >= l.p99_ms);
            assert!(l.replies_consistent);
            assert!(l.clean_shutdown);
        }
    }
}
