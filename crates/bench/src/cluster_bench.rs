//! The `cluster-bench` harness (ISSUE 4): drives a multi-node
//! optimization fleet — shared checkpoint store, centralized training,
//! crash-recovering followers — and writes `BENCH_cluster.json`.
//!
//! Four measurements:
//!
//! * **fleet scaling** — per-node and aggregate optimize throughput for
//!   1/2/4-node fleets (every node drives the same replicated stream
//!   concurrently; on a single-core container the aggregate is core-bound
//!   and `available_parallelism` is recorded, as in `serve-bench`);
//! * **generation-convergence lag** — wall-clock from a leader publish
//!   until every follower's background poller has adopted the generation;
//! * **cross-node plan equality** — after each generation, every node
//!   re-optimizes the workload and must choose **byte-identical** plans
//!   (asserted in-binary: the fleet-wide determinism invariant);
//! * **restart recovery** — a follower is killed and rebuilt from nothing
//!   but the store; it must come back at the manifest's generation,
//!   warm, with zero retraining anywhere.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_cluster::{CheckpointStore, Cluster, ClusterConfig, FsCheckpointStore};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_learn::{ReplayConfig, TrainerConfig};
use neo_query::{workload::job, PlanNode, Query};
use neo_serve::{join_named, ServeConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search budget base (the runner's budget rule adds `3 * |R(q)|`).
const BASE_EXPANSIONS: usize = 12;

/// How long to wait for a background generation / fleet convergence.
const FLEET_TIMEOUT: Duration = Duration::from_secs(600);

/// Sizing knobs for one cluster-bench run.
#[derive(Clone, Debug)]
pub struct ClusterBenchConfig {
    /// IMDB dataset scale.
    pub scale: f64,
    /// Master seed (dataset, workload, net).
    pub seed: u64,
    /// Served workload size (distinct queries).
    pub queries: usize,
    /// Background generations the leader trains per fleet size.
    pub generations: usize,
    /// Minibatch epochs per generation.
    pub epochs_per_generation: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Fleet sizes to measure (e.g. `[1, 2, 4]`).
    pub node_counts: Vec<usize>,
    /// Stream replication for the throughput measurement.
    pub throughput_replicas: usize,
    /// Follower manifest-poll interval, ms.
    pub poll_interval_ms: u64,
}

impl ClusterBenchConfig {
    /// Default sizing: 1/2/4 nodes (clamped to `--nodes`), seconds of
    /// wall-clock per fleet size.
    pub fn standard(seed: u64, nodes: usize, workers: usize) -> Self {
        let max = nodes.max(1);
        ClusterBenchConfig {
            scale: 0.05,
            seed,
            queries: 8,
            generations: 3,
            epochs_per_generation: 20,
            batch_size: 16,
            workers_per_node: workers.max(1),
            node_counts: [1usize, 2, 4]
                .iter()
                .copied()
                .filter(|&n| n <= max)
                .collect(),
            throughput_replicas: 8,
            poll_interval_ms: 5,
        }
    }

    /// CI smoke sizing.
    pub fn smoke(seed: u64) -> Self {
        ClusterBenchConfig {
            scale: 0.02,
            seed,
            queries: 5,
            generations: 2,
            epochs_per_generation: 10,
            batch_size: 16,
            workers_per_node: 2,
            node_counts: vec![1, 2],
            throughput_replicas: 2,
            poll_interval_ms: 5,
        }
    }
}

/// One fleet size's measurements.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Fleet size (leader included).
    pub nodes: usize,
    /// Search-bound queries/sec per node (every optimize is a genuine
    /// wavefront search; epoch bumped per replica pass), node order.
    pub per_node_search_qps: Vec<f64>,
    /// Search-bound fleet total: queries served / wall of the slowest
    /// node, all nodes driven concurrently.
    pub aggregate_search_qps: f64,
    /// Hit-bound fleet total: the replicated stream against warm caches
    /// (repeat-traffic capacity).
    pub aggregate_hit_qps: f64,
    /// Fleet-wide cache hit rate during the hit-bound pass (~1.0 by
    /// construction; recorded so the two regimes are interpretable).
    pub warm_hit_rate: f64,
    /// Mean wall-clock from leader publish to full fleet convergence, ms.
    pub convergence_lag_ms_mean: f64,
    /// Worst observed convergence lag, ms.
    pub convergence_lag_ms_max: f64,
    /// The generation every node ended on (asserted equal in-binary).
    pub final_generation: u64,
    /// Cross-node plan byte-equality held for every generation.
    pub plans_identical: bool,
}

/// Restart-recovery measurements (largest fleet).
#[derive(Clone, Debug)]
pub struct RestartPoint {
    /// Fleet size the restart ran in.
    pub nodes: usize,
    /// The leader's generation at kill time.
    pub leader_generation: u64,
    /// The generation the rebuilt node recovered to from the store.
    pub recovered_generation: u64,
    /// Wall-clock of kill → rebuilt-and-serving, ms.
    pub recovery_ms: f64,
    /// Whether recovery triggered any retraining (must be false).
    pub retrained_during_recovery: bool,
    /// The recovered node's plans match the leader's byte-for-byte.
    pub plans_match_after_recovery: bool,
}

/// Results of one cluster-bench run (serialized to `BENCH_cluster.json`).
#[derive(Clone, Debug)]
pub struct ClusterBenchReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Served workload size.
    pub queries: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Generations trained per fleet size.
    pub generations: usize,
    /// Per-fleet-size measurements.
    pub scaling: Vec<ScalingPoint>,
    /// The restart-recovery experiment.
    pub restart: RestartPoint,
}

fn net_cfg() -> NetConfig {
    NetConfig {
        query_layers: vec![64, 32],
        conv_channels: vec![32, 16],
        head_layers: vec![32],
        lr: 5e-3,
        grad_clip: 5.0,
        ignore_structure: false,
    }
}

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    net: Arc<ValueNet>,
    queries: Vec<Query>,
}

fn fixture(cfg: &ClusterBenchConfig) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(cfg.scale, cfg.seed));
    let queries: Vec<Query> = job::generate(&db, cfg.seed)
        .queries
        .into_iter()
        .filter(|q| (4..=8).contains(&q.num_relations()))
        .take(cfg.queries)
        .collect();
    assert!(!queries.is_empty(), "workload subset is empty");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        net_cfg(),
        cfg.seed,
    ));
    Fixture {
        db,
        featurizer,
        net,
        queries,
    }
}

fn cluster_cfg(cfg: &ClusterBenchConfig, nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        serve: ServeConfig {
            workers: cfg.workers_per_node,
            // Seeds off: cross-node byte-equality then holds
            // unconditionally, including for restart-recovered nodes with
            // no seed history (see `neo_cluster::ClusterConfig` docs).
            use_seeds: false,
            search_base_expansions: BASE_EXPANSIONS,
            ..Default::default()
        },
        trainer: TrainerConfig {
            epochs_per_generation: cfg.epochs_per_generation,
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            ..Default::default()
        },
        replay: ReplayConfig::default(),
        poll_interval_ms: cfg.poll_interval_ms,
        auto_poll: true,
    }
}

/// A scratch store directory unique to this run + fleet size.
fn store_dir(cfg: &ClusterBenchConfig, nodes: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "neo-cluster-bench-{}-{}-n{nodes}",
        std::process::id(),
        cfg.seed
    ))
}

/// Serves the workload on every node (reporting observations with
/// predictions into the fleet sink), trains one generation, waits for
/// fleet-wide convergence, and checks cross-node plan equality. Returns
/// (lag_ms, plans_identical).
fn run_generation(
    cluster: &Cluster,
    fx: &Fixture,
    oracle: &mut CardinalityOracle,
    generation: u64,
) -> (f64, bool) {
    let profile = Engine::PostgresLike.profile();
    for i in 0..cluster.len() {
        let svc = cluster.node(i).service();
        let outcomes = svc.optimize_stream(&fx.queries);
        for (q, o) in fx.queries.iter().zip(&outcomes) {
            let latency = true_latency(&fx.db, q, &profile, oracle, &o.plan);
            svc.report_outcome(q, o, latency);
        }
    }
    cluster.leader().trainer().request_generation();
    assert!(
        cluster
            .leader()
            .trainer()
            .wait_for_generation(generation, FLEET_TIMEOUT),
        "generation {generation} never completed"
    );
    let lag_start = Instant::now();
    assert!(
        cluster.wait_converged(generation, FLEET_TIMEOUT),
        "fleet never converged to generation {generation}"
    );
    let lag_ms = lag_start.elapsed().as_secs_f64() * 1e3;

    let plans = plans_per_node(cluster, fx);
    let identical = plans.iter().all(|p| p == &plans[0]);
    assert!(
        identical,
        "cross-node plan divergence at generation {generation}"
    );
    (lag_ms, identical)
}

/// Every node's chosen plans for the workload at its current generation.
fn plans_per_node(cluster: &Cluster, fx: &Fixture) -> Vec<Vec<PlanNode>> {
    (0..cluster.len())
        .map(|i| {
            cluster
                .node(i)
                .service()
                .optimize_stream(&fx.queries)
                .into_iter()
                .map(|o| o.plan)
                .collect()
        })
        .collect()
}

/// Runs the full cluster bench.
pub fn run_cluster_bench(cfg: &ClusterBenchConfig) -> ClusterBenchReport {
    assert!(!cfg.node_counts.is_empty(), "no fleet sizes requested");
    let largest = *cfg.node_counts.iter().max().unwrap();
    // Fail before minutes of work, not at the final report: the
    // restart-recovery experiment needs a follower to kill.
    assert!(
        largest >= 2,
        "cluster-bench needs a fleet size >= 2 for the restart-recovery \
         experiment (largest requested fleet: {largest} node(s); pass --nodes 2 or more)"
    );
    let fx = fixture(cfg);
    let mut scaling = Vec::new();
    let mut restart: Option<RestartPoint> = None;

    for &nodes in &cfg.node_counts {
        let dir = store_dir(cfg, nodes);
        let _ = std::fs::remove_dir_all(&dir);
        let store: Arc<dyn CheckpointStore> =
            Arc::new(FsCheckpointStore::open(&dir).expect("open store dir"));
        let mut cluster = Cluster::new(
            Arc::clone(&fx.db),
            Arc::clone(&fx.featurizer),
            Arc::clone(&fx.net),
            store,
            cluster_cfg(cfg, nodes),
        )
        .expect("assemble cluster");
        let mut oracle = CardinalityOracle::new();

        // --- Train + converge + equality-check, generation by generation.
        let mut lags = Vec::new();
        let mut identical_all = true;
        for g in 1..=cfg.generations as u64 {
            let (lag_ms, identical) = run_generation(&cluster, &fx, &mut oracle, g);
            lags.push(lag_ms);
            identical_all &= identical;
        }
        let node_generations: Vec<u64> = cluster.generations();
        let final_generation = cluster.leader().generation();
        assert!(
            node_generations.iter().all(|&g| g == final_generation),
            "fleet ended divergent: {node_generations:?}"
        );

        // --- Concurrent throughput, two regimes, every node driven at
        // once (one driver thread per node):
        //
        // * **search-bound**: each replica pass begins with an epoch bump,
        //   so every optimize is a genuine wavefront search — the fleet's
        //   NN-work capacity;
        // * **hit-bound**: the replicated stream against warm caches —
        //   the fleet's repeat-traffic capacity (hit rate recorded; ~1.0
        //   by construction).
        let drive = |search_bound: bool| -> Vec<f64> {
            let handles: Vec<_> = (0..cluster.len())
                .map(|i| {
                    let svc = Arc::clone(cluster.node(i).service());
                    let queries = fx.queries.clone();
                    let replicas = cfg.throughput_replicas.max(1);
                    std::thread::Builder::new()
                        .name(format!("cluster-bench-driver-{i}"))
                        .spawn(move || {
                            let start = Instant::now();
                            for _ in 0..replicas {
                                if search_bound {
                                    svc.begin_refinement_epoch();
                                }
                                svc.optimize_stream(&queries);
                            }
                            start.elapsed().as_secs_f64()
                        })
                        .expect("spawn driver thread")
                })
                .collect();
            handles.into_iter().map(join_named).collect()
        };
        let per_node_stream = (cfg.throughput_replicas.max(1) * fx.queries.len()) as f64;
        let aggregate = |walls: &[f64]| -> f64 {
            let slowest = walls.iter().copied().fold(0.0f64, f64::max);
            cluster.len() as f64 * per_node_stream / slowest.max(1e-9)
        };

        let search_walls = drive(true);
        let per_node_search_qps: Vec<f64> = search_walls
            .iter()
            .map(|w| per_node_stream / w.max(1e-9))
            .collect();
        let aggregate_search_qps = aggregate(&search_walls);

        let hits_before = (0..cluster.len())
            .map(|i| cluster.node(i).service().cache_stats())
            .collect::<Vec<_>>();
        let hit_walls = drive(false);
        let aggregate_hit_qps = aggregate(&hit_walls);
        let (hits, probes) = (0..cluster.len())
            .map(|i| {
                let after = cluster.node(i).service().cache_stats();
                (
                    after.hits - hits_before[i].hits,
                    (after.hits + after.misses) - (hits_before[i].hits + hits_before[i].misses),
                )
            })
            .fold((0u64, 0u64), |(h, p), (dh, dp)| (h + dh, p + dp));

        scaling.push(ScalingPoint {
            nodes,
            per_node_search_qps,
            aggregate_search_qps,
            aggregate_hit_qps,
            warm_hit_rate: hits as f64 / (probes.max(1)) as f64,
            convergence_lag_ms_mean: crate::mean(&lags),
            convergence_lag_ms_max: lags.iter().copied().fold(0.0f64, f64::max),
            final_generation,
            plans_identical: identical_all,
        });

        // --- Restart recovery, on the largest fleet with followers.
        if nodes == largest && nodes >= 2 {
            let leader_generation = cluster.leader().generation();
            let trained_before = cluster.leader().trainer().completed_generations();
            let reference_plans = plans_per_node(&cluster, &fx);
            let recovery_start = Instant::now();
            cluster.restart_follower(1).expect("restart follower");
            let recovery_ms = recovery_start.elapsed().as_secs_f64() * 1e3;
            let recovered_generation = cluster.node(1).generation();
            assert_eq!(
                cluster.node(1).recovered_generation(),
                Some(leader_generation),
                "restarted node did not recover from the store"
            );
            let retrained = cluster.leader().trainer().completed_generations() != trained_before;
            assert!(!retrained, "restart triggered a retrain");
            let recovered_plans: Vec<PlanNode> = cluster
                .node(1)
                .service()
                .optimize_stream(&fx.queries)
                .into_iter()
                .map(|o| o.plan)
                .collect();
            let plans_match = recovered_plans == reference_plans[0];
            assert!(plans_match, "recovered node disagrees on plans");
            restart = Some(RestartPoint {
                nodes,
                leader_generation,
                recovered_generation,
                recovery_ms,
                retrained_during_recovery: retrained,
                plans_match_after_recovery: plans_match,
            });
        }

        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }

    ClusterBenchReport {
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        queries: fx.queries.len(),
        workers_per_node: cfg.workers_per_node,
        generations: cfg.generations,
        scaling,
        restart: restart.expect("node_counts must include a multi-node fleet (≥ 2)"),
    }
}

impl ClusterBenchReport {
    /// Pretty-printed JSON (hand-rolled; no serde in the offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!(
            "  \"workers_per_node\": {},\n",
            self.workers_per_node
        ));
        s.push_str(&format!("  \"generations\": {},\n", self.generations));
        s.push_str("  \"scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            let qps = p
                .per_node_search_qps
                .iter()
                .map(|q| format!("{q:.1}"))
                .collect::<Vec<_>>()
                .join(", ");
            let gens = p.final_generation;
            s.push_str(&format!(
                "    {{\"nodes\": {}, \"per_node_search_qps\": [{qps}], \
                 \"aggregate_search_qps\": {:.1}, \"aggregate_hit_qps\": {:.1}, \
                 \"warm_hit_rate\": {:.3}, \
                 \"convergence_lag_ms_mean\": {:.2}, \"convergence_lag_ms_max\": {:.2}, \
                 \"final_generation\": {gens}, \"plans_identical\": {}}}{}\n",
                p.nodes,
                p.aggregate_search_qps,
                p.aggregate_hit_qps,
                p.warm_hit_rate,
                p.convergence_lag_ms_mean,
                p.convergence_lag_ms_max,
                p.plans_identical,
                if i + 1 < self.scaling.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        let r = &self.restart;
        s.push_str(&format!(
            "  \"restart\": {{\"nodes\": {}, \"leader_generation\": {}, \
             \"recovered_generation\": {}, \"recovery_ms\": {:.2}, \
             \"retrained_during_recovery\": {}, \"plans_match_after_recovery\": {}}}\n",
            r.nodes,
            r.leader_generation,
            r.recovered_generation,
            r.recovery_ms,
            r.retrained_during_recovery,
            r.plans_match_after_recovery
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke: a 1-node and a 2-node fleet train, converge, and
    /// agree on plans; the killed follower recovers warm from the store.
    #[test]
    fn smoke_fleet_trains_converges_and_recovers() {
        let report = run_cluster_bench(&ClusterBenchConfig::smoke(7));
        assert_eq!(report.scaling.len(), 2);
        for p in &report.scaling {
            assert!(p.plans_identical);
            assert_eq!(p.final_generation, 2);
            assert!(p.aggregate_search_qps > 0.0);
            assert!(p.aggregate_hit_qps > 0.0);
            assert_eq!(p.per_node_search_qps.len(), p.nodes);
        }
        assert_eq!(report.restart.nodes, 2);
        assert_eq!(
            report.restart.recovered_generation,
            report.restart.leader_generation
        );
        assert!(!report.restart.retrained_during_recovery);
        assert!(report.restart.plans_match_after_recovery);
        let json = report.to_json();
        assert!(json.contains("\"plans_identical\": true"));
        assert!(json.contains("\"retrained_during_recovery\": false"));
    }
}
