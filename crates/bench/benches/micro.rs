//! Criterion micro-benchmarks for the hot kernels of the Neo reproduction:
//! tree convolution, value-network inference, best-first search, the
//! executor's join kernels, the cardinality oracle, histogram estimation,
//! and word2vec training.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use neo::{Featurization, Featurizer, NetConfig, SearchBudget, ValueNet};
use neo_engine::{true_latency, CardinalityOracle, Engine, Executor};
use neo_expert::{CardEstimator, HistogramEstimator};
use neo_nn::{Matrix, TreeConv, TreeTopology, NO_CHILD};
use neo_query::{children, JoinOp, PartialPlan, PlanNode, QueryContext, ScanType};
use neo_storage::datagen::imdb;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A synthetic left-deep plan tree with `n` leaves for NN benches.
fn synthetic_tree(n: usize, channels: usize) -> (Matrix, TreeTopology) {
    let nodes = 2 * n - 1;
    let mut left = vec![NO_CHILD; nodes];
    let mut right = vec![NO_CHILD; nodes];
    // Nodes: leaves 0..n, internals n..2n-1 chained left-deep.
    for i in 0..n - 1 {
        let me = n + i;
        left[me] = if i == 0 { 0 } else { (n + i - 1) as u32 };
        right[me] = (i + 1) as u32;
    }
    let topo = TreeTopology {
        left,
        right,
        tree_of: vec![0; nodes],
        num_trees: 1,
    };
    let mut feats = Matrix::zeros(nodes, channels);
    for i in 0..nodes {
        feats.set(i, i % channels, 1.0);
    }
    (feats, topo)
}

fn bench_tree_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv = TreeConv::new(64, 64, &mut rng);
    let (feats, topo) = synthetic_tree(17, 64);
    c.bench_function("tree_conv_forward_17rel_64ch", |b| {
        b.iter(|| std::hint::black_box(conv.forward_inference(&feats, &topo)))
    });
    c.bench_function("tree_conv_forward_backward_17rel_64ch", |b| {
        b.iter(|| {
            let y = conv.forward(&feats, &topo);
            std::hint::black_box(conv.backward(&y, &topo))
        })
    });
}

fn job_fixture() -> (neo_storage::Database, Vec<neo_query::Query>) {
    let db = imdb::generate(0.05, 5);
    let queries = neo_query::workload::job::generate(&db, 5).queries;
    (db, queries)
}

fn bench_value_net(c: &mut Criterion) {
    let (db, queries) = job_fixture();
    let q = queries.iter().find(|q| q.num_relations() == 8).unwrap();
    let f = Featurizer::new(&db, Featurization::Histogram);
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), NetConfig::default(), 7);
    let qenc = f.encode_query(&db, q);
    let ctx = QueryContext::new(&db, q);
    let kids = children(&PartialPlan::initial(q), &ctx);
    let encs: Vec<_> = kids.iter().map(|k| f.encode_plan(q, k, None)).collect();
    let qrefs: Vec<&[f32]> = vec![&qenc; encs.len()];
    let prefs: Vec<_> = encs.iter().collect();
    c.bench_function(&format!("value_net_score_{}_children", encs.len()), |b| {
        b.iter(|| std::hint::black_box(net.predict(&qrefs, &prefs)))
    });
}

/// The tentpole comparison: legacy per-call `predict` (query MLP re-run
/// every call) vs the search-scoped `InferenceSession` (query MLP cached,
/// zero-allocation scratch reuse) at batch size 64.
fn bench_batched_inference(c: &mut Criterion) {
    let (db, queries) = job_fixture();
    let q = queries.iter().find(|q| q.num_relations() == 8).unwrap();
    let f = Featurizer::new(&db, Featurization::Histogram);
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), NetConfig::default(), 7);
    let qenc = f.encode_query(&db, q);
    let ctx = QueryContext::new(&db, q);
    // 64 distinct partial plans, breadth-first from the initial state.
    let mut pool = vec![PartialPlan::initial(q)];
    let mut i = 0;
    while pool.len() < 64 {
        let kids = children(&pool[i], &ctx);
        pool.extend(kids);
        i += 1;
    }
    pool.truncate(64);
    let encs: Vec<_> = pool.iter().map(|p| f.encode_plan(q, p, None)).collect();
    let qrefs: Vec<&[f32]> = vec![&qenc; encs.len()];
    let prefs: Vec<_> = encs.iter().collect();
    c.bench_function("value_net_predict_batch64", |b| {
        b.iter(|| std::hint::black_box(net.predict(&qrefs, &prefs)))
    });
    let mut session = net.session(&qenc);
    c.bench_function("inference_session_score_batch64", |b| {
        b.iter(|| {
            let s = session.score(&prefs);
            std::hint::black_box(s.len())
        })
    });
}

fn bench_search(c: &mut Criterion) {
    let (db, queries) = job_fixture();
    let q = queries.iter().find(|q| q.num_relations() == 8).unwrap();
    let f = Featurizer::new(&db, Featurization::Histogram);
    let cfg = NetConfig {
        query_layers: vec![64, 32, 16],
        conv_channels: vec![24, 24, 16],
        head_layers: vec![32, 16],
        lr: 1e-3,
        grad_clip: 5.0,
        ignore_structure: false,
    };
    let net = ValueNet::new(f.query_dim(), f.plan_channels(), cfg, 7);
    c.bench_function("best_first_search_8rel_30exp", |b| {
        b.iter(|| {
            std::hint::black_box(neo::best_first_search(
                &net,
                &f,
                &db,
                q,
                SearchBudget::expansions(30),
                None,
            ))
        })
    });
    for k in [1usize, neo::DEFAULT_WAVEFRONT] {
        c.bench_function(&format!("best_first_search_8rel_30exp_wavefront{k}"), |b| {
            b.iter(|| {
                std::hint::black_box(neo::best_first_search(
                    &net,
                    &f,
                    &db,
                    q,
                    SearchBudget::expansions(30).with_wavefront(k),
                    None,
                ))
            })
        });
    }
}

fn bench_executor(c: &mut Criterion) {
    let (db, queries) = job_fixture();
    let q = queries.iter().find(|q| q.num_relations() == 4).unwrap();
    let ex = Executor::new(&db, q);
    let ctx = QueryContext::new(&db, q);
    // A hash-join-only left-deep plan.
    let mut plan = PartialPlan::initial(q);
    while !plan.is_complete() {
        let kids = children(&plan, &ctx);
        let pick = kids
            .iter()
            .position(|k| {
                k.roots.iter().all(|r| match r {
                    PlanNode::Scan { scan, .. } => *scan != ScanType::Index,
                    PlanNode::Join { op, .. } => *op == JoinOp::Hash,
                })
            })
            .unwrap_or(0);
        plan = kids.into_iter().nth(pick).unwrap();
    }
    let tree = plan.as_complete().unwrap().clone();
    c.bench_function("executor_hash_join_4rel", |b| {
        b.iter(|| std::hint::black_box(ex.execute_count(&tree).unwrap()))
    });
}

fn bench_oracle_and_estimator(c: &mut Criterion) {
    let (db, queries) = job_fixture();
    let q = queries.iter().find(|q| q.num_relations() == 6).unwrap();
    let full = (1u64 << q.num_relations()) - 1;
    c.bench_function("oracle_cardinality_6rel_cold", |b| {
        b.iter_batched(
            CardinalityOracle::new,
            |mut oracle| std::hint::black_box(oracle.cardinality(&db, q, full)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("histogram_estimate_6rel", |b| {
        b.iter_batched(
            HistogramEstimator::new,
            |mut est| std::hint::black_box(est.join(&db, q, full)),
            BatchSize::SmallInput,
        )
    });
    let profile = Engine::PostgresLike.profile();
    let plan = neo_expert::postgres_expert(&db, q);
    let mut oracle = CardinalityOracle::new();
    let _ = oracle.cardinality(&db, q, full); // warm
    c.bench_function("plan_latency_6rel_warm_oracle", |b| {
        b.iter(|| std::hint::black_box(true_latency(&db, q, &profile, &mut oracle, &plan)))
    });
}

fn bench_word2vec(c: &mut Criterion) {
    let db = imdb::generate(0.02, 5);
    let corpus = neo_embedding::build_corpus(&db, neo_embedding::CorpusKind::Normalized);
    let cfg = neo_embedding::W2vConfig {
        dim: 16,
        epochs: 1,
        ..Default::default()
    };
    c.bench_function("word2vec_epoch_normalized_tiny", |b| {
        b.iter(|| std::hint::black_box(neo_embedding::train(&corpus, &cfg, 3)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tree_conv, bench_value_net, bench_batched_inference, bench_search,
              bench_executor, bench_oracle_and_estimator, bench_word2vec
}
criterion_main!(benches);
