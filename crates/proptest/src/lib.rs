#![warn(missing_docs)]
//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! workspace ships a small randomized-testing harness covering the surface
//! its property tests use: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), range / `any::<T>()` / char-class-regex
//! string strategies, [`collection::vec`], [`Strategy::prop_map`], and the
//! `prop_assert!` family.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the seed-deterministic inputs baked into the assertion message
//! context. Cases are generated from a fixed seed, so failures reproduce
//! exactly across runs.

use rand::rngs::StdRng;

/// Runner configuration (field subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; the shim has no rejection
    /// sampling, so this is never consulted (it also keeps
    /// `..Default::default()` at call sites meaningful).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// Tuple strategies (upstream implements these for arities 1..=12; the
// workspace uses small ones). Elements draw left to right.
macro_rules! tuple_strategy_impls {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Full-domain strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! any_int_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

any_int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Char-class regex string strategy: supports exactly the `[class]{m,n}`
/// shape (ranges and singletons inside the class, one quantifier), which is
/// what this workspace's property tests use — e.g. `"[a-cA-C]{1,5}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
        let len = rand::Rng::gen_range(rng, lo..=hi);
        (0..len)
            .map(|_| chars[rand::Rng::gen_range(rng, 0..chars.len())])
            .collect()
    }
}

/// Parses `[class]{m,n}` into (alphabet, m, n). `{m,n}` defaults to `{1,1}`.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    if quant.is_empty() {
        return Some((chars, 1, 1));
    }
    let inner = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match inner.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = inner.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Element-count specification: a fixed length or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name so each property gets its own stream, with
    // the case index mixed in; fully deterministic across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::SeedableRng::seed_from_u64(h ^ ((case as u64) << 32))
}

/// Declares property tests: each function runs `config.cases` times with
/// fresh strategy-drawn arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($argp:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::__case_rng(stringify!($name), case);
                    $(
                        let $argp = $crate::Strategy::generate(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` that reads like proptest's macro (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn class_pattern_parsing() {
        let (chars, lo, hi) = super::parse_class_pattern("[a-c]{1,2}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (1, 2));
        let (chars, lo, hi) = super::parse_class_pattern("[a-cA-C]{1,5}").unwrap();
        assert_eq!(chars.len(), 6);
        assert_eq!((lo, hi), (1, 5));
        let (chars, lo, hi) = super::parse_class_pattern("[xyz]").unwrap();
        assert_eq!(chars, vec!['x', 'y', 'z']);
        assert_eq!((lo, hi), (1, 1));
        assert!(super::parse_class_pattern("abc").is_none());
    }

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = crate::__case_rng("string_strategy", 0);
        for _ in 0..200 {
            let s = "[a-c]{1,2}".generate(&mut rng);
            assert!((1..=2).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn determinism_per_case() {
        let a = collection::vec(0i64..100, 3..10).generate(&mut crate::__case_rng("d", 7));
        let b = collection::vec(0i64..100, 3..10).generate(&mut crate::__case_rng("d", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..Default::default() })]

        /// The macro itself: ranges respected, vec sizes respected, map works.
        #[test]
        fn macro_end_to_end(x in 0usize..10, mut v in collection::vec(any::<u8>(), 2..5),
                            s in "[a-b]{1,3}") {
            prop_assert!(x < 10);
            v.sort_unstable();
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }

        #[test]
        fn prop_map_composes(m in collection::vec(-1.0f32..1.0, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(m, 4);
        }
    }
}
