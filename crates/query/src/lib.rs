#![warn(missing_docs)]
//! # neo-query — query & plan representation for the Neo reproduction
//!
//! The logical and physical query model of the paper (§3):
//!
//! * [`query::Query`] — project-select-equijoin-aggregate queries: base
//!   relations `R(q)`, an equi-join graph, and selection
//!   [`predicate::Predicate`]s;
//! * [`plan`] — physical plan trees with hash/merge/loop joins and
//!   table/index/unspecified scans, *partial plans* as forests, the subplan
//!   relation `P_i ⊂ P_j`, and the `Children(P_i)` neighbourhood that
//!   Neo's best-first search expands (§4.2);
//! * [`workload`] — the JOB-like, Ext-JOB, TPC-H-like and Corp-like
//!   workload generators (§6.1, §6.4.2);
//! * [`fingerprint`] — canonical 128-bit structural query digests,
//!   invariant under join/predicate list order — the key of the
//!   `neo-serve` plan cache.

pub mod explain;
pub mod fingerprint;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod workload;

pub use explain::explain;
pub use fingerprint::{fingerprint, QueryFingerprint};
pub use plan::{children, JoinOp, PartialPlan, PlanNode, QueryContext, RelMask, ScanType};
pub use predicate::{CmpOp, Predicate};
pub use query::{Aggregate, JoinEdge, Query};
pub use workload::Workload;
