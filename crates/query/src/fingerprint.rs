//! Canonical structural query fingerprints.
//!
//! A [`QueryFingerprint`] is a 128-bit digest of the *semantic content* of a
//! [`Query`] — its relation set, join graph, predicates, and aggregate —
//! computed over a canonical ordering of every unordered collection. Two
//! queries that differ only in the textual order of their join list or
//! predicate list (or in `id`/`family` labels) therefore fingerprint
//! identically, while any change to a predicate constant, comparison
//! operator, joined column, or table set produces a different digest.
//!
//! This is the key of the `neo-serve` plan cache: repeated or isomorphic
//! queries hit the cache and skip the value-network search entirely, while
//! parameter-perturbed variants (different constants ⇒ different optimal
//! plans) are deliberately treated as distinct.
//!
//! The digest doubles two independent FNV-1a streams (the same construction
//! as the search's visited-set `plan_key`), so accidental collisions are
//! ignorable at serving scale (~2⁻¹²⁸ per pair).

use crate::predicate::{CmpOp, Predicate};
use crate::query::{Aggregate, JoinEdge, Query};

/// A 128-bit canonical structural digest of a query. Cheap to copy, hash,
/// and compare; usable directly as a cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u128);

impl QueryFingerprint {
    /// Shard selector: maps the fingerprint onto one of `n` shards with a
    /// multiplicative mix of the high bits, so consecutive fingerprints
    /// spread evenly regardless of `n`.
    pub fn shard(self, n: usize) -> usize {
        debug_assert!(n > 0);
        let h = (self.0 >> 64) as u64 ^ (self.0 as u64).rotate_left(31);
        (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n
    }
}

const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// Two independent FNV-1a streams over `u64` tokens.
#[derive(Clone, Copy)]
struct Digest(u64, u64);

impl Digest {
    fn new() -> Self {
        Digest(OFFSET_A, OFFSET_B)
    }

    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(PRIME);
        self.1 = (self.1 ^ v.rotate_left(17))
            .wrapping_mul(PRIME)
            .rotate_left(13);
    }

    fn mix_str(&mut self, s: &str) {
        self.mix(s.len() as u64);
        // 8 bytes per token keeps the stream short without losing content.
        for chunk in s.as_bytes().chunks(8) {
            let mut v = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            self.mix(v);
        }
    }

    fn value(self) -> u128 {
        ((self.0 as u128) << 64) | self.1 as u128
    }
}

/// Canonical token sequence of one join edge: endpoints sorted so that the
/// (table, col) pair ordering — not the textual left/right position —
/// determines the encoding. `a ⋈ b` and `b ⋈ a` tokenize identically.
fn edge_tokens(e: &JoinEdge) -> [u64; 4] {
    let l = (e.left_table as u64, e.left_col as u64);
    let r = (e.right_table as u64, e.right_col as u64);
    let (lo, hi) = if l <= r { (l, r) } else { (r, l) };
    [lo.0, lo.1, hi.0, hi.1]
}

/// Digest of one predicate (variant tag + fields, constants included).
fn predicate_digest(p: &Predicate) -> u128 {
    let mut d = Digest::new();
    match p {
        Predicate::IntCmp {
            table,
            col,
            op,
            value,
        } => {
            d.mix(0x01);
            d.mix(*table as u64);
            d.mix(*col as u64);
            d.mix(match op {
                CmpOp::Eq => 0,
                CmpOp::Lt => 1,
                CmpOp::Le => 2,
                CmpOp::Gt => 3,
                CmpOp::Ge => 4,
            });
            d.mix(*value as u64);
        }
        Predicate::IntBetween { table, col, lo, hi } => {
            d.mix(0x02);
            d.mix(*table as u64);
            d.mix(*col as u64);
            d.mix(*lo as u64);
            d.mix(*hi as u64);
        }
        Predicate::StrEq { table, col, value } => {
            d.mix(0x03);
            d.mix(*table as u64);
            d.mix(*col as u64);
            d.mix_str(value);
        }
        Predicate::StrContains { table, col, needle } => {
            d.mix(0x04);
            d.mix(*table as u64);
            d.mix(*col as u64);
            d.mix_str(needle);
        }
    }
    d.value()
}

/// Computes the canonical structural fingerprint of a query.
///
/// Invariant under: join-list order, per-edge endpoint order, predicate
/// order, and the `id`/`family` labels. Sensitive to: the table set, the
/// join graph (tables *and* columns), every predicate (including literal
/// constants), and the aggregate.
pub fn fingerprint(query: &Query) -> QueryFingerprint {
    let mut d = Digest::new();

    // Relation set: `Query` guarantees `tables` sorted + unique, so this
    // is already canonical. Separator tags keep sections prefix-free.
    d.mix(0xA0);
    d.mix(query.tables.len() as u64);
    for &t in &query.tables {
        d.mix(t as u64);
    }

    // Join graph: canonicalize each edge, then sort the edge list.
    d.mix(0xA1);
    let mut edges: Vec<[u64; 4]> = query.joins.iter().map(edge_tokens).collect();
    edges.sort_unstable();
    d.mix(edges.len() as u64);
    for e in &edges {
        for &v in e {
            d.mix(v);
        }
    }

    // Predicates: digest each independently, sort the digests. Sorting
    // *digests* (not the predicates themselves) sidesteps any ordering
    // ambiguity between variants while staying order-invariant.
    d.mix(0xA2);
    let mut preds: Vec<u128> = query.predicates.iter().map(predicate_digest).collect();
    preds.sort_unstable();
    d.mix(preds.len() as u64);
    for p in &preds {
        d.mix((p >> 64) as u64);
        d.mix(*p as u64);
    }

    // Aggregate.
    d.mix(0xA3);
    match &query.agg {
        Aggregate::CountStar => d.mix(0x10),
        Aggregate::Sum { table, col } => {
            d.mix(0x11);
            d.mix(*table as u64);
            d.mix(*col as u64);
        }
    }

    QueryFingerprint(d.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_query() -> Query {
        Query {
            id: "q1".into(),
            family: "f".into(),
            tables: vec![0, 1, 2],
            joins: vec![
                JoinEdge {
                    left_table: 1,
                    left_col: 1,
                    right_table: 0,
                    right_col: 0,
                },
                JoinEdge {
                    left_table: 2,
                    left_col: 1,
                    right_table: 1,
                    right_col: 0,
                },
            ],
            predicates: vec![
                Predicate::IntCmp {
                    table: 0,
                    col: 1,
                    op: CmpOp::Lt,
                    value: 7,
                },
                Predicate::StrContains {
                    table: 2,
                    col: 0,
                    needle: "abc".into(),
                },
            ],
            agg: Aggregate::CountStar,
        }
    }

    #[test]
    fn invariant_under_list_reordering_and_labels() {
        let q = base_query();
        let mut r = q.clone();
        r.joins.reverse();
        r.predicates.reverse();
        r.id = "renamed".into();
        r.family = "other".into();
        assert_eq!(fingerprint(&q), fingerprint(&r));
    }

    #[test]
    fn invariant_under_edge_endpoint_swap() {
        let q = base_query();
        let mut r = q.clone();
        for e in &mut r.joins {
            std::mem::swap(&mut e.left_table, &mut e.right_table);
            std::mem::swap(&mut e.left_col, &mut e.right_col);
        }
        assert_eq!(fingerprint(&q), fingerprint(&r));
    }

    #[test]
    fn sensitive_to_constants_and_structure() {
        let q = base_query();
        let mut c = q.clone();
        if let Predicate::IntCmp { value, .. } = &mut c.predicates[0] {
            *value = 8;
        }
        assert_ne!(fingerprint(&q), fingerprint(&c), "perturbed constant");

        let mut s = q.clone();
        if let Predicate::StrContains { needle, .. } = &mut s.predicates[1] {
            *needle = "abd".into();
        }
        assert_ne!(fingerprint(&q), fingerprint(&s), "perturbed needle");

        let mut j = q.clone();
        j.joins[0].left_col = 0;
        assert_ne!(fingerprint(&q), fingerprint(&j), "changed join column");

        let mut o = q.clone();
        if let Predicate::IntCmp { op, .. } = &mut o.predicates[0] {
            *op = CmpOp::Le;
        }
        assert_ne!(fingerprint(&q), fingerprint(&o), "changed operator");

        let mut a = q.clone();
        a.agg = Aggregate::Sum { table: 0, col: 0 };
        assert_ne!(fingerprint(&q), fingerprint(&a), "changed aggregate");

        let mut dropped = q.clone();
        dropped.predicates.pop();
        assert_ne!(fingerprint(&q), fingerprint(&dropped), "dropped predicate");
    }

    #[test]
    fn shard_spreads_and_is_stable() {
        let q = base_query();
        let f = fingerprint(&q);
        assert_eq!(f.shard(16), f.shard(16));
        assert!(f.shard(16) < 16);
        assert_eq!(f.shard(1), 0);
    }
}
