//! EXPLAIN-style plan rendering: a multi-line, indented tree view of a
//! physical plan with resolved table and join-key names — what a user of a
//! real optimizer would read.

use crate::plan::{PlanNode, ScanType};
use crate::query::Query;
use neo_storage::Database;
use std::fmt::Write as _;

/// Renders a plan as an indented EXPLAIN-style tree, e.g.:
///
/// ```text
/// Hash Join (movie_keyword.movie_id = title.id)
///   Hash Join (movie_keyword.keyword_id = keyword.id)
///     Seq Scan on movie_keyword
///     Index Scan on keyword
///   Seq Scan on title
/// ```
pub fn explain(db: &Database, query: &Query, plan: &PlanNode) -> String {
    let mut out = String::new();
    render(db, query, plan, 0, &mut out);
    out
}

fn render(db: &Database, query: &Query, node: &PlanNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match node {
        PlanNode::Scan { rel, scan } => {
            let table = &db.tables[query.tables[*rel]].name;
            let kind = match scan {
                ScanType::Table => "Seq Scan on",
                ScanType::Index => "Index Scan on",
                ScanType::Unspecified => "Unspecified Scan on",
            };
            let preds: Vec<String> = query
                .predicates
                .iter()
                .filter(|p| p.table() == query.tables[*rel])
                .map(|p| p.describe(table, &db.tables[query.tables[*rel]].columns[p.col()].name))
                .collect();
            let _ = write!(out, "{pad}{kind} {table}");
            if !preds.is_empty() {
                let _ = write!(out, "  [{}]", preds.join(" AND "));
            }
            out.push('\n');
        }
        PlanNode::Join { op, left, right } => {
            let name = match op {
                crate::plan::JoinOp::Hash => "Hash Join",
                crate::plan::JoinOp::Merge => "Merge Join",
                crate::plan::JoinOp::Loop => "Nested Loop",
            };
            let cond = join_condition(db, query, left, right);
            let _ = writeln!(out, "{pad}{name} ({cond})");
            render(db, query, left, depth + 1, out);
            render(db, query, right, depth + 1, out);
        }
    }
}

fn join_condition(db: &Database, query: &Query, left: &PlanNode, right: &PlanNode) -> String {
    let (lmask, rmask) = (left.rel_mask(), right.rel_mask());
    let conds: Vec<String> = query
        .joins
        .iter()
        .filter_map(|e| {
            let a = query.rel_of(e.left_table)?;
            let b = query.rel_of(e.right_table)?;
            let covers = (lmask & (1 << a) != 0 && rmask & (1 << b) != 0)
                || (lmask & (1 << b) != 0 && rmask & (1 << a) != 0);
            if covers {
                Some(format!(
                    "{}.{} = {}.{}",
                    db.tables[e.left_table].name,
                    db.tables[e.left_table].columns[e.left_col].name,
                    db.tables[e.right_table].name,
                    db.tables[e.right_table].columns[e.right_col].name
                ))
            } else {
                None
            }
        })
        .collect();
    if conds.is_empty() {
        "cross".to_string()
    } else {
        conds.join(" AND ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinOp;
    use crate::predicate::Predicate;
    use crate::query::{Aggregate, JoinEdge};
    use neo_storage::{Column, ForeignKey, Table};

    fn setup() -> (Database, Query) {
        let a = Table::new(
            "users",
            vec![Column::int("id", vec![1]), Column::int("age", vec![30])],
        );
        let b = Table::new(
            "orders",
            vec![Column::int("id", vec![1]), Column::int("user_id", vec![1])],
        );
        let db = Database::build(
            "t",
            vec![a, b],
            vec![ForeignKey {
                from_table: 1,
                from_col: 1,
                to_table: 0,
                to_col: 0,
            }],
            vec![(0, 0), (1, 1)],
        );
        let q = Query {
            id: "q".into(),
            family: "f".into(),
            tables: vec![0, 1],
            joins: vec![JoinEdge {
                left_table: 1,
                left_col: 1,
                right_table: 0,
                right_col: 0,
            }],
            predicates: vec![Predicate::IntCmp {
                table: 0,
                col: 1,
                op: crate::predicate::CmpOp::Gt,
                value: 21,
            }],
            agg: Aggregate::CountStar,
        };
        (db, q)
    }

    #[test]
    fn explain_renders_join_tree_with_conditions() {
        let (db, q) = setup();
        let plan = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Index,
            }),
        };
        let text = explain(&db, &q, &plan);
        assert!(
            text.contains("Hash Join (orders.user_id = users.id)"),
            "{text}"
        );
        assert!(text.contains("Seq Scan on orders"), "{text}");
        assert!(text.contains("Index Scan on users"), "{text}");
        assert!(text.contains("users.age > 21"), "{text}");
    }

    #[test]
    fn explain_indents_by_depth() {
        let (db, q) = setup();
        let plan = PlanNode::Join {
            op: JoinOp::Loop,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Table,
            }),
        };
        let text = explain(&db, &q, &plan);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Nested Loop"));
        assert!(lines[1].starts_with("  Seq Scan"));
        assert!(lines[2].starts_with("  Seq Scan"));
    }
}
