//! Logical queries: a set of base relations, an equi-join graph over them,
//! and selection predicates (paper §3.1).

use crate::predicate::Predicate;
use neo_storage::Database;

/// An equi-join predicate between two table columns (database-global ids).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// Left table id.
    pub left_table: usize,
    /// Left column id.
    pub left_col: usize,
    /// Right table id.
    pub right_table: usize,
    /// Right column id.
    pub right_col: usize,
}

/// The aggregate computed by the query (Neo is restricted to
/// project-select-equijoin-aggregate queries, §1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Aggregate {
    /// `SELECT count(*)`
    #[default]
    CountStar,
    /// `SELECT sum(t.c)`
    Sum {
        /// Table id.
        table: usize,
        /// Column id.
        col: usize,
    },
}

/// A logical query: `R(q)`, its join graph, and its predicates.
/// Equality is structural — what the wire codec's round-trip tests and
/// the cross-process serving boundary compare.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Workload-unique id, e.g. `"16b"` (JOB style).
    pub id: String,
    /// Template/family id — used for template-aware train/test splits
    /// (the paper's TPC-H split never reuses templates, §6.1).
    pub family: String,
    /// The base relations `R(q)`: database table ids, sorted, unique.
    pub tables: Vec<usize>,
    /// Equi-join edges. The induced graph over `tables` must be connected.
    pub joins: Vec<JoinEdge>,
    /// Selection predicates.
    pub predicates: Vec<Predicate>,
    /// Output aggregate.
    pub agg: Aggregate,
}

impl Query {
    /// Number of relations (`|R(q)|`).
    pub fn num_relations(&self) -> usize {
        self.tables.len()
    }

    /// Number of joins performed (edges in the join graph); the paper's
    /// figures group queries by this (`n-1` for a tree-shaped graph of `n`
    /// relations, possibly more with cycles).
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// Relation index (position in `tables`) of a table id.
    pub fn rel_of(&self, table: usize) -> Option<usize> {
        self.tables.iter().position(|&t| t == table)
    }

    /// Per-relation adjacency masks: bit `j` of `adj[i]` is set when
    /// relations `i` and `j` share a join edge.
    pub fn adjacency(&self) -> Vec<u64> {
        let n = self.tables.len();
        let mut adj = vec![0u64; n];
        for e in &self.joins {
            if let (Some(a), Some(b)) = (self.rel_of(e.left_table), self.rel_of(e.right_table)) {
                adj[a] |= 1 << b;
                adj[b] |= 1 << a;
            }
        }
        adj
    }

    /// True when the join graph connects all relations (required for plans
    /// without cross products).
    pub fn is_connected(&self) -> bool {
        let n = self.tables.len();
        if n == 0 {
            return false;
        }
        let adj = self.adjacency();
        let mut seen = 1u64;
        let mut frontier = 1u64;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let i = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= adj[i] & !seen;
            }
            seen |= next;
            frontier = next;
        }
        seen.count_ones() as usize == n
    }

    /// Validates the query against a database: tables in range, sorted
    /// and unique; joins/predicates reference member tables and in-range
    /// columns; graph connected.
    pub fn validate(&self, db: &Database) -> Result<(), String> {
        if self.tables.is_empty() {
            return Err("query with no tables".into());
        }
        if !self.tables.windows(2).all(|w| w[0] < w[1]) {
            return Err("tables not sorted/unique".into());
        }
        for &t in &self.tables {
            if t >= db.num_tables() {
                return Err(format!("table id {t} out of range"));
            }
        }
        for e in &self.joins {
            for (t, c) in [(e.left_table, e.left_col), (e.right_table, e.right_col)] {
                if self.rel_of(t).is_none() {
                    return Err(format!("join references non-member table {t}"));
                }
                if c >= db.tables[t].num_cols() {
                    return Err(format!("join column {c} out of range for table {t}"));
                }
            }
        }
        for p in &self.predicates {
            if self.rel_of(p.table()).is_none() {
                return Err(format!(
                    "predicate references non-member table {}",
                    p.table()
                ));
            }
            if p.col() >= db.tables[p.table()].num_cols() {
                return Err("predicate column out of range".into());
            }
        }
        if self.tables.len() > 64 {
            return Err("more than 64 relations unsupported".into());
        }
        if !self.is_connected() {
            return Err(format!("join graph of query {} is not connected", self.id));
        }
        Ok(())
    }

    /// SQL-ish rendering for logs and examples.
    pub fn to_sql(&self, db: &Database) -> String {
        let froms: Vec<String> = self
            .tables
            .iter()
            .map(|&t| db.tables[t].name.clone())
            .collect();
        let mut conds: Vec<String> = self
            .joins
            .iter()
            .map(|e| {
                format!(
                    "{}.{} = {}.{}",
                    db.tables[e.left_table].name,
                    db.tables[e.left_table].columns[e.left_col].name,
                    db.tables[e.right_table].name,
                    db.tables[e.right_table].columns[e.right_col].name
                )
            })
            .collect();
        for p in &self.predicates {
            conds.push(p.describe(
                &db.tables[p.table()].name,
                &db.tables[p.table()].columns[p.col()].name,
            ));
        }
        let agg = match &self.agg {
            Aggregate::CountStar => "count(*)".to_string(),
            Aggregate::Sum { table, col } => {
                format!(
                    "sum({}.{})",
                    db.tables[*table].name, db.tables[*table].columns[*col].name
                )
            }
        };
        format!(
            "SELECT {agg} FROM {} WHERE {};",
            froms.join(", "),
            conds.join(" AND ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_storage::{Column, ForeignKey, Table};

    fn db3() -> Database {
        let a = Table::new(
            "a",
            vec![Column::int("id", vec![1]), Column::int("x", vec![1])],
        );
        let b = Table::new(
            "b",
            vec![Column::int("id", vec![1]), Column::int("a_id", vec![1])],
        );
        let c = Table::new(
            "c",
            vec![Column::int("id", vec![1]), Column::int("b_id", vec![1])],
        );
        Database::build(
            "t",
            vec![a, b, c],
            vec![
                ForeignKey {
                    from_table: 1,
                    from_col: 1,
                    to_table: 0,
                    to_col: 0,
                },
                ForeignKey {
                    from_table: 2,
                    from_col: 1,
                    to_table: 1,
                    to_col: 0,
                },
            ],
            vec![],
        )
    }

    fn chain_query() -> Query {
        Query {
            id: "q1".into(),
            family: "f1".into(),
            tables: vec![0, 1, 2],
            joins: vec![
                JoinEdge {
                    left_table: 1,
                    left_col: 1,
                    right_table: 0,
                    right_col: 0,
                },
                JoinEdge {
                    left_table: 2,
                    left_col: 1,
                    right_table: 1,
                    right_col: 0,
                },
            ],
            predicates: vec![],
            agg: Aggregate::CountStar,
        }
    }

    #[test]
    fn connected_chain_validates() {
        let db = db3();
        let q = chain_query();
        assert!(q.validate(&db).is_ok());
        assert!(q.is_connected());
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.num_joins(), 2);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let db = db3();
        let mut q = chain_query();
        q.joins.pop();
        assert!(q.validate(&db).unwrap_err().contains("not connected"));
    }

    #[test]
    fn adjacency_masks() {
        let q = chain_query();
        let adj = q.adjacency();
        assert_eq!(adj[0], 0b010);
        assert_eq!(adj[1], 0b101);
        assert_eq!(adj[2], 0b010);
    }

    #[test]
    fn to_sql_renders() {
        let db = db3();
        let q = chain_query();
        let sql = q.to_sql(&db);
        assert!(sql.starts_with("SELECT count(*) FROM a, b, c WHERE "));
        assert!(sql.contains("b.a_id = a.id"));
    }

    #[test]
    fn unsorted_tables_rejected() {
        let db = db3();
        let mut q = chain_query();
        q.tables = vec![1, 0, 2];
        assert!(q.validate(&db).is_err());
    }
}
