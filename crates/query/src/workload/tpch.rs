//! TPC-H-like workload: 100 queries instantiated from 22 templates (the
//! benchmark's query count), over the TPC-H-like schema. The paper
//! "generated 80 training and 20 test queries based on the benchmark query
//! templates without reusing templates between training and test queries"
//! (§6.1) — use [`super::Workload::split_by_family`] for that split.

use super::{induced_join_edges, Workload};
use crate::predicate::{CmpOp, Predicate};
use crate::query::{Aggregate, Query};
use neo_storage::datagen::tpch::{PRIORITIES, SEGMENTS, SHIP_MODES};
use neo_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 22 template table sets, shaped after the TPC-H reference queries.
const TEMPLATES: [&[&str]; 22] = [
    &["lineitem", "orders"],                               // Q1-ish
    &["part", "partsupp", "supplier", "nation", "region"], // Q2
    &["customer", "orders", "lineitem"],                   // Q3
    &["orders", "lineitem"],                               // Q4
    &[
        "customer", "orders", "lineitem", "supplier", "nation", "region",
    ], // Q5
    &["lineitem", "part"],                                 // Q6-ish
    &["supplier", "lineitem", "orders", "customer", "nation"], // Q7
    &[
        "part", "lineitem", "supplier", "orders", "customer", "nation", "region",
    ], // Q8
    &[
        "part", "partsupp", "lineitem", "supplier", "orders", "nation",
    ], // Q9
    &["customer", "orders", "lineitem", "nation"],         // Q10
    &["partsupp", "supplier", "nation"],                   // Q11
    &["orders", "lineitem", "customer"],                   // Q12
    &["customer", "orders"],                               // Q13
    &["lineitem", "part", "orders"],                       // Q14
    &["supplier", "lineitem", "orders"],                   // Q15
    &["partsupp", "part", "supplier"],                     // Q16
    &["lineitem", "part", "partsupp"],                     // Q17
    &["customer", "orders", "lineitem", "nation", "region"], // Q18
    &["lineitem", "part", "supplier"],                     // Q19
    &["supplier", "nation", "partsupp", "part"],           // Q20
    &["supplier", "lineitem", "orders", "nation"],         // Q21
    &["customer", "orders", "nation"],                     // Q22
];

/// Generates the 100-query TPC-H-like workload.
pub fn generate(db: &Database, seed: u64) -> Workload {
    assert_eq!(
        db.name, "tpch",
        "TPC-H workload requires the TPC-H-like database"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x79c4);
    let mut queries = Vec::new();
    for (fam, names) in TEMPLATES.iter().enumerate() {
        let mut tables: Vec<usize> = names
            .iter()
            .map(|n| db.table_id(n).unwrap_or_else(|| panic!("table {n}")))
            .collect();
        tables.sort_unstable();
        let joins = induced_join_edges(db, &tables);
        // 12 templates × 5 variants + 10 × 4 = 100.
        let variants = if fam < 12 { 5 } else { 4 };
        for v in 0..variants {
            let q = Query {
                id: format!("q{}v{}", fam + 1, v + 1),
                family: format!("q{}", fam + 1),
                tables: tables.clone(),
                joins: joins.clone(),
                predicates: uniform_predicates(db, &tables, &mut rng),
                agg: Aggregate::CountStar,
            };
            debug_assert!(q.validate(db).is_ok(), "{}: {:?}", q.id, q.validate(db));
            queries.push(q);
        }
    }
    Workload {
        name: "tpch".into(),
        queries,
    }
}

/// Uniform-friendly predicates: ranges and equalities over independent
/// columns, which histogram estimators handle well.
fn uniform_predicates(db: &Database, tables: &[usize], rng: &mut StdRng) -> Vec<Predicate> {
    let mut out = Vec::new();
    for &t in tables {
        if out.len() >= 3 || rng.gen_bool(0.35) {
            continue;
        }
        let table = &db.tables[t];
        let col = |n: &str| table.col_id(n).unwrap();
        match table.name.as_str() {
            "lineitem" => {
                if rng.gen_bool(0.5) {
                    let lo = rng.gen_range(1..40) as i64;
                    out.push(Predicate::IntBetween {
                        table: t,
                        col: col("quantity"),
                        lo,
                        hi: lo + rng.gen_range(3..12) as i64,
                    });
                } else {
                    out.push(Predicate::StrEq {
                        table: t,
                        col: col("shipmode"),
                        value: SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].into(),
                    });
                }
            }
            "orders" => {
                if rng.gen_bool(0.5) {
                    out.push(Predicate::IntCmp {
                        table: t,
                        col: col("totalprice"),
                        op: CmpOp::Lt,
                        value: rng.gen_range(50_000..450_000) as i64,
                    });
                } else {
                    out.push(Predicate::StrEq {
                        table: t,
                        col: col("orderpriority"),
                        value: PRIORITIES[rng.gen_range(0..PRIORITIES.len())].into(),
                    });
                }
            }
            "customer" => out.push(Predicate::StrEq {
                table: t,
                col: col("mktsegment"),
                value: SEGMENTS[rng.gen_range(0..SEGMENTS.len())].into(),
            }),
            "part" => out.push(Predicate::IntCmp {
                table: t,
                col: col("size"),
                op: CmpOp::Eq,
                value: rng.gen_range(1..51) as i64,
            }),
            "supplier" => out.push(Predicate::IntCmp {
                table: t,
                col: col("acctbal"),
                op: CmpOp::Gt,
                value: rng.gen_range(0..8_000) as i64,
            }),
            "partsupp" => out.push(Predicate::IntCmp {
                table: t,
                col: col("availqty"),
                op: CmpOp::Lt,
                value: rng.gen_range(1_000..9_000) as i64,
            }),
            "region" => out.push(Predicate::StrEq {
                table: t,
                col: col("name"),
                value: ["ASIA", "EUROPE", "AMERICA"][rng.gen_range(0..3usize)].into(),
            }),
            "nation" => {}
            _ => {}
        }
    }
    if out.is_empty() {
        // Every template contains at least one predicable table; fall back
        // to a quantity range if the coin flips all skipped.
        let t = tables[0];
        out.push(Predicate::IntCmp {
            table: t,
            col: 0,
            op: CmpOp::Ge,
            value: 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_storage::datagen::tpch;

    #[test]
    fn generates_100_queries_22_families() {
        let db = tpch::generate(0.05, 1);
        let wl = generate(&db, 3);
        assert_eq!(wl.queries.len(), 100);
        let fams: std::collections::HashSet<_> = wl.queries.iter().map(|q| &q.family).collect();
        assert_eq!(fams.len(), 22);
    }

    #[test]
    fn all_templates_connected_and_valid() {
        let db = tpch::generate(0.05, 1);
        let wl = generate(&db, 3);
        for q in &wl.queries {
            q.validate(&db).unwrap();
        }
    }

    #[test]
    fn family_split_gives_80_20_shape() {
        let db = tpch::generate(0.05, 1);
        let wl = generate(&db, 3);
        let (train, test) = wl.split_by_family(0.2, 11);
        assert!(
            test.len() >= 12 && test.len() <= 28,
            "test size {}",
            test.len()
        );
        assert_eq!(train.len() + test.len(), 100);
    }
}
