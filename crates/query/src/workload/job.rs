//! JOB-like workload: 113 queries in 33 families over the IMDB-like schema,
//! mirroring the Join Order Benchmark's structure (paper §6.1): each family
//! shares a join graph; variants differ in predicate constants; queries
//! span 4–17 relations and carry correlation-sensitive predicates.

use super::{induced_join_edges, sample_connected_tables, Workload};
use crate::predicate::{CmpOp, Predicate};
use crate::query::{Aggregate, Query};
use neo_storage::datagen::imdb::{COUNTRIES, GENRES, GENRE_VOCAB};
use neo_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of query families (JOB has 33).
pub const NUM_FAMILIES: usize = 33;

/// Generates the 113-query JOB-like workload.
///
/// # Panics
/// Panics if `db` is not the IMDB-like database.
pub fn generate(db: &Database, seed: u64) -> Workload {
    assert_eq!(
        db.name, "imdb",
        "JOB workload requires the IMDB-like database"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let title = db.table_id("title").expect("title table");

    let mut queries = Vec::new();
    for fam in 0..NUM_FAMILIES {
        // Sizes sweep 4..=17 (the JOB range, paper Fig. 16).
        let size = 4 + fam % 14;
        let tables = loop {
            if let Some(t) = sample_connected_tables(db, title, size, &mut rng) {
                break t;
            }
        };
        let joins = induced_join_edges(db, &tables);
        // First 14 families get 4 variants, the rest 3: 14*4 + 19*3 = 113.
        let variants = if fam < 14 { 4 } else { 3 };
        for v in 0..variants {
            let id = format!("{}{}", fam + 1, (b'a' + v as u8) as char);
            let predicates = sample_imdb_predicates(db, &tables, &mut rng);
            let q = Query {
                id,
                family: format!("{}", fam + 1),
                tables: tables.clone(),
                joins: joins.clone(),
                predicates,
                agg: Aggregate::CountStar,
            };
            debug_assert!(q.validate(db).is_ok(), "{:?}", q.validate(db));
            queries.push(q);
        }
    }
    Workload {
        name: "job".into(),
        queries,
    }
}

/// Samples 1–4 predicates over the member tables, using the
/// correlation-bearing columns of the IMDB-like schema.
pub(crate) fn sample_imdb_predicates(
    db: &Database,
    tables: &[usize],
    rng: &mut StdRng,
) -> Vec<Predicate> {
    let mut candidates: Vec<usize> = tables
        .iter()
        .copied()
        .filter(|&t| has_predicate_options(db, t))
        .collect();
    // Shuffle candidates and take up to a random count.
    for i in (1..candidates.len()).rev() {
        let j = rng.gen_range(0..=i);
        candidates.swap(i, j);
    }
    let want = rng.gen_range(1..=4usize).min(candidates.len().max(1));
    let mut out = Vec::new();
    for &t in candidates.iter().take(want) {
        out.extend(predicates_for_table(db, t, rng));
    }
    out
}

fn has_predicate_options(db: &Database, t: usize) -> bool {
    matches!(
        db.tables[t].name.as_str(),
        "title"
            | "movie_info"
            | "keyword"
            | "name"
            | "company_name"
            | "cast_info"
            | "movie_companies"
            | "person_info"
            | "kind_type"
    )
}

fn predicates_for_table(db: &Database, t: usize, rng: &mut StdRng) -> Vec<Predicate> {
    let table = &db.tables[t];
    let col = |n: &str| table.col_id(n).unwrap();
    match table.name.as_str() {
        "title" => {
            if rng.gen_bool(0.7) {
                let lo = 1950 + rng.gen_range(0..60) as i64;
                let hi = lo + rng.gen_range(3..25) as i64;
                vec![Predicate::IntBetween {
                    table: t,
                    col: col("production_year"),
                    lo,
                    hi,
                }]
            } else {
                vec![Predicate::IntCmp {
                    table: t,
                    col: col("kind_id"),
                    op: CmpOp::Eq,
                    value: rng.gen_range(0..7) as i64,
                }]
            }
        }
        "movie_info" => {
            // Mirrors JOB's `it.id = K AND mi.info = '…'` pattern: pin the
            // info-type row and predicate its value.
            if rng.gen_bool(0.6) {
                vec![
                    Predicate::IntCmp {
                        table: t,
                        col: col("info_type_id"),
                        op: CmpOp::Eq,
                        value: 2,
                    },
                    Predicate::StrEq {
                        table: t,
                        col: col("info"),
                        value: GENRES[rng.gen_range(0..GENRES.len())].to_string(),
                    },
                ]
            } else {
                vec![
                    Predicate::IntCmp {
                        table: t,
                        col: col("info_type_id"),
                        op: CmpOp::Eq,
                        value: 5,
                    },
                    Predicate::StrEq {
                        table: t,
                        col: col("info"),
                        value: COUNTRIES[rng.gen_range(0..COUNTRIES.len())].to_string(),
                    },
                ]
            }
        }
        "keyword" => {
            let g = rng.gen_range(0..GENRE_VOCAB.len());
            let w = GENRE_VOCAB[g][rng.gen_range(0..5usize)];
            vec![Predicate::StrContains {
                table: t,
                col: col("keyword"),
                needle: w.to_string(),
            }]
        }
        "name" => vec![Predicate::StrEq {
            table: t,
            col: col("birth_country"),
            value: COUNTRIES[rng.gen_range(0..COUNTRIES.len())].to_string(),
        }],
        "company_name" => vec![Predicate::StrEq {
            table: t,
            col: col("country_code"),
            value: COUNTRIES[rng.gen_range(0..COUNTRIES.len())].to_string(),
        }],
        "cast_info" => vec![Predicate::IntCmp {
            table: t,
            col: col("role_id"),
            op: CmpOp::Eq,
            value: rng.gen_range(0..12) as i64,
        }],
        "movie_companies" => vec![Predicate::IntCmp {
            table: t,
            col: col("company_type_id"),
            op: CmpOp::Eq,
            value: rng.gen_range(0..4) as i64,
        }],
        "person_info" => vec![
            Predicate::IntCmp {
                table: t,
                col: col("info_type_id"),
                op: CmpOp::Eq,
                value: 5,
            },
            Predicate::StrEq {
                table: t,
                col: col("info"),
                value: COUNTRIES[rng.gen_range(0..COUNTRIES.len())].to_string(),
            },
        ],
        "kind_type" => vec![Predicate::StrEq {
            table: t,
            col: col("kind"),
            value: ["movie", "tv_series", "video"][rng.gen_range(0..3usize)].to_string(),
        }],
        other => unreachable!("no predicate options for {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_storage::datagen::imdb;

    #[test]
    fn generates_113_queries_in_33_families() {
        let db = imdb::generate(0.02, 1);
        let wl = generate(&db, 42);
        assert_eq!(wl.queries.len(), 113);
        let fams: std::collections::HashSet<_> = wl.queries.iter().map(|q| &q.family).collect();
        assert_eq!(fams.len(), 33);
    }

    #[test]
    fn all_queries_validate() {
        let db = imdb::generate(0.02, 1);
        let wl = generate(&db, 42);
        for q in &wl.queries {
            q.validate(&db).unwrap();
            assert!(!q.predicates.is_empty(), "query {} has no predicates", q.id);
        }
    }

    #[test]
    fn sizes_span_4_to_17() {
        let db = imdb::generate(0.02, 1);
        let wl = generate(&db, 42);
        let min = wl.queries.iter().map(|q| q.num_relations()).min().unwrap();
        let max = wl.queries.iter().map(|q| q.num_relations()).max().unwrap();
        assert_eq!(min, 4);
        assert_eq!(max, 17);
    }

    #[test]
    fn family_members_share_join_graph() {
        let db = imdb::generate(0.02, 1);
        let wl = generate(&db, 42);
        for fam in ["1", "2", "3"] {
            let members: Vec<_> = wl.queries.iter().filter(|q| q.family == fam).collect();
            assert!(members.len() >= 3);
            for m in &members[1..] {
                assert_eq!(m.tables, members[0].tables);
                assert_eq!(m.joins.len(), members[0].joins.len());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let db = imdb::generate(0.02, 1);
        let a = generate(&db, 9);
        let b = generate(&db, 9);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.tables, y.tables);
            assert_eq!(x.predicates, y.predicates);
        }
    }
}
