//! Workload generators mirroring the paper's three evaluation workloads
//! (§6.1) plus the Ext-JOB generalization suite (§6.4.2).
//!
//! * [`job`] — 113 queries in 33 families over the IMDB-like schema
//!   (the Join Order Benchmark's shape: shared join graphs per family,
//!   correlated predicates, 4–17 relations);
//! * [`ext_job`] — 24 queries that are *semantically distinct* from JOB
//!   (no shared families, different join graphs and predicate columns);
//! * [`tpch`] — 100 queries from 22 templates over the TPC-H-like schema,
//!   split by template (the paper never reuses templates between train and
//!   test);
//! * [`corp`] — star-join dashboard queries over the Corp-like schema.

pub mod corp;
pub mod ext_job;
pub mod job;
pub mod tpch;

use crate::query::Query;
use neo_storage::Database;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A named set of queries.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name ("job", "ext_job", "tpch", "corp").
    pub name: String,
    /// The queries.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Random 80/20-style split at query granularity (used for JOB and
    /// Corp, §6.1). `test_frac` of queries (rounded) become the test set.
    pub fn split_random(&self, test_frac: f64, seed: u64) -> (Vec<Query>, Vec<Query>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.queries.len()).collect();
        idx.shuffle(&mut rng);
        let n_test = ((self.queries.len() as f64) * test_frac).round() as usize;
        let test: Vec<Query> = idx[..n_test]
            .iter()
            .map(|&i| self.queries[i].clone())
            .collect();
        let train: Vec<Query> = idx[n_test..]
            .iter()
            .map(|&i| self.queries[i].clone())
            .collect();
        (train, test)
    }

    /// Template-aware split (used for TPC-H, §6.1): whole families are
    /// assigned to train or test, so no template appears in both.
    pub fn split_by_family(&self, test_frac: f64, seed: u64) -> (Vec<Query>, Vec<Query>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut families: Vec<String> = Vec::new();
        for q in &self.queries {
            if !families.contains(&q.family) {
                families.push(q.family.clone());
            }
        }
        families.shuffle(&mut rng);
        let n_test_fam = ((families.len() as f64) * test_frac).round().max(1.0) as usize;
        let test_fams: Vec<&String> = families[..n_test_fam].iter().collect();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for q in &self.queries {
            if test_fams.iter().any(|f| **f == q.family) {
                test.push(q.clone());
            } else {
                train.push(q.clone());
            }
        }
        (train, test)
    }

    /// Largest relation count over the workload.
    pub fn max_relations(&self) -> usize {
        self.queries
            .iter()
            .map(|q| q.num_relations())
            .max()
            .unwrap_or(0)
    }
}

use rand::SeedableRng;

/// Samples a connected set of `size` tables by growing along foreign-key
/// edges from `start`. Returns `None` when the schema component of `start`
/// is smaller than `size`.
pub(crate) fn sample_connected_tables(
    db: &Database,
    start: usize,
    size: usize,
    rng: &mut StdRng,
) -> Option<Vec<usize>> {
    let n = db.num_tables();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for fk in &db.foreign_keys {
        adj[fk.from_table].push(fk.to_table);
        adj[fk.to_table].push(fk.from_table);
    }
    let mut chosen = vec![start];
    let mut in_set = vec![false; n];
    in_set[start] = true;
    while chosen.len() < size {
        // Candidate frontier: neighbours of the chosen set not yet chosen.
        let mut frontier: Vec<usize> = Vec::new();
        for &t in &chosen {
            for &u in &adj[t] {
                if !in_set[u] && !frontier.contains(&u) {
                    frontier.push(u);
                }
            }
        }
        if frontier.is_empty() {
            return None;
        }
        let pick = frontier[rng.gen_range(0..frontier.len())];
        in_set[pick] = true;
        chosen.push(pick);
    }
    chosen.sort_unstable();
    Some(chosen)
}

/// Builds the induced join-edge list: every foreign key with both endpoints
/// in `tables` becomes an equi-join edge.
pub(crate) fn induced_join_edges(db: &Database, tables: &[usize]) -> Vec<crate::query::JoinEdge> {
    db.foreign_keys
        .iter()
        .filter(|fk| tables.contains(&fk.from_table) && tables.contains(&fk.to_table))
        .map(|fk| crate::query::JoinEdge {
            left_table: fk.from_table,
            left_col: fk.from_col,
            right_table: fk.to_table,
            right_col: fk.to_col,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_storage::datagen::imdb;

    #[test]
    fn sampled_tables_induce_connected_query() {
        let db = imdb::generate(0.02, 1);
        let title = db.table_id("title").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for size in 2..=10 {
            let tables = sample_connected_tables(&db, title, size, &mut rng).unwrap();
            assert_eq!(tables.len(), size);
            let joins = induced_join_edges(&db, &tables);
            let q = Query {
                id: "t".into(),
                family: "t".into(),
                tables,
                joins,
                predicates: vec![],
                agg: Default::default(),
            };
            assert!(
                q.validate(&db).is_ok(),
                "size {size}: {:?}",
                q.validate(&db)
            );
        }
    }

    #[test]
    fn oversize_sampling_returns_none() {
        let db = imdb::generate(0.02, 1);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sample_connected_tables(&db, 0, 100, &mut rng).is_none());
    }

    #[test]
    fn family_split_never_shares_templates() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 99);
        let (train, test) = wl.split_by_family(0.2, 7);
        let train_fams: std::collections::HashSet<_> = train.iter().map(|q| &q.family).collect();
        for q in &test {
            assert!(!train_fams.contains(&q.family));
        }
        assert_eq!(train.len() + test.len(), wl.queries.len());
    }

    #[test]
    fn random_split_partitions() {
        let db = imdb::generate(0.02, 1);
        let wl = job::generate(&db, 99);
        let (train, test) = wl.split_random(0.2, 7);
        assert_eq!(train.len() + test.len(), wl.queries.len());
        let ids: std::collections::HashSet<_> =
            train.iter().chain(test.iter()).map(|q| &q.id).collect();
        assert_eq!(ids.len(), wl.queries.len());
    }
}
