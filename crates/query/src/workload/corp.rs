//! Corp-like workload: star-join dashboard queries over the Corp-like
//! snowflake schema (stands in for the paper's 8,000-query internal
//! dashboard workload, §6.1). Every query joins `fact_sales` with a subset
//! of its dimensions, optionally snowflaking out to sub-dimensions.

use super::{induced_join_edges, Workload};
use crate::predicate::{CmpOp, Predicate};
use crate::query::{Aggregate, Query};
use neo_storage::datagen::corp::{CATEGORIES, CHANNELS, COUNTRIES, SEGMENTS};
use neo_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default number of generated queries (scaled down from the paper's 8,000
/// for laptop wall-clock; the family structure is what matters).
pub const DEFAULT_COUNT: usize = 150;

/// Number of dashboard "families" (distinct dimension combinations).
pub const NUM_FAMILIES: usize = 25;

/// Generates a Corp-like workload with `count` queries.
pub fn generate(db: &Database, seed: u64, count: usize) -> Workload {
    assert_eq!(
        db.name, "corp",
        "Corp workload requires the Corp-like database"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
    let fact = db.table_id("fact_sales").unwrap();
    let dims = [
        "dim_date",
        "dim_customer",
        "dim_product",
        "dim_region",
        "dim_channel",
        "dim_employee",
    ];
    // Snowflake extensions keyed by the dim that enables them.
    let snowflake: &[(&str, &str)] = &[
        ("dim_region", "country"),
        ("dim_product", "product_category"),
        ("dim_customer", "country"),
        ("dim_employee", "dim_region"),
    ];

    // Build family table-sets deterministically.
    let mut families: Vec<Vec<usize>> = Vec::new();
    while families.len() < NUM_FAMILIES {
        let k = 1 + families.len() % dims.len();
        let mut chosen: Vec<&str> = Vec::new();
        let mut pool: Vec<&str> = dims.to_vec();
        for _ in 0..k {
            let i = rng.gen_range(0..pool.len());
            chosen.push(pool.remove(i));
        }
        // Snowflake with probability 0.5 per eligible edge.
        let mut names: Vec<&str> = chosen.clone();
        for (dim, sub) in snowflake {
            if chosen.contains(dim) && rng.gen_bool(0.5) && !names.contains(sub) {
                names.push(sub);
            }
        }
        let mut tables: Vec<usize> = names.iter().map(|n| db.table_id(n).unwrap()).collect();
        tables.push(fact);
        tables.sort_unstable();
        tables.dedup();
        if !families.contains(&tables) {
            families.push(tables);
        }
    }

    let mut queries = Vec::new();
    let per_family = count.div_ceil(NUM_FAMILIES);
    'outer: for (fam, tables) in families.iter().enumerate() {
        let joins = induced_join_edges(db, tables);
        for v in 0..per_family {
            let q = Query {
                id: format!("corp{}_{}", fam + 1, v + 1),
                family: format!("corp{}", fam + 1),
                tables: tables.clone(),
                joins: joins.clone(),
                predicates: dashboard_predicates(db, tables, &mut rng),
                agg: Aggregate::CountStar,
            };
            debug_assert!(q.validate(db).is_ok(), "{}: {:?}", q.id, q.validate(db));
            queries.push(q);
            if queries.len() >= count {
                break 'outer;
            }
        }
    }
    Workload {
        name: "corp".into(),
        queries,
    }
}

fn dashboard_predicates(db: &Database, tables: &[usize], rng: &mut StdRng) -> Vec<Predicate> {
    let mut out = Vec::new();
    for &t in tables {
        if out.len() >= 3 {
            break;
        }
        let table = &db.tables[t];
        let col = |n: &str| table.col_id(n).unwrap();
        match table.name.as_str() {
            "dim_date" => {
                if rng.gen_bool(0.6) {
                    out.push(Predicate::IntCmp {
                        table: t,
                        col: col("year"),
                        op: CmpOp::Eq,
                        value: rng.gen_range(2015..2019) as i64,
                    });
                } else {
                    out.push(Predicate::IntCmp {
                        table: t,
                        col: col("quarter"),
                        op: CmpOp::Eq,
                        value: rng.gen_range(1..5) as i64,
                    });
                }
            }
            "dim_customer" => out.push(Predicate::StrEq {
                table: t,
                col: col("segment"),
                value: SEGMENTS[rng.gen_range(0..SEGMENTS.len())].into(),
            }),
            "product_category" => out.push(Predicate::StrEq {
                table: t,
                col: col("name"),
                value: CATEGORIES[rng.gen_range(0..CATEGORIES.len())].into(),
            }),
            "dim_channel" => out.push(Predicate::StrEq {
                table: t,
                col: col("name"),
                value: CHANNELS[rng.gen_range(0..CHANNELS.len())].into(),
            }),
            "country" => out.push(Predicate::StrEq {
                table: t,
                col: col("name"),
                value: COUNTRIES[rng.gen_range(0..COUNTRIES.len())].into(),
            }),
            "dim_product" if rng.gen_bool(0.5) => {
                let lo = rng.gen_range(5..1_500) as i64;
                out.push(Predicate::IntBetween {
                    table: t,
                    col: col("list_price"),
                    lo,
                    hi: lo + rng.gen_range(50..400) as i64,
                });
            }
            "fact_sales" if rng.gen_bool(0.4) => {
                out.push(Predicate::IntCmp {
                    table: t,
                    col: col("amount"),
                    op: CmpOp::Gt,
                    value: rng.gen_range(100..4_000) as i64,
                });
            }
            _ => {}
        }
    }
    if out.is_empty() {
        let t = *tables.iter().max().unwrap();
        let table = &db.tables[t];
        if table.name == "fact_sales" {
            out.push(Predicate::IntCmp {
                table: t,
                col: table.col_id("quantity").unwrap(),
                op: CmpOp::Lt,
                value: rng.gen_range(5..18) as i64,
            });
        } else {
            out.push(Predicate::IntCmp {
                table: t,
                col: 0,
                op: CmpOp::Ge,
                value: 0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_storage::datagen::corp;

    #[test]
    fn generates_requested_count() {
        let db = corp::generate(0.01, 1);
        let wl = generate(&db, 5, 60);
        assert_eq!(wl.queries.len(), 60);
        for q in &wl.queries {
            q.validate(&db).unwrap();
        }
    }

    #[test]
    fn every_query_contains_fact_table() {
        let db = corp::generate(0.01, 1);
        let fact = db.table_id("fact_sales").unwrap();
        let wl = generate(&db, 5, 60);
        for q in &wl.queries {
            assert!(q.tables.contains(&fact), "query {} lacks fact table", q.id);
        }
    }

    #[test]
    fn families_are_distinct_table_sets() {
        let db = corp::generate(0.01, 1);
        let wl = generate(&db, 5, DEFAULT_COUNT);
        let mut by_family: std::collections::HashMap<&str, &Vec<usize>> = Default::default();
        for q in &wl.queries {
            by_family.entry(&q.family).or_insert(&q.tables);
        }
        let sets: std::collections::HashSet<_> = by_family.values().collect();
        assert_eq!(sets.len(), by_family.len());
    }
}
