//! Ext-JOB: 24 queries semantically distinct from the JOB workload (paper
//! §6.4.2) — no shared families, join graphs grown from different hub
//! tables, and predicates over columns the JOB generator never touches
//! (`title.title`, `aka_title.title`, `char_name.name`, `role_type.role`,
//! `link_type.link`, rating rows of `movie_info`).

use super::{induced_join_edges, sample_connected_tables, Workload};
use crate::predicate::{CmpOp, Predicate};
use crate::query::{Aggregate, Query};
use neo_storage::datagen::imdb::{COUNTRIES, GENRE_VOCAB};
use neo_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of Ext-JOB queries (paper §6.4.2: "a set of 24 additional
/// queries").
pub const NUM_QUERIES: usize = 24;

/// Generates the Ext-JOB workload.
pub fn generate(db: &Database, seed: u64) -> Workload {
    assert_eq!(db.name, "imdb", "Ext-JOB requires the IMDB-like database");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE27);
    // Hubs deliberately different from JOB's title-grown graphs.
    let hubs = [
        "name",
        "movie_link",
        "cast_info",
        "person_info",
        "movie_companies",
        "aka_title",
    ];
    let mut queries = Vec::new();
    for i in 0..NUM_QUERIES {
        let hub = db.table_id(hubs[i % hubs.len()]).unwrap();
        let size = 5 + i % 8; // 5..=12 relations
        let tables = loop {
            if let Some(t) = sample_connected_tables(db, hub, size, &mut rng) {
                break t;
            }
        };
        let joins = induced_join_edges(db, &tables);
        let predicates = novel_predicates(db, &tables, &mut rng);
        let q = Query {
            id: format!("ext{}", i + 1),
            family: format!("ext{}", i + 1),
            tables,
            joins,
            predicates,
            agg: Aggregate::CountStar,
        };
        debug_assert!(q.validate(db).is_ok(), "{:?}", q.validate(db));
        queries.push(q);
    }
    Workload {
        name: "ext_job".into(),
        queries,
    }
}

/// Predicates using columns JOB never predicates on.
fn novel_predicates(db: &Database, tables: &[usize], rng: &mut StdRng) -> Vec<Predicate> {
    let mut out = Vec::new();
    for &t in tables {
        let table = &db.tables[t];
        let col = |n: &str| table.col_id(n).unwrap();
        let mut preds: Vec<Predicate> = match table.name.as_str() {
            "title" => {
                // Novel: substring predicate on the title text itself.
                let g = rng.gen_range(0..GENRE_VOCAB.len());
                vec![Predicate::StrContains {
                    table: t,
                    col: col("title"),
                    needle: GENRE_VOCAB[g][rng.gen_range(0..5usize)].to_string(),
                }]
            }
            "aka_title" => {
                vec![Predicate::StrContains {
                    table: t,
                    col: col("title"),
                    needle: "aka_1".into(),
                }]
            }
            "char_name" => {
                vec![Predicate::StrContains {
                    table: t,
                    col: col("name"),
                    needle: format!("character_{}", rng.gen_range(1..5)),
                }]
            }
            "role_type" => vec![Predicate::StrEq {
                table: t,
                col: col("role"),
                value: ["director", "writer", "producer", "composer"][rng.gen_range(0..4usize)]
                    .into(),
            }],
            "link_type" => vec![Predicate::StrEq {
                table: t,
                col: col("link"),
                value: ["remake_of", "follows", "spoofs", "references"][rng.gen_range(0..4usize)]
                    .into(),
            }],
            "movie_link" => vec![Predicate::IntCmp {
                table: t,
                col: col("link_type_id"),
                op: CmpOp::Lt,
                value: rng.gen_range(4..12) as i64,
            }],
            "movie_info" => vec![
                // Novel: predicate the *rating* rows rather than genres.
                Predicate::IntCmp {
                    table: t,
                    col: col("info_type_id"),
                    op: CmpOp::Eq,
                    value: 3,
                },
                Predicate::StrContains {
                    table: t,
                    col: col("info"),
                    needle: format!("{}.", rng.gen_range(5..10)),
                },
            ],
            "name" => vec![Predicate::StrContains {
                table: t,
                col: col("name"),
                needle: format!("person_{}", rng.gen_range(1..8)),
            }],
            "person_info" => vec![
                Predicate::IntCmp {
                    table: t,
                    col: col("info_type_id"),
                    op: CmpOp::Eq,
                    value: 5,
                },
                Predicate::StrEq {
                    table: t,
                    col: col("info"),
                    value: COUNTRIES[rng.gen_range(0..COUNTRIES.len())].into(),
                },
            ],
            _ => vec![],
        };
        if !preds.is_empty() && (out.is_empty() || rng.gen_bool(0.45)) {
            out.append(&mut preds);
        }
        if out.len() >= 5 {
            break;
        }
    }
    if out.is_empty() {
        // Guarantee at least one predicate: every Ext-JOB graph contains
        // its hub, all of which have options above — but guard anyway with
        // a fallback range on the first table's id column.
        out.push(Predicate::IntCmp {
            table: tables[0],
            col: 0,
            op: CmpOp::Ge,
            value: 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::job;
    use neo_storage::datagen::imdb;

    #[test]
    fn generates_24_validating_queries() {
        let db = imdb::generate(0.02, 1);
        let wl = generate(&db, 1);
        assert_eq!(wl.queries.len(), 24);
        for q in &wl.queries {
            q.validate(&db).unwrap();
        }
    }

    #[test]
    fn families_disjoint_from_job() {
        let db = imdb::generate(0.02, 1);
        let ext = generate(&db, 1);
        let jobwl = job::generate(&db, 1);
        let job_fams: std::collections::HashSet<_> =
            jobwl.queries.iter().map(|q| q.family.clone()).collect();
        for q in &ext.queries {
            assert!(!job_fams.contains(&q.family));
        }
    }

    #[test]
    fn join_graphs_not_shared_with_job() {
        // Semantic distinctness (paper: "no shared predicates or join
        // graphs"): no Ext-JOB table set equals a JOB table set.
        let db = imdb::generate(0.02, 1);
        let ext = generate(&db, 1);
        let jobwl = job::generate(&db, 1);
        let job_graphs: std::collections::HashSet<_> =
            jobwl.queries.iter().map(|q| q.tables.clone()).collect();
        let novel = ext
            .queries
            .iter()
            .filter(|q| !job_graphs.contains(&q.tables))
            .count();
        assert!(novel >= 20, "only {novel} of 24 Ext-JOB graphs are novel");
    }
}
