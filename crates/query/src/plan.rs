//! Physical execution plans: join trees with scan leaves, partial plans
//! (forests), and the search-space neighbourhood (paper §3.1, §4.2).
//!
//! A *partial* plan is a forest; leaves are table scans `T(r)`, index scans
//! `I(r)` or unspecified scans `U(r)`. A *complete* plan is a single tree
//! with no unspecified scans. The children of a partial plan `P_i` are all
//! plans obtainable by (1) specifying one unspecified scan, or (2) merging
//! two root trees with a join operator — exactly the paper's
//! `Children(P_i)` definition.

use crate::query::Query;
use neo_storage::Database;
use std::fmt::Write as _;

/// Relation-set bitmask (relation index = position in `Query::tables`).
pub type RelMask = u64;

/// Join operators (`J`, paper §3.1). `|J| = 3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinOp {
    /// Hash join (`⋈_H`): build on the right input, probe with the left.
    Hash,
    /// Sort-merge join (`⋈_M`).
    Merge,
    /// (Index-)nested-loop join (`⋈_L`): right input is the inner side.
    Loop,
}

impl JoinOp {
    /// All join operators, in encoding order.
    pub const ALL: [JoinOp; 3] = [JoinOp::Hash, JoinOp::Merge, JoinOp::Loop];

    /// Position in the one-hot join-type encoding (paper §3.2).
    pub fn index(self) -> usize {
        match self {
            JoinOp::Hash => 0,
            JoinOp::Merge => 1,
            JoinOp::Loop => 2,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinOp::Hash => "HJ",
            JoinOp::Merge => "MJ",
            JoinOp::Loop => "LJ",
        }
    }
}

/// Scan types for leaf nodes (paper §3.1: `T(r)`, `I(r)`, `U(r)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScanType {
    /// Full table scan.
    Table,
    /// Index scan.
    Index,
    /// Not yet decided (treated as both table and index in the encoding).
    Unspecified,
}

/// A node in a plan tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PlanNode {
    /// A scan of relation `rel` (index into `Query::tables`).
    Scan {
        /// Relation index within the query.
        rel: usize,
        /// Access path.
        scan: ScanType,
    },
    /// A binary join.
    Join {
        /// Join algorithm.
        op: JoinOp,
        /// Left (outer / probe) input.
        left: Box<PlanNode>,
        /// Right (inner / build) input.
        right: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Bitmask of the relations in this subtree.
    pub fn rel_mask(&self) -> RelMask {
        match self {
            PlanNode::Scan { rel, .. } => 1 << rel,
            PlanNode::Join { left, right, .. } => left.rel_mask() | right.rel_mask(),
        }
    }

    /// Number of nodes in this subtree.
    pub fn num_nodes(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right, .. } => 1 + left.num_nodes() + right.num_nodes(),
        }
    }

    /// True when no `Unspecified` scans remain in this subtree.
    pub fn fully_specified(&self) -> bool {
        match self {
            PlanNode::Scan { scan, .. } => *scan != ScanType::Unspecified,
            PlanNode::Join { left, right, .. } => left.fully_specified() && right.fully_specified(),
        }
    }

    /// Collects every subtree of this tree (including itself and leaves),
    /// in post-order. Used to derive training states (paper §4: the value
    /// of a partial plan bounds every completion containing its subtrees).
    pub fn subtrees(&self) -> Vec<&PlanNode> {
        let mut out = Vec::new();
        self.collect_subtrees(&mut out);
        out
    }

    fn collect_subtrees<'a>(&'a self, out: &mut Vec<&'a PlanNode>) {
        if let PlanNode::Join { left, right, .. } = self {
            left.collect_subtrees(out);
            right.collect_subtrees(out);
        }
        out.push(self);
    }

    /// True when `self` appears as a subtree of `other` under the subplan
    /// relation: every join of `self` appears in `other`, and every
    /// specified scan of `self` matches (an `Unspecified` scan of `self`
    /// is subsumed by any scan of the same relation).
    pub fn subsumed_by(&self, other: &PlanNode) -> bool {
        if self.matches_root(other) {
            return true;
        }
        match other {
            PlanNode::Scan { .. } => false,
            PlanNode::Join { left, right, .. } => self.subsumed_by(left) || self.subsumed_by(right),
        }
    }

    fn matches_root(&self, other: &PlanNode) -> bool {
        match (self, other) {
            (PlanNode::Scan { rel: a, scan: sa }, PlanNode::Scan { rel: b, scan: sb }) => {
                a == b && (*sa == ScanType::Unspecified || sa == sb)
            }
            (
                PlanNode::Join {
                    op: oa,
                    left: la,
                    right: ra,
                },
                PlanNode::Join {
                    op: ob,
                    left: lb,
                    right: rb,
                },
            ) => oa == ob && la.matches_root(lb) && ra.matches_root(rb),
            _ => false,
        }
    }

    /// Compact display, e.g. `HJ(MJ(T(0),I(2)),U(1))`.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        self.write_describe(&mut s);
        s
    }

    fn write_describe(&self, s: &mut String) {
        match self {
            PlanNode::Scan { rel, scan } => {
                let tag = match scan {
                    ScanType::Table => 'T',
                    ScanType::Index => 'I',
                    ScanType::Unspecified => 'U',
                };
                let _ = write!(s, "{tag}({rel})");
            }
            PlanNode::Join { op, left, right } => {
                let _ = write!(s, "{}(", op.name());
                left.write_describe(s);
                s.push(',');
                right.write_describe(s);
                s.push(')');
            }
        }
    }
}

/// A partial execution plan: a forest of join trees covering all relations
/// of a query exactly once.
///
/// # Examples
///
/// Walking the search space from the initial state to a complete plan:
///
/// ```
/// use neo_query::{children, PartialPlan, QueryContext};
/// use neo_query::workload::job;
/// use neo_storage::datagen::imdb;
///
/// let db = imdb::generate(0.02, 1);
/// let q = &job::generate(&db, 1).queries[0];
/// let ctx = QueryContext::new(&db, q);
/// let mut plan = PartialPlan::initial(q);
/// while !plan.is_complete() {
///     let kids = children(&plan, &ctx);
///     plan = kids.into_iter().next().unwrap();
/// }
/// assert_eq!(plan.rel_mask(), (1u64 << q.num_relations()) - 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PartialPlan {
    /// The root trees. Order is canonical: sorted by smallest relation
    /// index in each tree, maintained by the constructors.
    pub roots: Vec<PlanNode>,
}

impl PartialPlan {
    /// The initial search state `P_0 = [U(r) | r ∈ R(q)]` (paper §4.2).
    pub fn initial(query: &Query) -> Self {
        PartialPlan {
            roots: (0..query.num_relations())
                .map(|rel| PlanNode::Scan {
                    rel,
                    scan: ScanType::Unspecified,
                })
                .collect(),
        }
    }

    /// Wraps a single complete tree.
    pub fn from_tree(root: PlanNode) -> Self {
        PartialPlan { roots: vec![root] }
    }

    /// True when a single tree remains and every scan is specified.
    pub fn is_complete(&self) -> bool {
        self.roots.len() == 1 && self.roots[0].fully_specified()
    }

    /// Union of all root relation masks.
    pub fn rel_mask(&self) -> RelMask {
        self.roots
            .iter()
            .map(|r| r.rel_mask())
            .fold(0, |a, b| a | b)
    }

    /// Total node count across the forest.
    pub fn num_nodes(&self) -> usize {
        self.roots.iter().map(|r| r.num_nodes()).sum()
    }

    /// The complete tree, if complete.
    pub fn as_complete(&self) -> Option<&PlanNode> {
        if self.is_complete() {
            Some(&self.roots[0])
        } else {
            None
        }
    }

    /// Compact display of the forest.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self.roots.iter().map(|r| r.describe()).collect();
        parts.join(" | ")
    }

    fn canonicalize(&mut self) {
        self.roots.sort_by_key(|r| r.rel_mask().trailing_zeros());
    }

    /// The paper's subplan relation `self ⊂ other`: `other` is constructible
    /// from `self` by specifying scans and joining trees. Equivalently,
    /// every root tree of `self` must be subsumed somewhere in `other`.
    pub fn subplan_of(&self, other: &PartialPlan) -> bool {
        self.roots
            .iter()
            .all(|r| other.roots.iter().any(|o| r.subsumed_by(o)))
    }
}

/// Per-query, per-database context for children enumeration: which
/// relations may legally use an index scan and which root pairs may join.
#[derive(Clone, Debug)]
pub struct QueryContext {
    /// `adj[i]`: mask of relations sharing a join edge with relation `i`.
    pub adjacency: Vec<RelMask>,
    /// `index_ok[i]`: relation `i` has an index on a join or predicate
    /// column, so `I(r)` is a legal access path.
    pub index_ok: Vec<bool>,
}

impl QueryContext {
    /// Builds the context.
    pub fn new(db: &Database, query: &Query) -> Self {
        let n = query.num_relations();
        let adjacency = query.adjacency();
        let mut index_ok = vec![false; n];
        for (i, &t) in query.tables.iter().enumerate() {
            let mut cols: Vec<usize> = Vec::new();
            for e in &query.joins {
                if e.left_table == t {
                    cols.push(e.left_col);
                }
                if e.right_table == t {
                    cols.push(e.right_col);
                }
            }
            for p in &query.predicates {
                if p.table() == t {
                    cols.push(p.col());
                }
            }
            index_ok[i] = cols.iter().any(|&c| db.has_index(t, c));
        }
        QueryContext {
            adjacency,
            index_ok,
        }
    }

    /// True when some join edge connects the two (disjoint) relation sets —
    /// the no-cross-product rule.
    pub fn connected(&self, a: RelMask, b: RelMask) -> bool {
        let mut m = a;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.adjacency[i] & b != 0 {
                return true;
            }
        }
        false
    }
}

/// Enumerates `Children(P_i)` (paper §4.2): all plans one decision away.
///
/// * For every `Unspecified` scan leaf (anywhere in the forest): a child
///   specifying it as a table scan, plus one as an index scan when legal.
/// * For every ordered pair of join-connected roots and every join
///   operator: a child merging them. Ordered pairs matter because build
///   (hash), inner (loop) and outer sides have different costs.
///
/// Returns an empty vector iff the plan is complete.
pub fn children(plan: &PartialPlan, ctx: &QueryContext) -> Vec<PartialPlan> {
    let mut out = Vec::new();

    // (1) Specify one unspecified scan (leaves can sit under joins).
    for (root_idx, root) in plan.roots.iter().enumerate() {
        let mut path = Vec::new();
        specify_scans(root, &mut path, &mut |path, rel| {
            let options: &[ScanType] = if ctx.index_ok[rel] {
                &[ScanType::Table, ScanType::Index]
            } else {
                &[ScanType::Table]
            };
            for &scan in options {
                let mut new_plan = plan.clone();
                replace_at(
                    &mut new_plan.roots[root_idx],
                    path,
                    PlanNode::Scan { rel, scan },
                );
                out.push(new_plan);
            }
        });
    }

    // (2) Merge two join-connected roots with each operator.
    let masks: Vec<RelMask> = plan.roots.iter().map(|r| r.rel_mask()).collect();
    for i in 0..plan.roots.len() {
        for j in 0..plan.roots.len() {
            if i == j || !ctx.connected(masks[i], masks[j]) {
                continue;
            }
            for op in JoinOp::ALL {
                let mut roots = Vec::with_capacity(plan.roots.len() - 1);
                for (k, r) in plan.roots.iter().enumerate() {
                    if k != i && k != j {
                        roots.push(r.clone());
                    }
                }
                roots.push(PlanNode::Join {
                    op,
                    left: Box::new(plan.roots[i].clone()),
                    right: Box::new(plan.roots[j].clone()),
                });
                let mut p = PartialPlan { roots };
                p.canonicalize();
                out.push(p);
            }
        }
    }
    out
}

/// Depth-first walk that invokes `f(path, rel)` for every unspecified scan;
/// `path` is the sequence of left(false)/right(true) turns from the root.
fn specify_scans(node: &PlanNode, path: &mut Vec<bool>, f: &mut impl FnMut(&[bool], usize)) {
    match node {
        PlanNode::Scan { rel, scan } => {
            if *scan == ScanType::Unspecified {
                f(path, *rel);
            }
        }
        PlanNode::Join { left, right, .. } => {
            path.push(false);
            specify_scans(left, path, f);
            path.pop();
            path.push(true);
            specify_scans(right, path, f);
            path.pop();
        }
    }
}

fn replace_at(node: &mut PlanNode, path: &[bool], replacement: PlanNode) {
    if path.is_empty() {
        *node = replacement;
        return;
    }
    match node {
        PlanNode::Join { left, right, .. } => {
            if path[0] {
                replace_at(right, &path[1..], replacement);
            } else {
                replace_at(left, &path[1..], replacement);
            }
        }
        PlanNode::Scan { .. } => unreachable!("path descends into a scan"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregate, JoinEdge};
    use neo_storage::{Column, ForeignKey, Table};

    fn db_chain(n: usize) -> Database {
        // Tables t0..t(n-1); t(i).prev -> t(i-1).id
        let mut tables = Vec::new();
        for i in 0..n {
            tables.push(Table::new(
                &format!("t{i}"),
                vec![
                    Column::int("id", vec![1, 2]),
                    Column::int("prev", vec![1, 1]),
                ],
            ));
        }
        let mut fks = Vec::new();
        let mut indexed = Vec::new();
        for i in 0..n {
            indexed.push((i, 0));
            if i > 0 {
                fks.push(ForeignKey {
                    from_table: i,
                    from_col: 1,
                    to_table: i - 1,
                    to_col: 0,
                });
                indexed.push((i, 1));
            }
        }
        Database::build("chain", tables, fks, indexed)
    }

    fn chain_query(n: usize) -> Query {
        Query {
            id: "q".into(),
            family: "f".into(),
            tables: (0..n).collect(),
            joins: (1..n)
                .map(|i| JoinEdge {
                    left_table: i,
                    left_col: 1,
                    right_table: i - 1,
                    right_col: 0,
                })
                .collect(),
            predicates: vec![],
            agg: Aggregate::CountStar,
        }
    }

    #[test]
    fn initial_plan_is_all_unspecified() {
        let q = chain_query(4);
        let p = PartialPlan::initial(&q);
        assert_eq!(p.roots.len(), 4);
        assert!(!p.is_complete());
        assert_eq!(p.rel_mask(), 0b1111);
        assert_eq!(p.describe(), "U(0) | U(1) | U(2) | U(3)");
    }

    #[test]
    fn children_of_initial_state() {
        let db = db_chain(3);
        let q = chain_query(3);
        let ctx = QueryContext::new(&db, &q);
        let p = PartialPlan::initial(&q);
        let kids = children(&p, &ctx);
        // Scans: rel0 (table+index), rel1 (table+index), rel2 (table+index) = 6.
        // Joins: connected ordered pairs (0,1),(1,0),(1,2),(2,1) × 3 ops = 12.
        assert_eq!(kids.len(), 18);
        // All children are strict superplans of p.
        for k in &kids {
            assert!(p.subplan_of(k));
            assert!(!k.subplan_of(&p) || k == &p);
        }
    }

    #[test]
    fn children_respect_no_cross_product() {
        let db = db_chain(3);
        let q = chain_query(3);
        let ctx = QueryContext::new(&db, &q);
        let p = PartialPlan::initial(&q);
        for k in children(&p, &ctx) {
            for root in &k.roots {
                if let PlanNode::Join { left, right, .. } = root {
                    assert!(ctx.connected(left.rel_mask(), right.rel_mask()));
                }
            }
        }
    }

    #[test]
    fn complete_plan_has_no_children() {
        let db = db_chain(2);
        let q = chain_query(2);
        let ctx = QueryContext::new(&db, &q);
        let tree = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Index,
            }),
        };
        let p = PartialPlan::from_tree(tree);
        assert!(p.is_complete());
        assert!(children(&p, &ctx).is_empty());
    }

    #[test]
    fn greedy_descent_reaches_complete_plan() {
        // Repeatedly taking the first child must terminate in a complete plan.
        let db = db_chain(5);
        let q = chain_query(5);
        let ctx = QueryContext::new(&db, &q);
        let mut p = PartialPlan::initial(&q);
        let mut steps = 0;
        while !p.is_complete() {
            let kids = children(&p, &ctx);
            assert!(!kids.is_empty(), "stuck at {}", p.describe());
            p = kids.into_iter().next().unwrap();
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(p.rel_mask(), 0b11111);
        // 5 scans specified + 4 joins = 9 decisions.
        assert_eq!(steps, 9);
    }

    #[test]
    fn unspecified_scan_under_join_can_be_specified() {
        let db = db_chain(2);
        let q = chain_query(2);
        let ctx = QueryContext::new(&db, &q);
        let tree = PlanNode::Join {
            op: JoinOp::Merge,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Unspecified,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Table,
            }),
        };
        let p = PartialPlan::from_tree(tree);
        let kids = children(&p, &ctx);
        // rel0 can become table or index scan; no joins remain.
        assert_eq!(kids.len(), 2);
        assert!(kids.iter().all(|k| k.roots.len() == 1));
    }

    #[test]
    fn subplan_relation_paper_example() {
        // P = [(T(D) ⋈M T(A)) ⋈L I(C)], [U(B)] is a subplan of the complete
        // plan joining B in with any scan choice.
        let sub = PartialPlan {
            roots: vec![
                PlanNode::Join {
                    op: JoinOp::Loop,
                    left: Box::new(PlanNode::Join {
                        op: JoinOp::Merge,
                        left: Box::new(PlanNode::Scan {
                            rel: 3,
                            scan: ScanType::Table,
                        }),
                        right: Box::new(PlanNode::Scan {
                            rel: 0,
                            scan: ScanType::Table,
                        }),
                    }),
                    right: Box::new(PlanNode::Scan {
                        rel: 2,
                        scan: ScanType::Index,
                    }),
                },
                PlanNode::Scan {
                    rel: 1,
                    scan: ScanType::Unspecified,
                },
            ],
        };
        let complete = PartialPlan::from_tree(PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Loop,
                left: Box::new(PlanNode::Join {
                    op: JoinOp::Merge,
                    left: Box::new(PlanNode::Scan {
                        rel: 3,
                        scan: ScanType::Table,
                    }),
                    right: Box::new(PlanNode::Scan {
                        rel: 0,
                        scan: ScanType::Table,
                    }),
                }),
                right: Box::new(PlanNode::Scan {
                    rel: 2,
                    scan: ScanType::Index,
                }),
            }),
            right: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Table,
            }),
        });
        assert!(sub.subplan_of(&complete));
        assert!(!complete.subplan_of(&sub));
    }

    #[test]
    fn subplan_rejects_different_operator() {
        let a = PartialPlan::from_tree(PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Table,
            }),
        });
        let b = PartialPlan::from_tree(PlanNode::Join {
            op: JoinOp::Merge,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Table,
            }),
        });
        assert!(!a.subplan_of(&b));
    }

    #[test]
    fn subtrees_count() {
        let tree = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Join {
                op: JoinOp::Loop,
                left: Box::new(PlanNode::Scan {
                    rel: 1,
                    scan: ScanType::Table,
                }),
                right: Box::new(PlanNode::Scan {
                    rel: 2,
                    scan: ScanType::Index,
                }),
            }),
        };
        assert_eq!(tree.subtrees().len(), 5);
        assert_eq!(tree.num_nodes(), 5);
    }

    #[test]
    fn describe_roundtrip_shape() {
        let tree = PlanNode::Join {
            op: JoinOp::Merge,
            left: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Index,
            }),
        };
        assert_eq!(tree.describe(), "MJ(T(0),I(1))");
    }
}
