//! Column predicates. Neo supports project-select-equijoin-aggregate
//! queries (paper §1); the selection predicates here cover what the JOB,
//! TPC-H and Corp workloads need: integer comparisons/ranges, string
//! equality, and substring containment (the paper's `ILIKE '%…%'`).

use std::fmt;

/// Comparison operator for integer predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A single-table selection predicate. `table`/`col` are database-global
/// table and column ids.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `t.c <op> value`
    IntCmp {
        /// Table id.
        table: usize,
        /// Column id within the table.
        col: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: i64,
    },
    /// `t.c BETWEEN lo AND hi` (inclusive).
    IntBetween {
        /// Table id.
        table: usize,
        /// Column id within the table.
        col: usize,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// `t.c = 'value'` on a string column.
    StrEq {
        /// Table id.
        table: usize,
        /// Column id within the table.
        col: usize,
        /// Literal string.
        value: String,
    },
    /// `t.c ILIKE '%needle%'` (case-insensitive containment).
    StrContains {
        /// Table id.
        table: usize,
        /// Column id within the table.
        col: usize,
        /// Substring searched for.
        needle: String,
    },
}

impl Predicate {
    /// The table this predicate filters.
    pub fn table(&self) -> usize {
        match self {
            Predicate::IntCmp { table, .. }
            | Predicate::IntBetween { table, .. }
            | Predicate::StrEq { table, .. }
            | Predicate::StrContains { table, .. } => *table,
        }
    }

    /// The column this predicate filters (within [`Self::table`]).
    pub fn col(&self) -> usize {
        match self {
            Predicate::IntCmp { col, .. }
            | Predicate::IntBetween { col, .. }
            | Predicate::StrEq { col, .. }
            | Predicate::StrContains { col, .. } => *col,
        }
    }

    /// A stable human-readable rendering (used in query ids and debugging).
    pub fn describe(&self, table_name: &str, col_name: &str) -> String {
        match self {
            Predicate::IntCmp { op, value, .. } => format!("{table_name}.{col_name} {op} {value}"),
            Predicate::IntBetween { lo, hi, .. } => {
                format!("{table_name}.{col_name} BETWEEN {lo} AND {hi}")
            }
            Predicate::StrEq { value, .. } => format!("{table_name}.{col_name} = '{value}'"),
            Predicate::StrContains { needle, .. } => {
                format!("{table_name}.{col_name} ILIKE '%{needle}%'")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Predicate::IntCmp {
            table: 3,
            col: 2,
            op: CmpOp::Lt,
            value: 5,
        };
        assert_eq!(p.table(), 3);
        assert_eq!(p.col(), 2);
    }

    #[test]
    fn describe_renders_sql_like() {
        let p = Predicate::StrContains {
            table: 0,
            col: 1,
            needle: "love".into(),
        };
        assert_eq!(
            p.describe("keyword", "keyword"),
            "keyword.keyword ILIKE '%love%'"
        );
        let q = Predicate::IntBetween {
            table: 0,
            col: 0,
            lo: 1990,
            hi: 2000,
        };
        assert_eq!(
            q.describe("title", "production_year"),
            "title.production_year BETWEEN 1990 AND 2000"
        );
    }
}
