//! Plan-space structure tests: children-count arithmetic, search-space
//! reachability, and EXPLAIN rendering across whole workloads.

use neo_query::{children, explain, JoinOp, PartialPlan, PlanNode, QueryContext, ScanType};
use neo_storage::datagen::{corp, imdb, tpch};

/// At the initial state, the number of children follows the closed form:
/// scan specifications (1 or 2 per relation, by index legality) plus
/// `6 × (join edges between distinct relation pairs)` (2 orientations × 3
/// operators).
#[test]
fn initial_children_count_matches_closed_form() {
    let db = imdb::generate(0.02, 3);
    let wl = neo_query::workload::job::generate(&db, 3);
    for q in wl.queries.iter().take(20) {
        let ctx = QueryContext::new(&db, q);
        let kids = children(&PartialPlan::initial(q), &ctx);
        let scans: usize = (0..q.num_relations())
            .map(|r| if ctx.index_ok[r] { 2 } else { 1 })
            .sum();
        // Distinct connected relation pairs (multiple edges between the
        // same pair still yield one set of merge children).
        let mut pairs = std::collections::HashSet::new();
        for a in 0..q.num_relations() {
            for b in (a + 1)..q.num_relations() {
                if ctx.connected(1 << a, 1 << b) {
                    pairs.insert((a, b));
                }
            }
        }
        let expect = scans + pairs.len() * 6;
        assert_eq!(kids.len(), expect, "query {}", q.id);
    }
}

/// Every join operator and scan type is reachable somewhere in the search
/// space of a moderately-sized query.
#[test]
fn search_space_reaches_all_operator_choices() {
    let db = imdb::generate(0.02, 3);
    let wl = neo_query::workload::job::generate(&db, 3);
    let q = wl.queries.iter().find(|q| q.num_relations() == 5).unwrap();
    let ctx = QueryContext::new(&db, q);
    let kids = children(&PartialPlan::initial(q), &ctx);
    let mut ops = std::collections::HashSet::new();
    let mut scans = std::collections::HashSet::new();
    for k in &kids {
        for root in &k.roots {
            match root {
                PlanNode::Join { op, .. } => {
                    ops.insert(*op);
                }
                PlanNode::Scan { scan, .. } => {
                    scans.insert(*scan);
                }
            }
        }
    }
    assert_eq!(ops.len(), 3, "all join operators reachable");
    assert!(scans.contains(&ScanType::Table));
    assert!(scans.contains(&ScanType::Index));
}

/// Bushy shapes are reachable: some descendant state joins two non-leaf
/// trees.
#[test]
fn bushy_plans_are_reachable() {
    let db = imdb::generate(0.02, 3);
    let wl = neo_query::workload::job::generate(&db, 3);
    let q = wl.queries.iter().find(|q| q.num_relations() >= 5).unwrap();
    let ctx = QueryContext::new(&db, q);
    // Merge two disjoint pairs first, then look for a child joining them.
    let mut state = PartialPlan::initial(q);
    let mut merges = 0;
    'outer: while merges < 2 {
        for k in children(&state, &ctx) {
            let joins: usize = k
                .roots
                .iter()
                .filter(|r| matches!(r, PlanNode::Join { .. }))
                .count();
            if joins > merges {
                state = k;
                merges = joins;
                continue 'outer;
            }
        }
        break;
    }
    if merges < 2 {
        return; // join graph is a star around one hub; bushy join of two
                // internal trees may be impossible — acceptable.
    }
    let bushy_child = children(&state, &ctx).into_iter().find(|k| {
        k.roots.iter().any(|r| {
            matches!(
                r,
                PlanNode::Join { left, right, .. }
                    if matches!(**left, PlanNode::Join { .. })
                        && matches!(**right, PlanNode::Join { .. })
            )
        })
    });
    // Only assert when the two merged pairs are join-connected.
    if let Some(k) = bushy_child {
        assert!(k.roots.len() < state.roots.len());
    }
}

/// EXPLAIN renders every native-optimizable query without panicking and
/// names every member table.
#[test]
fn explain_covers_all_workloads() {
    let imdb_db = imdb::generate(0.02, 3);
    let tpch_db = tpch::generate(0.05, 3);
    let corp_db = corp::generate(0.01, 3);
    let cases = vec![
        (
            &imdb_db,
            neo_query::workload::job::generate(&imdb_db, 3).queries,
        ),
        (
            &tpch_db,
            neo_query::workload::tpch::generate(&tpch_db, 3).queries,
        ),
        (
            &corp_db,
            neo_query::workload::corp::generate(&corp_db, 3, 20).queries,
        ),
    ];
    for (db, queries) in cases {
        for q in queries.iter().take(10) {
            // Left-deep hash plan via the children walk.
            let ctx = QueryContext::new(db, q);
            let mut p = PartialPlan::initial(q);
            while !p.is_complete() {
                let kids = children(&p, &ctx);
                let pick = kids
                    .iter()
                    .position(|k| {
                        k.roots.iter().all(|r| match r {
                            PlanNode::Scan { scan, .. } => *scan != ScanType::Index,
                            PlanNode::Join { op, .. } => *op == JoinOp::Hash,
                        })
                    })
                    .unwrap_or(0);
                p = kids.into_iter().nth(pick).unwrap();
            }
            let text = explain(db, q, p.as_complete().unwrap());
            for &t in &q.tables {
                assert!(
                    text.contains(&db.tables[t].name),
                    "explain missing table {} for {}:\n{text}",
                    db.tables[t].name,
                    q.id
                );
            }
            assert!(
                !text.contains("cross"),
                "unexpected cross join in {}:\n{text}",
                q.id
            );
        }
    }
}

/// `to_sql` round-trips recognizable structure for every workload query.
#[test]
fn to_sql_renders_all_queries() {
    let db = imdb::generate(0.02, 3);
    let wl = neo_query::workload::job::generate(&db, 3);
    for q in &wl.queries {
        let sql = q.to_sql(&db);
        assert!(sql.starts_with("SELECT count(*) FROM"));
        assert!(sql.contains("WHERE"));
        assert!(sql.ends_with(';'));
    }
}
