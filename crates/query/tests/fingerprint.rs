//! Property tests for canonical query fingerprints (the `neo-serve` plan
//! cache key): invariance under every reordering the canonicalization
//! claims to absorb, and sensitivity to parameter perturbation, across the
//! real JOB-like workload.

use neo_query::workload::job;
use neo_query::{fingerprint, Predicate, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// One shared workload for all cases — IMDB generation is the expensive
/// part, and the properties only need query variety, not db variety.
fn queries() -> &'static Vec<Query> {
    static QUERIES: OnceLock<Vec<Query>> = OnceLock::new();
    QUERIES.get_or_init(|| {
        let db = neo_storage::datagen::imdb::generate(0.02, 7);
        job::generate(&db, 7).queries
    })
}

/// Applies a seed-determined reordering of the join list, per-edge endpoint
/// swaps, and a reordering of the predicate list — all semantics-preserving.
fn scramble(q: &Query, seed: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = q.clone();
    out.joins.shuffle(&mut rng);
    for e in &mut out.joins {
        if rng.gen_range(0..2) == 1 {
            std::mem::swap(&mut e.left_table, &mut e.right_table);
            std::mem::swap(&mut e.left_col, &mut e.right_col);
        }
    }
    out.predicates.shuffle(&mut rng);
    out.id = format!("{}-scrambled", q.id);
    out
}

/// Perturbs one predicate constant (the serve-bench "parameterized query"
/// transformation); returns `None` when the query has no predicates.
fn perturb(q: &Query, seed: u64) -> Option<Query> {
    if q.predicates.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = q.clone();
    let i = rng.gen_range(0..out.predicates.len());
    match &mut out.predicates[i] {
        Predicate::IntCmp { value, .. } => *value += 1,
        Predicate::IntBetween { hi, .. } => *hi += 1,
        Predicate::StrEq { value, .. } => value.push('~'),
        Predicate::StrContains { needle, .. } => needle.push('~'),
    }
    Some(out)
}

/// The canonical structural form of a query, independent of the digest:
/// sorted tables, sorted normalized join edges, sorted predicate
/// renderings, and the aggregate. Used to adjudicate digest collisions.
fn canonical(q: &Query) -> (Vec<usize>, Vec<[usize; 4]>, Vec<String>, String) {
    let mut edges: Vec<[usize; 4]> = q
        .joins
        .iter()
        .map(|e| {
            let l = [e.left_table, e.left_col];
            let r = [e.right_table, e.right_col];
            let (lo, hi) = if l <= r { (l, r) } else { (r, l) };
            [lo[0], lo[1], hi[0], hi[1]]
        })
        .collect();
    edges.sort_unstable();
    let mut preds: Vec<String> = q.predicates.iter().map(|p| format!("{p:?}")).collect();
    preds.sort_unstable();
    (q.tables.clone(), edges, preds, format!("{:?}", q.agg))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// ISSUE 2 satellite: fingerprints are invariant under predicate /
    /// join-list reordering (and endpoint swaps, and id relabeling).
    #[test]
    fn fingerprint_invariant_under_reordering(qi in 0usize..113, seed in 0u64..1_000_000) {
        let qs = queries();
        let q = &qs[qi % qs.len()];
        let scrambled = scramble(q, seed);
        prop_assert_eq!(
            fingerprint(q),
            fingerprint(&scrambled),
            "query {} seed {}",
            &q.id,
            seed
        );
    }

    /// Perturbing any predicate constant must change the fingerprint —
    /// parameterized variants must not hit each other's cache entries.
    #[test]
    fn fingerprint_sensitive_to_constant_perturbation(qi in 0usize..113, seed in 0u64..1_000_000) {
        let qs = queries();
        let q = &qs[qi % qs.len()];
        if let Some(p) = perturb(q, seed) {
            prop_assert_ne!(fingerprint(q), fingerprint(&p), "query {} seed {}", &q.id, seed);
        }
    }

    /// Structurally distinct workload queries never collide (113 queries,
    /// all pairs). Equal digests are only acceptable between queries whose
    /// *canonical structure* — not their fingerprints, which would be
    /// circular — is identical (duplicate generation).
    #[test]
    fn fingerprints_distinct_across_workload(_case in 0u64..1) {
        let qs = queries();
        let mut seen: std::collections::HashMap<_, &Query> = std::collections::HashMap::new();
        for q in qs.iter() {
            if let Some(prev) = seen.insert(fingerprint(q), q) {
                prop_assert_eq!(
                    canonical(prev),
                    canonical(q),
                    "digest collision between structurally different {} and {}",
                    &prev.id,
                    &q.id
                );
            }
        }
    }
}
