//! Experience transport (ISSUE 10): the wire half of the learning loop.
//!
//! In a single-process fleet every node pushes into one shared
//! [`ExperienceSink`] `Arc` and the leader's trainer drains it. Across OS
//! processes there is no shared `Arc` — a follower's observations must be
//! *shipped* to the leader. This module defines that seam without naming
//! a transport:
//!
//! * [`ExperienceTransport`] — "deliver these records to the leader";
//!   implemented over TCP by `neo-gateway` and in-process by
//!   [`LocalTransport`] (tests, single-process fleets);
//! * [`ExperienceRelay`] — a background thread that periodically drains a
//!   node-local sink and ships the batch, with bounded requeue on
//!   transient failure so a leader restart loses at most one in-flight
//!   batch.
//!
//! The leader side needs nothing new: shipped records arrive through the
//! same `report-execution` path local workers use, land in the leader's
//! own sink, and the trainer cannot tell the difference.

use crate::sink::{ExperienceRecord, ExperienceSink};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Delivers a batch of experience records to wherever the fleet's
/// trainer drains. Implementations must be safe to call from a
/// background thread and should return `Err` only for *transport*
/// failures (connection refused, broken pipe) — per-record rejection
/// (non-finite latency) happens at the receiving sink.
pub trait ExperienceTransport: Send + Sync {
    /// Ships `records`, returning how many the far side accepted.
    fn ship(&self, records: &[ExperienceRecord]) -> io::Result<usize>;
}

/// The in-process transport: "shipping" is pushing straight into the
/// destination sink. Single-process fleets and tests use this so the
/// relay machinery is exercised identically with and without a socket.
pub struct LocalTransport {
    dest: Arc<ExperienceSink>,
}

impl LocalTransport {
    /// A transport delivering into `dest`.
    pub fn new(dest: Arc<ExperienceSink>) -> Self {
        LocalTransport { dest }
    }
}

impl ExperienceTransport for LocalTransport {
    fn ship(&self, records: &[ExperienceRecord]) -> io::Result<usize> {
        for r in records {
            self.dest.push(r.clone());
        }
        Ok(records.len())
    }
}

/// Counters published by a running [`ExperienceRelay`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Records successfully shipped (as counted by the transport).
    pub shipped: u64,
    /// Ship attempts that failed at the transport layer.
    pub failed_ships: u64,
    /// Records dropped because the requeue buffer was full.
    pub dropped: u64,
}

/// Shared state between the relay thread and its handle.
struct RelayShared {
    source: Arc<ExperienceSink>,
    transport: Arc<dyn ExperienceTransport>,
    stop: AtomicBool,
    shipped: AtomicU64,
    failed_ships: AtomicU64,
    dropped: AtomicU64,
    /// Cap on records held back across failed ships; beyond it the
    /// oldest are dropped (the replay buffer upstream is lossy-bounded
    /// too, so unbounded buffering here would only hide an outage).
    requeue_cap: usize,
}

/// A background thread draining a node-local [`ExperienceSink`] and
/// shipping batches through an [`ExperienceTransport`] — the follower
/// half of the cross-process learning loop. Dropping the handle stops
/// and joins the thread after one final drain-and-ship.
pub struct ExperienceRelay {
    shared: Arc<RelayShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ExperienceRelay {
    /// Default cap on records requeued across transport failures.
    pub const DEFAULT_REQUEUE_CAP: usize = 4096;

    /// Spawns the relay: every `interval` it drains `source` and ships
    /// the batch through `transport`.
    pub fn spawn(
        source: Arc<ExperienceSink>,
        transport: Arc<dyn ExperienceTransport>,
        interval: Duration,
    ) -> Self {
        let shared = Arc::new(RelayShared {
            source,
            transport,
            stop: AtomicBool::new(false),
            shipped: AtomicU64::new(0),
            failed_ships: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            requeue_cap: Self::DEFAULT_REQUEUE_CAP,
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("experience-relay".into())
            .spawn(move || {
                let mut held: Vec<ExperienceRecord> = Vec::new();
                loop {
                    let stopping = worker.stop.load(Ordering::Acquire);
                    held.extend(worker.source.drain());
                    if held.len() > worker.requeue_cap {
                        let excess = held.len() - worker.requeue_cap;
                        held.drain(..excess);
                        worker.dropped.fetch_add(excess as u64, Ordering::Release);
                    }
                    if !held.is_empty() {
                        match worker.transport.ship(&held) {
                            Ok(n) => {
                                worker.shipped.fetch_add(n as u64, Ordering::Release);
                                held.clear();
                            }
                            Err(_) => {
                                // Keep the batch; retried next tick.
                                worker.failed_ships.fetch_add(1, Ordering::Release);
                            }
                        }
                    }
                    if stopping {
                        break;
                    }
                    std::thread::park_timeout(interval);
                }
            })
            .expect("spawn experience-relay thread");
        ExperienceRelay {
            shared,
            thread: Some(thread),
        }
    }

    /// Current relay counters.
    pub fn stats(&self) -> RelayStats {
        RelayStats {
            shipped: self.shared.shipped.load(Ordering::Acquire),
            failed_ships: self.shared.failed_ships.load(Ordering::Acquire),
            dropped: self.shared.dropped.load(Ordering::Acquire),
        }
    }

    /// Wakes the relay thread for an immediate drain-and-ship.
    pub fn kick(&self) {
        if let Some(t) = &self.thread {
            t.thread().unpark();
        }
    }

    /// Stops the thread (after one final drain-and-ship) and joins it.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for ExperienceRelay {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{fingerprint, Aggregate, Query};
    use std::sync::Mutex;

    fn record(latency_ms: f64) -> ExperienceRecord {
        let query = Query {
            id: "q".into(),
            family: "t".into(),
            tables: vec![0],
            joins: vec![],
            predicates: vec![],
            agg: Aggregate::CountStar,
        };
        ExperienceRecord {
            fingerprint: fingerprint(&query),
            plan: neo_query::PlanNode::Scan {
                rel: 0,
                scan: neo_query::ScanType::Table,
            },
            query,
            latency_ms,
            predicted_ms: None,
        }
    }

    #[test]
    fn local_transport_delivers_into_destination_sink() {
        let dest = Arc::new(ExperienceSink::default());
        let t = LocalTransport::new(Arc::clone(&dest));
        assert_eq!(t.ship(&[record(1.0), record(2.0)]).unwrap(), 2);
        assert_eq!(dest.pending(), 2);
    }

    #[test]
    fn relay_drains_source_and_ships() {
        let source = Arc::new(ExperienceSink::default());
        let dest = Arc::new(ExperienceSink::default());
        let relay = ExperienceRelay::spawn(
            Arc::clone(&source),
            Arc::new(LocalTransport::new(Arc::clone(&dest))),
            Duration::from_millis(5),
        );
        for i in 0..10 {
            source.push(record(i as f64));
        }
        relay.kick();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dest.pending() < 10 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(dest.pending(), 10);
        assert_eq!(relay.stats().shipped, 10);
        assert_eq!(source.pending(), 0);
    }

    /// A transport that fails its first N ships, then recovers.
    struct Flaky {
        dest: Arc<ExperienceSink>,
        failures_left: Mutex<u32>,
    }

    impl ExperienceTransport for Flaky {
        fn ship(&self, records: &[ExperienceRecord]) -> io::Result<usize> {
            let mut left = self.failures_left.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "down"));
            }
            for r in records {
                self.dest.push(r.clone());
            }
            Ok(records.len())
        }
    }

    #[test]
    fn relay_requeues_across_transport_failures() {
        let source = Arc::new(ExperienceSink::default());
        let dest = Arc::new(ExperienceSink::default());
        let relay = ExperienceRelay::spawn(
            Arc::clone(&source),
            Arc::new(Flaky {
                dest: Arc::clone(&dest),
                failures_left: Mutex::new(2),
            }),
            Duration::from_millis(2),
        );
        for i in 0..5 {
            source.push(record(i as f64));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dest.pending() < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(dest.pending(), 5, "records survive transient failures");
        let stats = relay.stats();
        assert!(stats.failed_ships >= 2);
        assert_eq!(stats.shipped, 5);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn final_drain_ships_on_stop() {
        let source = Arc::new(ExperienceSink::default());
        let dest = Arc::new(ExperienceSink::default());
        let mut relay = ExperienceRelay::spawn(
            Arc::clone(&source),
            Arc::new(LocalTransport::new(Arc::clone(&dest))),
            Duration::from_secs(3600), // never ticks on its own
        );
        source.push(record(1.0));
        relay.stop();
        assert_eq!(dest.pending(), 1, "stop performs a final drain-and-ship");
    }
}
