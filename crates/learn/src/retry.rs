//! Bounded retry with exponential backoff + jitter for transient store
//! I/O.
//!
//! Every store-facing path in the fleet — follower sync, leader lease
//! renewal/claim, trainer checkpoint persistence — goes through a
//! [`RetryPolicy`]: a transient hiccup (the chaos layer's injected
//! faults, a shared-filesystem blip, a momentary lease-file race) must
//! not instantly veto a trained generation or silently skip a tick. The
//! policy is deliberately small: bounded attempts, exponential delays
//! capped at a ceiling, and seeded jitter (the vendored `rand` shim) so
//! two nodes that fail together don't retry in lockstep.
//!
//! Retries only make sense for operations that are safe to re-issue.
//! The store operations wrapped here all are: publishes are serialized
//! and monotonic (a duplicate attempt gets a clean regression error, not
//! a fork), lease acquisition is a serialized read-modify-write, and
//! sync is a read. Non-transient errors still surface after the final
//! attempt — the caller's failure handling (health counters, persist
//! veto) runs only once the policy is exhausted.

use neo_obs::{Counter, MetricsRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::time::Duration;

/// Bounded exponential backoff: `attempts` tries total, sleeping
/// `base_delay_ms * 2^n` (capped at `max_delay_ms`) plus jitter between
/// consecutive tries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to ≥ 1).
    pub attempts: u32,
    /// Backoff base, milliseconds (delay before the first retry).
    pub base_delay_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_delay_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `[1 − jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
    /// Seed for the jitter stream (deterministic per policy value, so a
    /// fixed-seed chaos run retries on a reproducible schedule).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay_ms: 2,
            max_delay_ms: 50,
            jitter: 0.5,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The no-retry policy: exactly one attempt, no sleeping — the
    /// pre-chaos behavior, for callers that do their own scheduling.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// The delay before retry number `retry` (0-based), jittered by
    /// `rng`.
    fn delay(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(self.max_delay_ms);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = if jitter > 0.0 {
            1.0 - jitter / 2.0 + rng.gen_range(0.0..jitter)
        } else {
            1.0
        };
        Duration::from_micros((exp as f64 * 1000.0 * factor) as u64)
    }

    /// Runs `op` until it succeeds or the attempt budget is spent,
    /// recording every outcome in `stats`. Returns the first success or
    /// the *last* error (earlier errors were, by definition, transient
    /// enough to retry past).
    pub fn run<T>(
        &self,
        stats: &RetryStats,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for attempt in 0..attempts {
            stats.attempts.inc();
            match op() {
                Ok(v) => {
                    if attempt > 0 {
                        stats.recoveries.inc();
                    }
                    return Ok(v);
                }
                Err(e) if attempt + 1 == attempts => {
                    stats.exhausted.inc();
                    return Err(e);
                }
                Err(_) => {
                    stats.retries.inc();
                    std::thread::sleep(self.delay(attempt, &mut rng));
                }
            }
        }
        unreachable!("attempts >= 1: the loop returns on its last iteration");
    }
}

/// Shared retry accounting (atomics: updated from tick threads and the
/// trainer, read by benches and health reporting).
#[derive(Debug, Default)]
pub struct RetryStats {
    // neo-obs counters so a metrics registry can share the live atomics
    // (see `bind_metrics`); `snapshot()` remains the legacy view.
    attempts: Counter,
    retries: Counter,
    recoveries: Counter,
    exhausted: Counter,
}

impl RetryStats {
    /// A zeroed stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the four counters in `registry` under
    /// `<prefix>_retry_*_total` names, sharing the live atomics.
    pub fn bind_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}_retry_attempts_total"), &self.attempts);
        registry.bind_counter(&format!("{prefix}_retry_retries_total"), &self.retries);
        registry.bind_counter(
            &format!("{prefix}_retry_recoveries_total"),
            &self.recoveries,
        );
        registry.bind_counter(&format!("{prefix}_retry_exhausted_total"), &self.exhausted);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> RetrySnapshot {
        RetrySnapshot {
            attempts: self.attempts.get(),
            retries: self.retries.get(),
            recoveries: self.recoveries.get(),
            exhausted: self.exhausted.get(),
        }
    }
}

/// A point-in-time view of a [`RetryStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetrySnapshot {
    /// Individual operation attempts (first tries included).
    pub attempts: u64,
    /// Attempts that failed with budget remaining (followed by a backoff
    /// sleep and another attempt).
    pub retries: u64,
    /// Operations that succeeded on a retry — transient faults absorbed
    /// by the policy.
    pub recoveries: u64,
    /// Operations whose final attempt failed — the error the caller saw.
    pub exhausted: u64,
}

impl RetrySnapshot {
    /// Counter-wise difference (`self − earlier`), for windowed views.
    pub fn since(&self, earlier: &RetrySnapshot) -> RetrySnapshot {
        RetrySnapshot {
            attempts: self.attempts - earlier.attempts,
            retries: self.retries - earlier.retries,
            recoveries: self.recoveries - earlier.recoveries,
            exhausted: self.exhausted - earlier.exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn flaky(fail_first: u32) -> impl FnMut() -> io::Result<u32> {
        let calls = AtomicU32::new(0);
        move || {
            let n = calls.fetch_add(1, Ordering::Relaxed);
            if n < fail_first {
                Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
            } else {
                Ok(n)
            }
        }
    }

    #[test]
    fn first_try_success_records_no_retries() {
        let stats = RetryStats::new();
        let v = RetryPolicy::default().run(&stats, flaky(0)).unwrap();
        assert_eq!(v, 0);
        let s = stats.snapshot();
        assert_eq!(
            (s.attempts, s.retries, s.recoveries, s.exhausted),
            (1, 0, 0, 0)
        );
    }

    #[test]
    fn transient_failures_are_absorbed_and_counted() {
        let stats = RetryStats::new();
        let policy = RetryPolicy {
            base_delay_ms: 0,
            ..Default::default()
        };
        let v = policy.run(&stats, flaky(2)).unwrap();
        assert_eq!(v, 2);
        let s = stats.snapshot();
        assert_eq!(
            (s.attempts, s.retries, s.recoveries, s.exhausted),
            (3, 2, 1, 0)
        );
    }

    #[test]
    fn exhaustion_returns_the_last_error() {
        let stats = RetryStats::new();
        let policy = RetryPolicy {
            attempts: 3,
            base_delay_ms: 0,
            ..Default::default()
        };
        let err = policy.run(&stats, flaky(99)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let s = stats.snapshot();
        assert_eq!(
            (s.attempts, s.retries, s.recoveries, s.exhausted),
            (3, 2, 0, 1)
        );
    }

    #[test]
    fn none_policy_is_a_single_attempt() {
        let stats = RetryStats::new();
        let err = RetryPolicy::none().run(&stats, flaky(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(stats.snapshot().attempts, 1);
        assert_eq!(stats.snapshot().exhausted, 1);
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay_ms: 2,
            max_delay_ms: 10,
            jitter: 0.0,
            seed: 7,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let delays: Vec<u128> = (0..5)
            .map(|n| policy.delay(n, &mut rng).as_millis())
            .collect();
        assert_eq!(delays, vec![2, 4, 8, 10, 10]);
    }

    #[test]
    fn jitter_stays_within_the_declared_band() {
        let policy = RetryPolicy {
            attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 10,
            jitter: 0.5,
            seed: 11,
        };
        let mut rng = StdRng::seed_from_u64(11);
        for n in 0..100 {
            let d = policy.delay(n % 4, &mut rng).as_secs_f64() * 1e3;
            assert!((7.5..=12.5).contains(&d), "delay {d} ms out of band");
        }
    }
}
