//! The experience sink: where serving workers drop execution observations.
//!
//! Serving threads call [`ExperienceSink::push`] (via the
//! [`neo_serve::ExecutionFeedback`] hook) after a chosen plan executes;
//! the background trainer calls [`ExperienceSink::drain`] at the start of
//! each generation. The sink is sharded by fingerprint — the same
//! multiplicative shard selector the plan cache uses — so concurrent
//! pushes from different queries almost never contend on the same mutex,
//! and each push holds its shard lock only for one `Vec::push`.
//!
//! The sink is a staging buffer, not a store: retention policy (best plan
//! per query, bounded runner-up tail) lives in [`crate::replay`].

use neo_query::{PlanNode, Query, QueryFingerprint};
use neo_serve::ExecutionFeedback;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default sink shard count (matches the plan cache's default).
pub const DEFAULT_SINK_SHARDS: usize = 16;

/// One observed execution: the query, the plan the service chose for it,
/// and the measured latency. Equality is structural (used by the wire
/// codec's round-trip tests).
#[derive(Clone, Debug, PartialEq)]
pub struct ExperienceRecord {
    /// Canonical structural fingerprint of the query (the replay key).
    pub fingerprint: QueryFingerprint,
    /// The executed query.
    pub query: Query,
    /// The executed plan.
    pub plan: PlanNode,
    /// Observed execution latency, milliseconds.
    pub latency_ms: f64,
    /// The optimizer's own predicted latency for this plan at optimize
    /// time (ms), when it searched rather than hit the cache. Replay
    /// retention prioritizes the runner-up tail by the record's regret
    /// `|latency_ms − predicted_ms|`; records without a prediction carry
    /// maximal priority (their surprise is unknown, so they are the last
    /// to be evicted).
    pub predicted_ms: Option<f64>,
}

/// A sharded, low-contention staging buffer of execution observations.
pub struct ExperienceSink {
    shards: Vec<Mutex<Vec<ExperienceRecord>>>,
    pushed: AtomicU64,
    drained: AtomicU64,
    rejected: AtomicU64,
}

impl Default for ExperienceSink {
    fn default() -> Self {
        Self::new(DEFAULT_SINK_SHARDS)
    }
}

impl ExperienceSink {
    /// Creates a sink with `shards` independently locked shards (≥ 1).
    pub fn new(shards: usize) -> Self {
        ExperienceSink {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            pushed: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Stages one observation. Lock scope: a single `Vec::push`.
    ///
    /// Latencies arrive from *external* measurement (unlike the offline
    /// runner's deterministic latency model), so a non-finite or negative
    /// value is rejected here at the boundary: one NaN target would
    /// otherwise poison the next background retrain and hot-publish a
    /// NaN-weighted model service-wide.
    pub fn push(&self, record: ExperienceRecord) {
        if !record.latency_ms.is_finite() || record.latency_ms < 0.0 {
            self.rejected.fetch_add(1, Ordering::Release);
            return;
        }
        let shard = record.fingerprint.shard(self.shards.len());
        // Poison-recover: the shard holds pure data (a Vec of records) and
        // the critical section is a single push — a serving worker that
        // panicked here cannot have left the shard torn, and its panic
        // must not cascade into every other worker sharing the shard.
        self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
        self.pushed.fetch_add(1, Ordering::Release);
    }

    /// Observations rejected for carrying a non-finite or negative
    /// latency.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Acquire)
    }

    /// Observations staged and not yet drained.
    pub fn pending(&self) -> u64 {
        self.pushed
            .load(Ordering::Acquire)
            .saturating_sub(self.drained.load(Ordering::Acquire))
    }

    /// Total observations ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Acquire)
    }

    /// Takes every staged observation (shard-major order), leaving the
    /// sink empty. Called by the trainer once per generation.
    pub fn drain(&self) -> Vec<ExperienceRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut guard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            out.append(&mut guard);
        }
        self.drained.fetch_add(out.len() as u64, Ordering::Release);
        out
    }
}

impl ExecutionFeedback for ExperienceSink {
    fn record(
        &self,
        fp: QueryFingerprint,
        query: &Query,
        plan: &PlanNode,
        latency_ms: f64,
        predicted_ms: Option<f64>,
    ) {
        self.push(ExperienceRecord {
            fingerprint: fp,
            query: query.clone(),
            plan: plan.clone(),
            latency_ms,
            predicted_ms,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::ScanType;

    fn record(key: u128, latency_ms: f64) -> ExperienceRecord {
        ExperienceRecord {
            fingerprint: QueryFingerprint(key),
            query: Query {
                id: format!("q{key}"),
                family: "t".into(),
                tables: vec![0],
                joins: vec![],
                predicates: vec![],
                agg: Default::default(),
            },
            plan: PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            },
            latency_ms,
            predicted_ms: None,
        }
    }

    #[test]
    fn push_drain_roundtrip_and_counters() {
        let sink = ExperienceSink::new(4);
        assert_eq!(sink.pending(), 0);
        for i in 0..10u128 {
            sink.push(record(i * 0x9E37_79B9_7F4A_7C15, i as f64));
        }
        assert_eq!(sink.pending(), 10);
        assert_eq!(sink.pushed(), 10);
        let drained = sink.drain();
        assert_eq!(drained.len(), 10);
        assert_eq!(sink.pending(), 0);
        assert!(sink.drain().is_empty(), "drain empties the sink");
        // Every pushed latency came back exactly once.
        let mut lats: Vec<f64> = drained.iter().map(|r| r.latency_ms).collect();
        lats.sort_by(f64::total_cmp);
        assert_eq!(lats, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn non_finite_or_negative_latencies_are_rejected_at_the_boundary() {
        let sink = ExperienceSink::new(2);
        sink.push(record(1, f64::NAN));
        sink.push(record(2, f64::INFINITY));
        sink.push(record(3, -1.0));
        sink.push(record(4, 5.0));
        assert_eq!(sink.pending(), 1, "only the finite latency is staged");
        assert_eq!(sink.rejected(), 3);
        let drained = sink.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].latency_ms, 5.0);
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let sink = std::sync::Arc::new(ExperienceSink::new(8));
        let handles: Vec<_> = (0..4u128)
            .map(|t| {
                let sink = std::sync::Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..100u128 {
                        sink.push(record(t * 10_000 + i, 1.0));
                    }
                })
            })
            .collect();
        for h in handles {
            neo_serve::join_named(h);
        }
        assert_eq!(sink.pending(), 400);
        assert_eq!(sink.drain().len(), 400);
    }
}
