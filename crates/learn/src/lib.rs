#![warn(missing_docs)]
//! # neo-learn — closed-loop online learning for the serving layer
//!
//! Neo's defining contribution (paper Fig. 1, §4) is the runtime loop:
//! execute the chosen plan, record its latency as experience, retrain the
//! value network, and redeploy it — the optimizer improves *while
//! serving*. This crate is that bridge between the offline runner
//! ([`neo::Neo::run_episode`]) and the concurrent service
//! ([`neo_serve::OptimizerService`]):
//!
//! * [`sink::ExperienceSink`] — sharded, low-contention staging of
//!   `(fingerprint, query, plan, latency)` observations pushed by serving
//!   workers after execution (it implements
//!   [`neo_serve::ExecutionFeedback`]);
//! * [`replay::ReplayBuffer`] — capacity-bounded retention: the best plan
//!   ever observed per query plus a bounded tail of recent runner-ups
//!   (paper §4.2's experience set, kept O(working set));
//! * [`trainer::BackgroundTrainer`] — a dedicated thread that snapshots
//!   the buffer, trains a **clone** of the served network with the same
//!   minibatch steps the runner uses ([`neo::TrainingSet`]), checkpoints
//!   it ([`neo::ValueNet::save`]), and hot-publishes it through the
//!   service's swap-on-read model slot. In-flight searches finish on the
//!   network they started with; cached plans of the previous generation
//!   are demoted to warm-start search seeds, not discarded.
//!
//! ```no_run
//! use neo::{Featurization, Featurizer, NetConfig, ValueNet};
//! use neo_learn::{BackgroundTrainer, ExperienceSink, ReplayConfig, TrainerConfig};
//! use neo_serve::{OptimizerService, ServeConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(neo_storage::datagen::imdb::generate(0.05, 42));
//! let workload = neo_query::workload::job::generate(&db, 42);
//! let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
//! let net = Arc::new(ValueNet::new(
//!     featurizer.query_dim(),
//!     featurizer.plan_channels(),
//!     NetConfig::default(),
//!     42,
//! ));
//! let service = Arc::new(OptimizerService::new(
//!     db, featurizer, net, ServeConfig::default(),
//! ));
//! let sink = Arc::new(ExperienceSink::default());
//! service.set_feedback(Arc::clone(&sink) as _);
//! let trainer = BackgroundTrainer::spawn(
//!     Arc::clone(&service),
//!     Arc::clone(&sink),
//!     ReplayConfig::default(),
//!     TrainerConfig { auto: true, ..Default::default() },
//! );
//! for q in &workload.queries {
//!     let outcome = service.optimize(q);
//!     let latency_ms = 12.3; // measured by the execution engine
//!     service.report_execution(q, &outcome.plan, latency_ms);
//! }
//! drop(trainer); // stops the trainer thread and joins it
//! ```

pub mod replay;
pub mod retry;
pub mod sink;
pub mod trainer;
pub mod transport;

pub use replay::{canonical_id, ReplayBuffer, ReplayConfig};
pub use retry::{RetryPolicy, RetrySnapshot, RetryStats};
pub use sink::{ExperienceRecord, ExperienceSink, DEFAULT_SINK_SHARDS};
pub use trainer::{BackgroundTrainer, GenerationObserver, GenerationStats, TrainerConfig};
pub use transport::{ExperienceRelay, ExperienceTransport, LocalTransport, RelayStats};
