//! The background trainer: the thread that closes the paper's Fig. 1 loop
//! inside a live service.
//!
//! Each **generation** it (1) drains the [`ExperienceSink`] into the
//! [`ReplayBuffer`], (2) snapshots the buffer into a deterministic
//! training view, (3) clones the currently served [`ValueNet`] and runs
//! shuffled minibatch Adam epochs on the clone ([`neo::TrainingSet`], the
//! same steps the offline runner uses) while workers keep serving on the
//! original, (4) checkpoints the trained clone
//! ([`neo::ValueNet::save`], optionally to disk), and (5) publishes it via
//! [`OptimizerService::publish_model`] — an atomic slot swap plus a cache
//! epoch bump that demotes cached plans to warm-start search seeds.
//! Serving never blocks on training: the only shared state touched while
//! training is the snapshot copy, and the swap itself is a pointer store.
//!
//! Generations run on demand ([`BackgroundTrainer::request_generation`])
//! and — when [`TrainerConfig::auto`] is set — automatically whenever
//! enough new experience has accumulated. Training is deterministic per
//! generation given the same replay content: the minibatch RNG is seeded
//! from `cfg.seed ^ generation`.

use crate::replay::{ReplayBuffer, ReplayConfig};
use crate::retry::{RetryPolicy, RetrySnapshot, RetryStats};
use crate::sink::ExperienceSink;
use neo::{checkpoint, TrainingSet, ValueNet};
use neo_obs::{Counter, Gauge, LatencyHistogram, MetricsRegistry};
use neo_query::Query;
use neo_serve::OptimizerService;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Observes every trained generation **before** it is published to the
/// serving slot, with veto power: an `Err` keeps the generation entirely
/// unpublished (the served model is untouched and the failure is counted
/// in [`BackgroundTrainer::persist_failures`]).
///
/// This is the durability seam the cluster leader plugs into: its observer
/// writes the framed checkpoint to the shared [`CheckpointStore`] first,
/// so a generation that is live *anywhere* in the fleet has always been
/// persisted — followers and restarted nodes can always fetch it.
///
/// [`CheckpointStore`]: https://docs.rs/neo-cluster
pub trait GenerationObserver: Send + Sync {
    /// Called with the framed checkpoint bytes ([`neo::checkpoint`]
    /// format) of the generation about to be published.
    fn on_checkpoint(&self, generation: u64, framed: &[u8]) -> std::io::Result<()>;

    /// [`Self::on_checkpoint`] carrying the generation's lineage-trace
    /// context (the trainer's root span), so a store-backed observer can
    /// record its write as a span and stitch the context into the
    /// manifest for followers. The default ignores the context.
    fn on_checkpoint_traced(
        &self,
        generation: u64,
        framed: &[u8],
        trace: Option<neo_obs::SpanContext>,
    ) -> std::io::Result<()> {
        let _ = trace;
        self.on_checkpoint(generation, framed)
    }
}

/// Background-trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Minibatch epochs per generation.
    pub epochs_per_generation: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Cap on samples per epoch (replay subsampling, as in the runner).
    pub max_samples_per_generation: usize,
    /// Auto mode: run a generation whenever this many new observations
    /// are pending in the sink.
    pub min_new_records: u64,
    /// Auto-mode poll interval while idle, milliseconds.
    pub poll_interval_ms: u64,
    /// Enables auto mode (explicit [`BackgroundTrainer::request_generation`]
    /// works either way).
    pub auto: bool,
    /// Master seed for the per-generation minibatch shuffles.
    pub seed: u64,
    /// The leadership term this trainer publishes under (recorded in the
    /// service's model slot; 0 outside any lease protocol). The cluster
    /// spawns one trainer per held term — a promoted follower's trainer
    /// carries the term it won the lease with, and its store observer
    /// fences publishes with the same number.
    pub term: u64,
    /// When set, every generation's checkpoint is also written to
    /// `<dir>/gen-<N>.ckpt` (the latest checkpoint is always retrievable
    /// in-memory via [`BackgroundTrainer::latest_checkpoint`]).
    pub checkpoint_dir: Option<PathBuf>,
    /// Retry policy for the [`GenerationObserver`] persist call: a
    /// transient store hiccup is retried with backoff instead of
    /// instantly vetoing a trained generation. Only a policy-exhausting
    /// failure counts as a [`BackgroundTrainer::persist_failures`] veto.
    /// Use [`RetryPolicy::none`] for the old fail-fast behavior.
    pub persist_retry: RetryPolicy,
    /// When set, every generation records a lineage trace into this span
    /// ring: a `generation` root with `drain`/`train`/`checkpoint`/
    /// `publish` children, its context handed to the observer (and, via
    /// the cluster's manifest, to every follower's adopt span).
    pub spans: Option<Arc<neo_obs::SpanRing>>,
    /// The node label lineage spans carry (the trainer's host node name).
    pub span_node: String,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs_per_generation: 4,
            batch_size: 64,
            max_samples_per_generation: 2048,
            min_new_records: 64,
            poll_interval_ms: 20,
            auto: false,
            seed: 42,
            term: 0,
            checkpoint_dir: None,
            persist_retry: RetryPolicy::default(),
            spans: None,
            span_node: "trainer".to_string(),
        }
    }
}

/// What one background generation did.
#[derive(Clone, Debug)]
pub struct GenerationStats {
    /// The model generation this retrain minted (matches
    /// [`OptimizerService::model_generation`] right after the swap when
    /// `swapped` is true); 0 is never used (generation 0 is the
    /// construction-time model).
    pub model_generation: u64,
    /// Whether this trainer's own publish advanced the serving slot.
    /// `false` means another publisher got to `model_generation` (or
    /// past it) first: benign when that was a store poller adopting the
    /// identical persisted bytes, a dropped model when a divergent
    /// concurrent publisher raced the trainer.
    pub swapped: bool,
    /// Observations drained from the sink this generation.
    pub drained: usize,
    /// Distinct queries in the training snapshot.
    pub queries: usize,
    /// Training samples derived from the snapshot.
    pub samples: usize,
    /// Mean batch loss of the final epoch.
    pub mean_loss: f32,
    /// Wall-clock spent encoding + training, milliseconds.
    pub train_ms: f64,
    /// Wall-clock of the publish (slot swap + cache epoch bump),
    /// microseconds — the serving-visible cost of a hot swap.
    pub swap_us: f64,
}

struct TrainerState {
    /// Explicitly requested generations (monotonic).
    requested: u64,
    /// Completed generation runs (monotonic; includes auto-triggered).
    completed: u64,
    stopping: bool,
    history: Vec<GenerationStats>,
    /// The most recently *persisted* generation: `(generation, framed
    /// checkpoint)`, recorded after the observer accepts it and **before**
    /// the local swap — the drain-then-stop reconciliation in
    /// [`BackgroundTrainer::stop`] keys on it.
    latest_checkpoint: Option<(u64, Vec<u8>)>,
    persist_failures: u64,
}

/// The trainer's instruments, registered in the *service's* metrics
/// registry so one node-level snapshot covers serving and learning.
/// Get-or-create resolution means successive trainers on one service
/// (the cluster spawns one per held term) share the same instruments.
struct TrainerObs {
    generations: Counter,
    drained: Counter,
    persist_failures: Counter,
    train_hist: Arc<LatencyHistogram>,
    publish_hist: Arc<LatencyHistogram>,
    replay_queries: Gauge,
    /// Experience records sitting in the sink, not yet drained — the
    /// trainer's queue depth. Updated every poll, so the telemetry
    /// sampler sees backlog build up between generations and collapse
    /// when one runs.
    sink_backlog: Gauge,
}

impl TrainerObs {
    fn register(registry: &MetricsRegistry) -> Self {
        TrainerObs {
            generations: registry.counter("learn_generations_total"),
            drained: registry.counter("learn_drained_total"),
            persist_failures: registry.counter("learn_persist_failures_total"),
            train_hist: registry.histogram("learn_train_ms"),
            publish_hist: registry.histogram("learn_publish_ms"),
            replay_queries: registry.gauge("learn_replay_queries"),
            sink_backlog: registry.gauge("learn_sink_backlog"),
        }
    }
}

struct TrainerShared {
    service: Arc<OptimizerService>,
    sink: Arc<ExperienceSink>,
    buffer: Mutex<ReplayBuffer>,
    cfg: TrainerConfig,
    observer: Option<Arc<dyn GenerationObserver>>,
    /// Accounting for the observer-persist retry loop
    /// ([`TrainerConfig::persist_retry`]).
    persist_retry_stats: RetryStats,
    obs: TrainerObs,
    state: Mutex<TrainerState>,
    cv: Condvar,
}

/// Handle to the dedicated trainer thread. Dropping it stops the thread
/// (finishing any in-flight generation) and joins it.
pub struct BackgroundTrainer {
    shared: Arc<TrainerShared>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundTrainer {
    /// Spawns the trainer thread against a service and its sink. The sink
    /// should also be attached to the service as its execution-feedback
    /// target (`service.set_feedback(sink.clone())`) so served executions
    /// flow in.
    pub fn spawn(
        service: Arc<OptimizerService>,
        sink: Arc<ExperienceSink>,
        replay: ReplayConfig,
        cfg: TrainerConfig,
    ) -> Self {
        Self::spawn_with_observer(service, sink, replay, cfg, None)
    }

    /// [`Self::spawn`] with a [`GenerationObserver`] that sees (and may
    /// veto) every generation before it is published — the cluster
    /// leader's persist-before-publish hook.
    pub fn spawn_with_observer(
        service: Arc<OptimizerService>,
        sink: Arc<ExperienceSink>,
        replay: ReplayConfig,
        cfg: TrainerConfig,
        observer: Option<Arc<dyn GenerationObserver>>,
    ) -> Self {
        let obs = TrainerObs::register(service.metrics());
        let persist_retry_stats = RetryStats::new();
        persist_retry_stats.bind_metrics(service.metrics(), "learn_persist");
        let shared = Arc::new(TrainerShared {
            service,
            sink,
            buffer: Mutex::new(ReplayBuffer::new(replay)),
            cfg,
            observer,
            persist_retry_stats,
            obs,
            state: Mutex::new(TrainerState {
                requested: 0,
                completed: 0,
                stopping: false,
                history: Vec::new(),
                latest_checkpoint: None,
                persist_failures: 0,
            }),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("neo-learn-trainer".into())
            .spawn(move || trainer_loop(&thread_shared))
            .expect("spawn trainer thread");
        BackgroundTrainer {
            shared,
            handle: Some(handle),
        }
    }

    /// Asks for one more generation (returns immediately; pair with
    /// [`Self::wait_for_generation`]).
    pub fn request_generation(&self) {
        let mut st = self.shared.state.lock().expect("trainer state poisoned");
        st.requested += 1;
        self.shared.cv.notify_all();
    }

    /// Blocks until at least `n` generations have completed (or the
    /// timeout passes). Returns whether the target was reached.
    pub fn wait_for_generation(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("trainer state poisoned");
        while st.completed < n {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(st, deadline - now)
                .expect("trainer state poisoned");
            st = guard;
        }
        true
    }

    /// Completed generation runs so far.
    pub fn completed_generations(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("trainer state poisoned")
            .completed
    }

    /// Per-generation statistics, oldest first.
    pub fn history(&self) -> Vec<GenerationStats> {
        self.shared
            .state
            .lock()
            .expect("trainer state poisoned")
            .history
            .clone()
    }

    /// The framed checkpoint of the most recently published model
    /// ([`neo::checkpoint`] header wrapping the [`neo::ValueNet::save`]
    /// stream), if any generation has run.
    pub fn latest_checkpoint(&self) -> Option<Vec<u8>> {
        self.latest_persisted().map(|(_, bytes)| bytes)
    }

    /// The most recently persisted `(generation, framed checkpoint)` pair
    /// — recorded after the [`GenerationObserver`] accepted the
    /// generation and before the serving swap, so during the swap window
    /// it can run ahead of [`OptimizerService::model_generation`] by one.
    /// [`Self::stop`] reconciles the two before joining.
    pub fn latest_persisted(&self) -> Option<(u64, Vec<u8>)> {
        self.shared
            .state
            .lock()
            .expect("trainer state poisoned")
            .latest_checkpoint
            .clone()
    }

    /// Generations whose checkpoint could not be persisted (the
    /// [`GenerationObserver`] returned an error); those generations were
    /// *not* published.
    pub fn persist_failures(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("trainer state poisoned")
            .persist_failures
    }

    /// Retry accounting for checkpoint persistence
    /// ([`TrainerConfig::persist_retry`]): attempts, backoff retries,
    /// recoveries (transient faults absorbed without losing the
    /// generation), and exhaustions (each one also a
    /// [`Self::persist_failures`] veto).
    pub fn persist_retry_stats(&self) -> RetrySnapshot {
        self.shared.persist_retry_stats.snapshot()
    }

    /// Restores a checkpoint (as returned by [`Self::latest_checkpoint`]
    /// or written to the checkpoint dir) into `net`. The network must
    /// have been built with the same architecture. Framed checkpoints are
    /// integrity-verified first ([`neo::checkpoint::decode`]): torn or
    /// corrupt bytes are rejected with a descriptive error instead of
    /// being silently loaded as garbage weights; headerless pre-frame
    /// checkpoints still load.
    pub fn load_checkpoint(bytes: &[u8], net: &mut ValueNet) -> std::io::Result<()> {
        let decoded = checkpoint::decode(bytes)?;
        net.load(&mut decoded.payload())
    }

    /// Signals the thread to stop, joins it, and **drains**: if the last
    /// generation the observer persisted never made it into the serving
    /// slot (the shutdown raced the window between checkpoint persistence
    /// and the local swap), it is adopted now — so a stopped ex-leader is
    /// never left one generation behind its own store. A checkpoint that
    /// fails to decode is vetoed (left unadopted) rather than loaded as
    /// garbage. Idempotent; also runs on drop. A trainer thread that
    /// panicked re-panics here with its thread name and message (unless
    /// this stop is itself part of an unwind).
    pub fn stop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("trainer state poisoned");
            st.stopping = true;
            self.shared.cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            neo_serve::join_named_or_ignore_during_unwind(h);
            self.drain_persisted();
        }
    }

    /// The drain half of drain-then-stop: adopt (or veto) the last
    /// persisted generation if the serving slot is still behind it.
    fn drain_persisted(&self) {
        let Some((generation, framed)) = self.latest_persisted() else {
            return;
        };
        if generation <= self.shared.service.model_generation() {
            return;
        }
        let adopt = || -> std::io::Result<Arc<ValueNet>> {
            let decoded = checkpoint::decode(&framed)?;
            let mut net = (*self.shared.service.model()).clone();
            net.load(&mut decoded.payload())?;
            Ok(Arc::new(net))
        };
        match adopt() {
            Ok(net) => {
                self.shared
                    .service
                    .publish_model_from(net, generation, self.shared.cfg.term);
            }
            Err(e) => {
                // Veto: a checkpoint that no longer decodes must not go
                // live; the node stays on its current generation (a
                // cluster node re-syncs it from the store instead).
                eprintln!(
                    "neo-learn: drain-then-stop could not adopt persisted generation \
                     {generation}: {e}"
                );
            }
        }
    }
}

impl Drop for BackgroundTrainer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn trainer_loop(shared: &TrainerShared) {
    loop {
        // Wait for work: an explicit request, auto-mode pressure, or stop.
        {
            let mut st = shared.state.lock().expect("trainer state poisoned");
            loop {
                if st.stopping {
                    return;
                }
                shared.obs.sink_backlog.set(shared.sink.pending());
                if st.requested > st.completed {
                    break;
                }
                if shared.cfg.auto && shared.sink.pending() >= shared.cfg.min_new_records {
                    // Auto trigger: account it as if requested, so the
                    // loop condition stays monotone.
                    st.requested = st.completed + 1;
                    break;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(
                        st,
                        Duration::from_millis(shared.cfg.poll_interval_ms.max(1)),
                    )
                    .expect("trainer state poisoned");
                st = guard;
            }
        }

        let stats = run_generation(shared);

        let mut st = shared.state.lock().expect("trainer state poisoned");
        st.completed += 1;
        if let Some(s) = stats {
            st.history.push(s);
        }
        shared.cv.notify_all();
    }
}

/// One generation: drain → fold → snapshot → train a clone → checkpoint →
/// publish. Returns `None` when there was nothing to train on (no
/// publish happens; the served model is untouched).
fn run_generation(shared: &TrainerShared) -> Option<GenerationStats> {
    let cfg = &shared.cfg;
    // The generation's lineage trace starts here — at the sink drain —
    // and, via the observer and the cluster manifest, ends with the last
    // follower's adoption span. Lineage spans are rare and precious, so
    // they record directly (always kept), no sampling.
    let mut root = match &cfg.spans {
        Some(ring) => ring.root("generation", &cfg.span_node),
        None => neo_obs::SpanGuard::noop(),
    };
    let mut drain_span = root.child("drain");
    let drained_records = shared.sink.drain();
    shared.obs.sink_backlog.set(shared.sink.pending());
    let drained = drained_records.len();
    let (queries, experience) = {
        let mut buffer = shared.buffer.lock().expect("replay buffer poisoned");
        for r in drained_records {
            buffer.insert(r);
        }
        buffer.snapshot()
    };
    drain_span.attr("records", format!("{drained}"));
    drain_span.end();
    let refs: Vec<&Query> = queries.iter().collect();
    let samples = experience.training_samples(&refs);
    if samples.is_empty() {
        return None;
    }

    let train_span = root.child("train");
    let train_start = Instant::now();
    // Train a clone; serving continues on the published original.
    let mut net: ValueNet = (*shared.service.model()).clone();
    net.fit_normalization(&experience.all_costs());
    let set = TrainingSet::encode(
        shared.service.featurizer(),
        shared.service.db(),
        &refs,
        &samples,
        None,
    );
    let upcoming_generation = shared.service.model_generation() + 1;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ upcoming_generation);
    let mean_loss = set.train_epochs(
        &mut net,
        cfg.epochs_per_generation,
        cfg.batch_size,
        cfg.max_samples_per_generation,
        &mut rng,
    );
    let train_ms = train_start.elapsed().as_secs_f64() * 1e3;
    train_span.end();
    root.attr("generation", format!("{upcoming_generation}"));
    let root_ctx = root.context();

    // Checkpoint before publishing: a generation that is live has always
    // been persisted first. The checkpoint is framed (magic + version +
    // length + checksum, `neo::checkpoint`) so torn or corrupt copies are
    // rejected at load time instead of restoring garbage weights.
    let checkpoint_span = root.child("checkpoint");
    let mut payload = Vec::new();
    net.save(&mut payload).expect("serialize checkpoint");
    let framed = checkpoint::frame(&payload);
    if let Some(dir) = &cfg.checkpoint_dir {
        // Best-effort: persistence failures must not take down serving.
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("gen-{upcoming_generation:06}.ckpt"));
            let _ = std::fs::write(path, &framed);
        }
    }
    checkpoint_span.end();
    if let Some(observer) = &shared.observer {
        // The observer (e.g. the cluster's shared checkpoint store) must
        // accept the generation before it may serve: publishing a model the
        // rest of the fleet can never fetch would fork the fleet's
        // generation history. Transient store faults are retried with
        // backoff (`cfg.persist_retry`) — only an exhausted policy vetoes
        // minutes of training.
        let persisted = cfg.persist_retry.run(&shared.persist_retry_stats, || {
            observer.on_checkpoint_traced(upcoming_generation, &framed, root_ctx)
        });
        if let Err(e) = persisted {
            eprintln!(
                "neo-learn: generation {upcoming_generation} not published: \
                 checkpoint persistence failed: {e}"
            );
            shared.obs.persist_failures.inc();
            let mut st = shared.state.lock().expect("trainer state poisoned");
            st.persist_failures += 1;
            return None;
        }
    }

    // Persisted-before-served bookkeeping *between* the observer ack and
    // the swap: whatever happens from here on (including a shutdown), the
    // drain in `stop` can see that this generation exists durably and
    // reconcile the serving slot with it.
    {
        let mut st = shared.state.lock().expect("trainer state poisoned");
        st.latest_checkpoint = Some((upcoming_generation, framed));
    }

    // The publish is pinned to the generation number the checkpoint was
    // persisted under (not a local counter bump): if another publisher —
    // a store poller adopting this very generation first — already
    // advanced the slot, the swap is a monotonic no-op over identical
    // bytes, never a forked renumbering.
    let swap_start = Instant::now();
    let mut publish_span = root.child("publish");
    let swapped =
        shared
            .service
            .publish_model_from(Arc::new(net), upcoming_generation, shared.cfg.term);
    publish_span.attr("swapped", if swapped { "true" } else { "false" });
    publish_span.end();
    let swap_us = swap_start.elapsed().as_secs_f64() * 1e6;
    if !swapped {
        // Benign when a store poller adopted this very generation first
        // (identical bytes); a *divergent* concurrent publisher (e.g. a
        // manual `publish_model` racing the trainer) means the trained
        // weights were dropped — say so instead of silently reporting
        // them live.
        eprintln!(
            "neo-learn: generation {upcoming_generation} lost the swap race (slot already \
             at {}); the trained weights serve only if the winner carried the same bytes",
            shared.service.model_generation()
        );
    }

    shared.obs.generations.inc();
    shared.obs.drained.add(drained as u64);
    shared.obs.train_hist.record_ms(train_ms);
    shared.obs.publish_hist.record_ms(swap_us / 1e3);
    shared.obs.replay_queries.set(queries.len() as u64);

    Some(GenerationStats {
        model_generation: upcoming_generation,
        swapped,
        drained,
        queries: queries.len(),
        samples: samples.len(),
        mean_loss,
        train_ms,
        swap_us,
    })
}
