//! The replay buffer: bounded retention of execution experience between
//! retraining generations (paper §4.2's experience set, kept serving-shape).
//!
//! Per query fingerprint the buffer retains the **best plan ever
//! observed** (the paper's min-aggregation means the best plan dominates
//! the training signal) plus a bounded tail of **high-regret runner-ups**
//! — enough contrast for the value network to learn what *not* to choose,
//! without growing with the number of executions. When the tail is over
//! capacity it evicts the record with the **lowest regret**
//! `|observed − predicted|` (prioritized replay: the observation the
//! current model already predicts well carries the least training signal;
//! ties fall back to oldest-first, and records without a prediction —
//! expert demonstrations, pre-regret feedback — count as maximally
//! surprising and are evicted last). Best-plan retention is unaffected:
//! the champion is stored outside the tail and is never evicted by
//! regret. The query population itself is capacity-bounded with
//! least-recently-updated eviction, so a service meeting an endless stream
//! of one-off queries trains on the live working set, not on history.
//!
//! [`ReplayBuffer::snapshot`] freezes the buffer into a
//! ([`Vec<Query>`], [`neo::Experience`]) pair ready for
//! [`neo::TrainingSet::encode`]. The snapshot is **deterministic**: slots
//! are emitted in fingerprint order and query ids are canonicalized to the
//! fingerprint (two distinct parameterizations sharing a textual id can
//! never collide in the experience store).

use crate::sink::ExperienceRecord;
use neo::Experience;
use neo_query::{PlanNode, Query, QueryFingerprint};
use std::collections::HashMap;

/// Sizing of the replay buffer.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Maximum distinct query fingerprints retained (LRU-evicted beyond).
    pub max_queries: usize,
    /// Runner-up plans retained per query besides the best (recent tail).
    pub runners_per_query: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            max_queries: 1024,
            runners_per_query: 7,
        }
    }
}

/// One retained (plan, best observed latency) pair with its replay
/// priority.
#[derive(Clone, Debug)]
struct Retained {
    plan: PlanNode,
    latency_ms: f64,
    /// Regret `|observed − predicted|` of the observation (ms):
    /// how badly the model that chose this plan mispredicted it.
    /// `f64::INFINITY` when no prediction accompanied the record — its
    /// surprise is unknown, so it is the last to be evicted.
    regret: f64,
}

/// Per-fingerprint retention slot.
struct QuerySlot {
    query: Query,
    best: Retained,
    /// Runner-ups, oldest first; length ≤ `runners_per_query`. Over
    /// capacity the lowest-regret record is evicted (oldest on ties).
    runners: Vec<Retained>,
    /// Monotonic recency stamp (for LRU eviction of whole queries).
    last_touch: u64,
}

/// The capacity-bounded replay buffer.
pub struct ReplayBuffer {
    cfg: ReplayConfig,
    slots: HashMap<QueryFingerprint, QuerySlot>,
    tick: u64,
}

impl ReplayBuffer {
    /// Creates an empty buffer.
    pub fn new(cfg: ReplayConfig) -> Self {
        ReplayBuffer {
            cfg: ReplayConfig {
                max_queries: cfg.max_queries.max(1),
                runners_per_query: cfg.runners_per_query,
            },
            slots: HashMap::new(),
            tick: 0,
        }
    }

    /// Distinct queries retained.
    pub fn num_queries(&self) -> usize {
        self.slots.len()
    }

    /// Total retained plans (best + runner-ups) across queries.
    pub fn num_plans(&self) -> usize {
        self.slots.values().map(|s| 1 + s.runners.len()).sum()
    }

    /// Best observed latency for a fingerprint.
    pub fn best_latency(&self, fp: QueryFingerprint) -> Option<f64> {
        self.slots.get(&fp).map(|s| s.best.latency_ms)
    }

    /// Best observed plan for a fingerprint.
    pub fn best_plan(&self, fp: QueryFingerprint) -> Option<&PlanNode> {
        self.slots.get(&fp).map(|s| &s.best.plan)
    }

    /// Folds one observation in, applying the retention policy.
    pub fn insert(&mut self, record: ExperienceRecord) {
        self.tick += 1;
        let tick = self.tick;
        let ExperienceRecord {
            fingerprint,
            query,
            plan,
            latency_ms,
            predicted_ms,
        } = record;
        let regret = predicted_ms
            .map(|p| (latency_ms - p).abs())
            .unwrap_or(f64::INFINITY);

        if !self.slots.contains_key(&fingerprint) && self.slots.len() >= self.cfg.max_queries {
            self.evict_lru();
        }
        let runners_cap = self.cfg.runners_per_query;
        match self.slots.entry(fingerprint) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(QuerySlot {
                    query,
                    best: Retained {
                        plan,
                        latency_ms,
                        regret,
                    },
                    runners: Vec::new(),
                    last_touch: tick,
                });
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let slot = o.get_mut();
                slot.last_touch = tick;
                if plan == slot.best.plan {
                    // Re-execution of the incumbent: keep the min latency
                    // (the latency model is deterministic; a real engine
                    // would see noise, and min matches Experience::add) and
                    // the strongest surprise signal seen for it.
                    slot.best.latency_ms = slot.best.latency_ms.min(latency_ms);
                    slot.best.regret = max_regret(slot.best.regret, regret);
                } else if latency_ms < slot.best.latency_ms {
                    // New champion: the old best is demoted into the runner
                    // tail (carrying its own regret), and any stale copy of
                    // the new champion in the tail is dropped (a runner slot
                    // must not duplicate the best plan).
                    let old = std::mem::replace(
                        &mut slot.best,
                        Retained {
                            plan,
                            latency_ms,
                            regret,
                        },
                    );
                    slot.runners.retain(|r| r.plan != slot.best.plan);
                    Self::push_runner(&mut slot.runners, old, runners_cap);
                } else {
                    Self::push_runner(
                        &mut slot.runners,
                        Retained {
                            plan,
                            latency_ms,
                            regret,
                        },
                        runners_cap,
                    );
                }
            }
        }
    }

    /// Appends a runner-up, deduplicating by plan (keeping the min
    /// latency, the max regret, and — by moving the record to the tail's
    /// end — refreshing its recency, so the oldest-first tie-break still
    /// means *least recently observed*), then — beyond the cap —
    /// evicting the record with the **lowest regret** (oldest first on
    /// ties). The incoming record competes like any other: a new
    /// low-regret observation arriving at a full tail of higher-regret
    /// records is itself the one dropped.
    fn push_runner(runners: &mut Vec<Retained>, r: Retained, cap: usize) {
        if cap == 0 {
            return;
        }
        if let Some(pos) = runners.iter().position(|x| x.plan == r.plan) {
            let mut existing = runners.remove(pos);
            existing.latency_ms = existing.latency_ms.min(r.latency_ms);
            existing.regret = max_regret(existing.regret, r.regret);
            runners.push(existing);
        } else {
            runners.push(r);
            if runners.len() > cap {
                let victim = runners
                    .iter()
                    .enumerate()
                    .min_by(|(ia, a), (ib, b)| a.regret.total_cmp(&b.regret).then(ia.cmp(ib)))
                    .map(|(i, _)| i)
                    .expect("tail over cap is non-empty");
                runners.remove(victim);
            }
        }
    }

    /// Evicts the least-recently-updated query (fingerprint order breaks
    /// ties deterministically).
    fn evict_lru(&mut self) {
        let victim = self
            .slots
            .iter()
            .min_by_key(|(fp, s)| (s.last_touch, **fp))
            .map(|(fp, _)| *fp);
        if let Some(fp) = victim {
            self.slots.remove(&fp);
        }
    }

    /// Freezes the buffer into a training view: the retained queries (ids
    /// canonicalized to their fingerprints, emitted in fingerprint order)
    /// and a [`neo::Experience`] holding every retained (plan, latency)
    /// with the same plan cap this buffer enforces.
    pub fn snapshot(&self) -> (Vec<Query>, Experience) {
        let mut fps: Vec<QueryFingerprint> = self.slots.keys().copied().collect();
        fps.sort();
        let mut queries = Vec::with_capacity(fps.len());
        let mut experience = Experience::with_plan_cap(1 + self.cfg.runners_per_query.max(1));
        for fp in fps {
            let slot = &self.slots[&fp];
            let mut q = slot.query.clone();
            q.id = canonical_id(fp);
            experience.add(&q.id, slot.best.plan.clone(), slot.best.latency_ms);
            for r in &slot.runners {
                experience.add(&q.id, r.plan.clone(), r.latency_ms);
            }
            queries.push(q);
        }
        (queries, experience)
    }
}

/// The canonical per-fingerprint query id used inside snapshots.
pub fn canonical_id(fp: QueryFingerprint) -> String {
    format!("fp{:032x}", fp.0)
}

/// Total-order max of two regrets (unlike `f64::max`, never lets a NaN
/// from a pathological prediction silently shrink a priority).
fn max_regret(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == std::cmp::Ordering::Greater {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{JoinOp, ScanType};

    fn fp(x: u128) -> QueryFingerprint {
        QueryFingerprint(x)
    }

    fn plan(rel: usize) -> PlanNode {
        PlanNode::Scan {
            rel,
            scan: ScanType::Table,
        }
    }

    fn join(l: usize, r: usize) -> PlanNode {
        PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(plan(l)),
            right: Box::new(plan(r)),
        }
    }

    fn rec(key: u128, p: PlanNode, latency_ms: f64) -> ExperienceRecord {
        ExperienceRecord {
            fingerprint: fp(key),
            query: Query {
                id: format!("q{key}"),
                family: "t".into(),
                tables: vec![0, 1],
                joins: vec![],
                predicates: vec![],
                agg: Default::default(),
            },
            plan: p,
            latency_ms,
            predicted_ms: None,
        }
    }

    fn rec_pred(key: u128, p: PlanNode, latency_ms: f64, predicted_ms: f64) -> ExperienceRecord {
        ExperienceRecord {
            predicted_ms: Some(predicted_ms),
            ..rec(key, p, latency_ms)
        }
    }

    fn buffer(max_queries: usize, runners: usize) -> ReplayBuffer {
        ReplayBuffer::new(ReplayConfig {
            max_queries,
            runners_per_query: runners,
        })
    }

    #[test]
    fn best_plan_is_always_retained() {
        let mut b = buffer(8, 2);
        b.insert(rec(1, join(0, 1), 50.0));
        b.insert(rec(1, join(1, 2), 10.0)); // new champion
        b.insert(rec(1, join(2, 3), 99.0));
        b.insert(rec(1, join(3, 4), 98.0));
        b.insert(rec(1, join(4, 5), 97.0)); // pushes out oldest runner-up
        assert_eq!(b.best_latency(fp(1)), Some(10.0));
        assert_eq!(b.best_plan(fp(1)), Some(&join(1, 2)));
        // 1 best + at most 2 runners.
        assert_eq!(b.num_plans(), 3);
    }

    #[test]
    fn unpredicted_records_tie_break_oldest_first() {
        // All records carry no prediction (infinite regret), so eviction
        // falls back to oldest-first — the pre-regret recency behaviour.
        let mut b = buffer(8, 2);
        b.insert(rec(1, join(0, 1), 10.0)); // best
        b.insert(rec(1, join(1, 2), 20.0));
        b.insert(rec(1, join(2, 3), 30.0));
        b.insert(rec(1, join(3, 4), 40.0)); // evicts join(1,2): oldest tie
        let (_, exp) = b.snapshot();
        let costs = {
            let mut c = exp.all_costs();
            c.sort_by(f64::total_cmp);
            c
        };
        assert_eq!(costs, vec![10.0, 30.0, 40.0], "oldest tie evicted");
    }

    #[test]
    fn reobserving_a_runner_refreshes_its_recency_for_the_tie_break() {
        let mut b = buffer(8, 2);
        b.insert(rec(1, join(0, 1), 10.0)); // best
        b.insert(rec(1, join(1, 2), 20.0));
        b.insert(rec(1, join(2, 3), 30.0));
        b.insert(rec(1, join(1, 2), 20.0)); // re-observed: now the newest
        b.insert(rec(1, join(3, 4), 40.0)); // ties on regret: evicts 30
        let (_, exp) = b.snapshot();
        let costs = {
            let mut c = exp.all_costs();
            c.sort_by(f64::total_cmp);
            c
        };
        assert_eq!(costs, vec![10.0, 20.0, 40.0], "least recent tie evicted");
    }

    #[test]
    fn runner_tail_evicts_lowest_regret_first() {
        let mut b = buffer(8, 2);
        b.insert(rec_pred(1, join(0, 1), 10.0, 10.0)); // best, regret 0
                                                       // Tail: regret 25 and regret 1.
        b.insert(rec_pred(1, join(1, 2), 50.0, 25.0));
        b.insert(rec_pred(1, join(2, 3), 30.0, 29.0));
        // A high-regret record evicts the well-predicted 30 ms one, not the
        // oldest.
        b.insert(rec_pred(1, join(3, 4), 40.0, 80.0));
        let (_, exp) = b.snapshot();
        let costs = {
            let mut c = exp.all_costs();
            c.sort_by(f64::total_cmp);
            c
        };
        assert_eq!(costs, vec![10.0, 40.0, 50.0], "lowest-regret evicted");
    }

    #[test]
    fn incoming_low_regret_record_loses_to_a_surprising_tail() {
        let mut b = buffer(8, 2);
        b.insert(rec_pred(1, join(0, 1), 10.0, 10.0)); // best
        b.insert(rec_pred(1, join(1, 2), 50.0, 10.0)); // regret 40
        b.insert(rec_pred(1, join(2, 3), 60.0, 10.0)); // regret 50
                                                       // The newcomer is the least surprising → it is the one dropped.
        b.insert(rec_pred(1, join(3, 4), 40.0, 39.0));
        let (_, exp) = b.snapshot();
        let costs = {
            let mut c = exp.all_costs();
            c.sort_by(f64::total_cmp);
            c
        };
        assert_eq!(costs, vec![10.0, 50.0, 60.0], "low-regret newcomer dropped");
    }

    #[test]
    fn regret_eviction_never_touches_the_best_plan() {
        let mut b = buffer(8, 1);
        // The best plan is perfectly predicted (regret 0) while the tail
        // churns with high-regret records: the champion must survive.
        b.insert(rec_pred(1, join(0, 1), 5.0, 5.0));
        for i in 0..10u64 {
            b.insert(rec_pred(
                1,
                join(1 + i as usize, 2 + i as usize),
                100.0,
                10.0,
            ));
        }
        assert_eq!(b.best_plan(fp(1)), Some(&join(0, 1)));
        assert_eq!(b.best_latency(fp(1)), Some(5.0));
        assert_eq!(b.num_plans(), 2, "1 best + 1 runner");
    }

    #[test]
    fn reexecuting_best_keeps_min_latency() {
        let mut b = buffer(8, 2);
        b.insert(rec(1, join(0, 1), 10.0));
        b.insert(rec(1, join(0, 1), 30.0));
        assert_eq!(b.best_latency(fp(1)), Some(10.0));
        assert_eq!(b.num_plans(), 1, "duplicates never grow the buffer");
    }

    #[test]
    fn dethroned_best_becomes_most_recent_runner() {
        let mut b = buffer(8, 1);
        b.insert(rec(1, join(0, 1), 50.0));
        b.insert(rec(1, join(1, 2), 10.0));
        let (_, exp) = b.snapshot();
        let mut costs = exp.all_costs();
        costs.sort_by(f64::total_cmp);
        assert_eq!(costs, vec![10.0, 50.0], "old best kept as runner-up");
    }

    #[test]
    fn promoting_a_runner_to_champion_drops_its_stale_copy() {
        let mut b = buffer(8, 3);
        b.insert(rec(1, join(0, 1), 20.0)); // best
        b.insert(rec(1, join(1, 2), 50.0)); // runner
                                            // The runner is re-observed faster and becomes champion: its old
                                            // 50 ms copy must leave the tail (one plan, one slot).
        b.insert(rec(1, join(1, 2), 10.0));
        assert_eq!(b.best_plan(fp(1)), Some(&join(1, 2)));
        assert_eq!(b.best_latency(fp(1)), Some(10.0));
        assert_eq!(b.num_plans(), 2, "no duplicate of the champion");
        let (_, exp) = b.snapshot();
        let mut costs = exp.all_costs();
        costs.sort_by(f64::total_cmp);
        assert_eq!(costs, vec![10.0, 20.0]);
    }

    #[test]
    fn query_capacity_evicts_least_recently_updated() {
        let mut b = buffer(2, 1);
        b.insert(rec(1, plan(0), 1.0));
        b.insert(rec(2, plan(0), 2.0));
        b.insert(rec(1, plan(1), 3.0)); // touch fp 1 -> fp 2 is LRU
        b.insert(rec(3, plan(0), 4.0)); // evicts fp 2
        assert_eq!(b.num_queries(), 2);
        assert!(b.best_latency(fp(1)).is_some());
        assert_eq!(b.best_latency(fp(2)), None, "LRU query evicted");
        assert!(b.best_latency(fp(3)).is_some());
    }

    #[test]
    fn snapshot_is_deterministic_and_canonically_keyed() {
        let mut a = buffer(8, 2);
        let mut b = buffer(8, 2);
        // Same content, different insertion interleavings across queries.
        for r in [
            rec(7, join(0, 1), 5.0),
            rec(3, join(1, 2), 6.0),
            rec(7, join(2, 3), 7.0),
        ] {
            a.insert(r);
        }
        for r in [
            rec(3, join(1, 2), 6.0),
            rec(7, join(0, 1), 5.0),
            rec(7, join(2, 3), 7.0),
        ] {
            b.insert(r);
        }
        let (qa, ea) = a.snapshot();
        let (qb, eb) = b.snapshot();
        assert_eq!(
            qa.iter().map(|q| &q.id).collect::<Vec<_>>(),
            qb.iter().map(|q| &q.id).collect::<Vec<_>>()
        );
        assert_eq!(qa[0].id, canonical_id(fp(3)), "fingerprint order");
        let mut ca = ea.all_costs();
        let mut cb = eb.all_costs();
        ca.sort_by(f64::total_cmp);
        cb.sort_by(f64::total_cmp);
        assert_eq!(ca, cb);
        assert_eq!(ea.num_queries(), 2);
    }
}
