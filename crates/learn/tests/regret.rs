//! Property tests for regret-prioritized replay retention (ISSUE 4
//! satellite): however the regret priorities fall, eviction must never
//! drop a query's best plan, the tail stays bounded, and the snapshot
//! always carries the champion.

use neo_learn::{ExperienceRecord, ReplayBuffer, ReplayConfig};
use neo_query::{JoinOp, PlanNode, Query, QueryFingerprint, ScanType};
use proptest::prelude::*;

fn plan(a: usize, b: usize) -> PlanNode {
    PlanNode::Join {
        op: JoinOp::Hash,
        left: Box::new(PlanNode::Scan {
            rel: a,
            scan: ScanType::Table,
        }),
        right: Box::new(PlanNode::Scan {
            rel: b,
            scan: ScanType::Table,
        }),
    }
}

fn record(
    key: u64,
    a: usize,
    b: usize,
    latency_ms: f64,
    predicted_ms: Option<f64>,
) -> ExperienceRecord {
    ExperienceRecord {
        fingerprint: QueryFingerprint(key as u128),
        query: Query {
            id: format!("q{key}"),
            family: "prop".into(),
            tables: vec![0, 1],
            joins: vec![],
            predicates: vec![],
            agg: Default::default(),
        },
        plan: plan(a, b),
        latency_ms,
        predicted_ms,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..Default::default() })]

    /// Arbitrary insert sequences with arbitrary predictions: the best
    /// plan per query is exactly the argmin of everything observed, the
    /// runner tail never exceeds its cap or duplicates the best plan, and
    /// the snapshot always contains the best latency.
    #[test]
    fn regret_eviction_never_drops_a_best_plan(
        raw in collection::vec((0u64..3, 0usize..4, 0usize..4, 1u64..200, 0u64..60), 1..120),
        runners in 0usize..4,
    ) {
        let mut buffer = ReplayBuffer::new(ReplayConfig {
            max_queries: 64, // larger than the 3 keys: no whole-query LRU here
            runners_per_query: runners,
        });
        // Reference model: per key, the (latency, plan) argmin in insert
        // order (ties keep the earlier plan, matching min-latency
        // retention).
        let mut best: std::collections::HashMap<u64, (f64, PlanNode)> = Default::default();
        for &(key, a, b, lat, pred) in &raw {
            let latency = lat as f64;
            // pred == 0 means "no prediction" (infinite regret); otherwise
            // predictions range over 1..60 ms to produce diverse regrets.
            let predicted = (pred > 0).then_some(pred as f64);
            buffer.insert(record(key, a, b, latency, predicted));
            let e = best.entry(key).or_insert((latency, plan(a, b)));
            if latency < e.0 {
                *e = (latency, plan(a, b));
            }
        }
        let (queries, experience) = buffer.snapshot();
        prop_assert_eq!(queries.len(), best.len());
        for (key, (min_latency, best_plan)) in &best {
            let fp = QueryFingerprint(*key as u128);
            prop_assert_eq!(
                buffer.best_latency(fp), Some(*min_latency),
                "key {}: champion latency lost", key
            );
            prop_assert_eq!(
                buffer.best_plan(fp), Some(best_plan),
                "key {}: champion plan lost", key
            );
        }
        // Tail bound: at most 1 best + `runners` runner-ups per query.
        prop_assert!(
            buffer.num_plans() <= best.len() * (1 + runners),
            "{} plans retained for {} queries (cap {} each)",
            buffer.num_plans(), best.len(), 1 + runners
        );
        // The snapshot's per-query cost minimum is the champion's latency.
        for (key, (min_latency, _)) in &best {
            let id = neo_learn::canonical_id(QueryFingerprint(*key as u128));
            prop_assert_eq!(
                experience.best_cost(&id), Some(*min_latency),
                "key {}: snapshot lost the champion latency", key
            );
        }
    }
}
