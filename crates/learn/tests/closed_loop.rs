//! End-to-end tests of the closed learning loop (ISSUE 3): serve →
//! execute → collect → background-retrain → hot-swap → serve again.

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_learn::{
    BackgroundTrainer, ExperienceSink, GenerationObserver, ReplayConfig, TrainerConfig,
};
use neo_query::{workload::job, PartialPlan, Query};
use neo_serve::{OptimizerService, ServeConfig};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn net_cfg() -> NetConfig {
    NetConfig {
        query_layers: vec![32, 16],
        conv_channels: vec![16, 8],
        head_layers: vec![16],
        lr: 5e-3,
        grad_clip: 5.0,
        ignore_structure: false,
    }
}

struct Fixture {
    db: Arc<neo_storage::Database>,
    featurizer: Arc<Featurizer>,
    queries: Vec<Query>,
    service: Arc<OptimizerService>,
    sink: Arc<ExperienceSink>,
}

fn fixture(seed: u64, workers: usize) -> Fixture {
    let db = Arc::new(neo_storage::datagen::imdb::generate(0.02, seed));
    let queries: Vec<Query> = job::generate(&db, seed)
        .queries
        .into_iter()
        .filter(|q| (4..=6).contains(&q.num_relations()))
        .take(6)
        .collect();
    assert!(queries.len() >= 4, "fixture needs a real workload");
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        net_cfg(),
        seed,
    ));
    let service = Arc::new(OptimizerService::new(
        Arc::clone(&db),
        Arc::clone(&featurizer),
        net,
        ServeConfig {
            workers,
            search_base_expansions: 12,
            ..Default::default()
        },
    ));
    let sink = Arc::new(ExperienceSink::default());
    assert!(service.set_feedback(Arc::clone(&sink) as _));
    Fixture {
        db,
        featurizer,
        queries,
        service,
        sink,
    }
}

/// Serves every query once, executes the chosen plans on the latency
/// model, and reports the observations back through the service.
fn serve_and_execute(fx: &Fixture, oracle: &mut CardinalityOracle) -> f64 {
    let profile = Engine::PostgresLike.profile();
    let outcomes = fx.service.optimize_stream(&fx.queries);
    let mut total = 0.0;
    for (q, o) in fx.queries.iter().zip(&outcomes) {
        let latency = true_latency(&fx.db, q, &profile, oracle, &o.plan);
        total += latency;
        fx.service.report_outcome(q, o, latency);
    }
    total / fx.queries.len() as f64
}

#[test]
fn closed_loop_retrains_and_hot_swaps_generations() {
    let fx = fixture(5, 2);
    let trainer = BackgroundTrainer::spawn(
        Arc::clone(&fx.service),
        Arc::clone(&fx.sink),
        ReplayConfig::default(),
        TrainerConfig {
            epochs_per_generation: 3,
            seed: 5,
            ..Default::default()
        },
    );
    let mut oracle = CardinalityOracle::new();
    assert_eq!(fx.service.model_generation(), 0);

    for g in 1..=3u64 {
        serve_and_execute(&fx, &mut oracle);
        trainer.request_generation();
        assert!(
            trainer.wait_for_generation(g, WAIT),
            "generation {g} never completed"
        );
        assert_eq!(fx.service.model_generation(), g, "hot swap must publish");
    }

    let history = trainer.history();
    assert_eq!(history.len(), 3);
    for (i, h) in history.iter().enumerate() {
        assert_eq!(h.model_generation, i as u64 + 1);
        assert!(h.samples > 0, "retrain must see derived samples");
        assert!(h.mean_loss.is_finite());
        assert!(h.swap_us >= 0.0);
    }
    // Losses on the same (converging) experience should trend down from
    // first to last retrain — the signature of actual learning.
    assert!(
        history.last().unwrap().mean_loss <= history[0].mean_loss * 2.0,
        "loss diverged across generations: {history:?}"
    );
    // Every cached plan of the final epoch was demoted from earlier ones;
    // the cache itself holds only current-generation entries.
    assert!(!fx.service.cache().any_poisoned());
}

#[test]
fn concurrent_serving_never_blocks_and_never_tears_during_retraining() {
    let fx = fixture(9, 4);
    let mut trainer = BackgroundTrainer::spawn(
        Arc::clone(&fx.service),
        Arc::clone(&fx.sink),
        ReplayConfig::default(),
        TrainerConfig {
            epochs_per_generation: 2,
            auto: true,
            min_new_records: 4,
            poll_interval_ms: 1,
            seed: 9,
            ..Default::default()
        },
    );
    let mut oracle = CardinalityOracle::new();
    // Keep serving while the auto trainer retrains and swaps behind us.
    for _ in 0..6 {
        let mean = serve_and_execute(&fx, &mut oracle);
        assert!(mean.is_finite() && mean > 0.0);
    }
    assert!(
        trainer.wait_for_generation(1, WAIT),
        "auto mode must have retrained at least once"
    );
    // Quiesce: stop the trainer so the served generation is stable, then
    // check the torn-read guard — re-serving the workload twice must
    // agree with itself (the served model is one consistent generation).
    trainer.stop();
    let a: Vec<_> = fx
        .queries
        .iter()
        .map(|q| fx.service.optimize(q).plan)
        .collect();
    let b: Vec<_> = fx
        .queries
        .iter()
        .map(|q| fx.service.optimize(q).plan)
        .collect();
    assert_eq!(a, b);
    assert!(!fx.service.cache().any_poisoned());
}

#[test]
fn checkpoint_roundtrip_restores_identical_predictions() {
    let fx = fixture(13, 1);
    let ckpt_dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("learn-ckpt");
    let trainer = BackgroundTrainer::spawn(
        Arc::clone(&fx.service),
        Arc::clone(&fx.sink),
        ReplayConfig::default(),
        TrainerConfig {
            epochs_per_generation: 2,
            seed: 13,
            checkpoint_dir: Some(ckpt_dir.clone()),
            ..Default::default()
        },
    );
    let mut oracle = CardinalityOracle::new();
    serve_and_execute(&fx, &mut oracle);
    trainer.request_generation();
    assert!(trainer.wait_for_generation(1, WAIT));

    // In-memory checkpoint: restore into a fresh, differently-seeded net.
    let bytes = trainer.latest_checkpoint().expect("checkpoint captured");
    let mut restored = ValueNet::new(
        fx.featurizer.query_dim(),
        fx.featurizer.plan_channels(),
        net_cfg(),
        999,
    );
    BackgroundTrainer::load_checkpoint(&bytes, &mut restored).unwrap();

    let served = fx.service.model();
    for q in &fx.queries {
        let qe = fx.featurizer.encode_query(&fx.db, q);
        let enc = fx.featurizer.encode_plan(q, &PartialPlan::initial(q), None);
        let a = served.predict(&[&qe], &[&enc])[0];
        let b = restored.predict(&[&qe], &[&enc])[0];
        assert_eq!(a, b, "checkpoint must restore bit-identical predictions");
    }

    // On-disk checkpoint: the same bytes landed in the checkpoint dir.
    let disk = std::fs::read(ckpt_dir.join("gen-000001.ckpt")).expect("checkpoint file written");
    assert_eq!(disk, bytes);
}

/// Drain-then-stop (ISSUE 5): a stopped trainer must never leave the
/// service behind its own persisted history — every generation an
/// observer durably accepted is served (or explicitly vetoed) before the
/// join returns, even when the stop races an in-flight generation.
#[test]
fn stop_never_leaves_the_service_behind_the_last_persisted_generation() {
    struct CountingObserver {
        persisted: Mutex<Vec<u64>>,
    }
    impl GenerationObserver for CountingObserver {
        fn on_checkpoint(&self, generation: u64, _framed: &[u8]) -> std::io::Result<()> {
            self.persisted
                .lock()
                .expect("observer poisoned")
                .push(generation);
            Ok(())
        }
    }

    let fx = fixture(21, 2);
    let observer = Arc::new(CountingObserver {
        persisted: Mutex::new(Vec::new()),
    });
    let mut trainer = BackgroundTrainer::spawn_with_observer(
        Arc::clone(&fx.service),
        Arc::clone(&fx.sink),
        ReplayConfig::default(),
        TrainerConfig {
            epochs_per_generation: 2,
            auto: true,
            min_new_records: 1,
            poll_interval_ms: 1,
            seed: 21,
            ..Default::default()
        },
        Some(Arc::clone(&observer) as _),
    );
    let mut oracle = CardinalityOracle::new();
    for _ in 0..3 {
        serve_and_execute(&fx, &mut oracle);
    }
    // Stop while the auto trainer may be anywhere in a generation —
    // including the window between checkpoint persistence and the local
    // swap, which the drain must reconcile before the join returns.
    trainer.stop();

    let persisted = observer.persisted.lock().unwrap().clone();
    assert!(!persisted.is_empty(), "auto trainer never ran a generation");
    let (last_gen, bytes) = trainer
        .latest_persisted()
        .expect("persisted generations must be recorded");
    assert_eq!(Some(&last_gen), persisted.last());
    assert_eq!(
        last_gen,
        fx.service.model_generation(),
        "service left behind its own persisted history after stop"
    );
    assert_eq!(trainer.latest_checkpoint().unwrap(), bytes);
    // Persisted generations are contiguous under a single publisher, so
    // the served generation equals the persist count.
    assert_eq!(fx.service.model_generation(), persisted.len() as u64);
}

#[test]
fn generations_without_experience_do_not_publish() {
    let fx = fixture(17, 1);
    let trainer = BackgroundTrainer::spawn(
        Arc::clone(&fx.service),
        Arc::clone(&fx.sink),
        ReplayConfig::default(),
        TrainerConfig::default(),
    );
    trainer.request_generation();
    assert!(trainer.wait_for_generation(1, WAIT));
    assert_eq!(
        fx.service.model_generation(),
        0,
        "nothing to train on -> no swap"
    );
    assert!(trainer.history().is_empty());
    assert!(trainer.latest_checkpoint().is_none());
}
