//! Property-based tests for the storage substrate: histogram estimation
//! laws, index consistency, and dictionary-encoding invariants.

use neo_storage::{BTreeIndex, EquiDepthHistogram, McvStats, StrColumn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// est_lt is monotone non-decreasing in its argument and bounded [0,1].
    #[test]
    fn histogram_lt_is_monotone(mut values in proptest::collection::vec(-1000i64..1000, 1..300),
                                probes in proptest::collection::vec(-1100i64..1100, 2..10)) {
        values.sort_unstable();
        let h = EquiDepthHistogram::build(&values, 16);
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut prev = 0.0f64;
        for p in sorted {
            let e = h.est_lt(p);
            prop_assert!((0.0..=1.0).contains(&e));
            prop_assert!(e + 1e-12 >= prev, "est_lt not monotone at {p}: {e} < {prev}");
            prev = e;
        }
    }

    /// est_between(min, max) covers (almost) everything; degenerate ranges
    /// are empty.
    #[test]
    fn histogram_between_bounds(values in proptest::collection::vec(-500i64..500, 1..200)) {
        let h = EquiDepthHistogram::build(&values, 8);
        let full = h.est_between(h.min(), h.max());
        prop_assert!(full > 0.5, "full range estimate {full}");
        prop_assert_eq!(h.est_between(10, 9), 0.0);
    }

    /// MCV estimates sum to ~1 over all distinct codes.
    #[test]
    fn mcv_mass_sums_to_one(codes in proptest::collection::vec(0u32..20, 1..300)) {
        let dict_len = 20;
        let m = McvStats::build(&codes, dict_len, 5);
        let total: f64 = (0..dict_len as u32)
            .filter(|c| codes.contains(c))
            .map(|c| m.est_eq_code(c))
            .sum();
        prop_assert!((total - 1.0).abs() < 0.05, "mass {total}");
    }

    /// Index lookup returns exactly the rows holding the key; ranges agree
    /// with a linear scan.
    #[test]
    fn index_agrees_with_scan(values in proptest::collection::vec(-50i64..50, 0..200),
                              lo in -60i64..60, width in 0i64..40) {
        let idx = BTreeIndex::build(&values);
        let hi = lo + width;
        let mut expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i as u32)
            .collect();
        let mut got = idx.range(lo, hi);
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        if let Some(&v) = values.first() {
            prop_assert!(idx.lookup(v).contains(&0));
        }
    }

    /// Dictionary encoding: decode(intern(s)) == s, and codes are dense.
    #[test]
    fn dictionary_roundtrip(words in proptest::collection::vec("[a-z]{1,8}", 1..50)) {
        let mut col = StrColumn::new();
        for w in &words {
            col.push(w);
        }
        for (row, w) in words.iter().enumerate() {
            prop_assert_eq!(col.decode(col.codes[row]), w.as_str());
        }
        let distinct: std::collections::HashSet<&String> = words.iter().collect();
        prop_assert_eq!(col.dict_len(), distinct.len());
        prop_assert!(col.codes.iter().all(|&c| (c as usize) < col.dict_len()));
    }

    /// codes_containing returns exactly the dictionary entries that contain
    /// the needle, case-insensitively.
    #[test]
    fn contains_matches_linear_search(words in proptest::collection::vec("[a-cA-C]{1,5}", 1..40),
                                      needle in "[a-c]{1,2}") {
        let mut col = StrColumn::new();
        for w in &words {
            col.push(w);
        }
        let got: std::collections::HashSet<u32> =
            col.codes_containing(&needle).into_iter().collect();
        for code in 0..col.dict_len() as u32 {
            let matches = col.decode(code).to_lowercase().contains(&needle.to_lowercase());
            prop_assert_eq!(got.contains(&code), matches);
        }
    }
}
