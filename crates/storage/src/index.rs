//! Secondary indexes. A [`BTreeIndex`] maps an integer key to the sorted
//! list of row ids holding it — the access path behind Neo's *index scan*
//! leaves and the inner side of index nested-loop joins.

use std::collections::BTreeMap;

/// An ordered index over an integer column.
#[derive(Clone, Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<i64, Vec<u32>>,
    len: usize,
}

impl BTreeIndex {
    /// Builds an index over `values` (row id = position).
    pub fn build(values: &[i64]) -> Self {
        let mut map: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (row, &v) in values.iter().enumerate() {
            map.entry(v).or_default().push(row as u32);
        }
        BTreeIndex {
            map,
            len: values.len(),
        }
    }

    /// Row ids with key exactly `v`.
    pub fn lookup(&self, v: i64) -> &[u32] {
        self.map.get(&v).map_or(&[], |rows| rows.as_slice())
    }

    /// Row ids with key in `[lo, hi]` (inclusive).
    pub fn range(&self, lo: i64, hi: i64) -> Vec<u32> {
        let mut out = Vec::new();
        for rows in self.map.range(lo..=hi).map(|(_, r)| r) {
            out.extend_from_slice(rows);
        }
        out
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(key, row ids)` in key order — used by merge-join-style
    /// sorted access and by statistics construction.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &[u32])> {
        self.map.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_range() {
        let idx = BTreeIndex::build(&[5, 3, 5, 1, 3, 5]);
        assert_eq!(idx.lookup(5), &[0, 2, 5]);
        assert_eq!(idx.lookup(42), &[] as &[u32]);
        assert_eq!(idx.range(2, 4), vec![1, 4]);
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.len(), 6);
    }

    #[test]
    fn iter_is_key_ordered() {
        let idx = BTreeIndex::build(&[9, 1, 4]);
        let keys: Vec<i64> = idx.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 4, 9]);
    }

    #[test]
    fn empty_index() {
        let idx = BTreeIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.range(0, 100), Vec::<u32>::new());
    }
}
