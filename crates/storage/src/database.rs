//! A database: tables, foreign keys, secondary indexes, and statistics.

use crate::index::BTreeIndex;
use crate::stats::TableStats;
use crate::table::{ColumnData, Table};
use std::collections::HashMap;

/// A foreign-key edge between two tables, the raw material of the join
/// graph (paper §3.2 assumes "at most one foreign key between each
/// relation").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing table id.
    pub from_table: usize,
    /// Referencing column id (within `from_table`).
    pub from_col: usize,
    /// Referenced table id.
    pub to_table: usize,
    /// Referenced column id (within `to_table`), normally a primary key.
    pub to_col: usize,
}

/// An in-memory database with indexes and statistics.
#[derive(Clone, Debug)]
pub struct Database {
    /// Database name ("imdb", "tpch", "corp").
    pub name: String,
    /// The tables. Table ids are positions in this vector.
    pub tables: Vec<Table>,
    /// Foreign-key edges (define which equi-joins the workloads perform).
    pub foreign_keys: Vec<ForeignKey>,
    /// `(table, column)` pairs that carry a B-tree index.
    pub indexed: Vec<(usize, usize)>,
    indexes: HashMap<(usize, usize), BTreeIndex>,
    /// Per-table statistics, aligned with `tables`.
    pub stats: Vec<TableStats>,
    /// Global attribute numbering: `attr_base[t] + c` is the global id of
    /// column `c` of table `t` — used by the one-hot query encodings (§3.2).
    attr_base: Vec<usize>,
    num_attrs: usize,
}

impl Database {
    /// Assembles a database: builds statistics and the requested indexes.
    ///
    /// # Panics
    /// Panics if an indexed column is not an integer column, or if any
    /// foreign key references an out-of-range table/column.
    pub fn build(
        name: &str,
        tables: Vec<Table>,
        foreign_keys: Vec<ForeignKey>,
        indexed: Vec<(usize, usize)>,
    ) -> Self {
        for fk in &foreign_keys {
            assert!(
                fk.from_table < tables.len() && fk.to_table < tables.len(),
                "FK table range"
            );
            assert!(
                fk.from_col < tables[fk.from_table].num_cols(),
                "FK from_col range"
            );
            assert!(
                fk.to_col < tables[fk.to_table].num_cols(),
                "FK to_col range"
            );
        }
        let stats = tables.iter().map(TableStats::build).collect();
        let mut indexes = HashMap::new();
        for &(t, c) in &indexed {
            let col = &tables[t].columns[c];
            match &col.data {
                ColumnData::Int(v) => {
                    indexes.insert((t, c), BTreeIndex::build(v));
                }
                ColumnData::Str(_) => {
                    panic!("index on string column {}.{}", tables[t].name, col.name)
                }
            }
        }
        let mut attr_base = Vec::with_capacity(tables.len());
        let mut acc = 0usize;
        for t in &tables {
            attr_base.push(acc);
            acc += t.num_cols();
        }
        Database {
            name: name.to_string(),
            tables,
            foreign_keys,
            indexed,
            indexes,
            stats,
            attr_base,
            num_attrs: acc,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total attribute (column) count over all tables — the length of the
    /// one-hot column-predicate vector (§3.2).
    pub fn num_attrs(&self) -> usize {
        self.num_attrs
    }

    /// Global attribute id of `(table, column)`.
    pub fn attr_id(&self, table: usize, col: usize) -> usize {
        debug_assert!(col < self.tables[table].num_cols());
        self.attr_base[table] + col
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// Table accessor by name.
    ///
    /// # Panics
    /// Panics when absent.
    pub fn table(&self, name: &str) -> &Table {
        &self.tables[self
            .table_id(name)
            .unwrap_or_else(|| panic!("no table {name}"))]
    }

    /// The index on `(table, col)`, if one was built.
    pub fn index(&self, table: usize, col: usize) -> Option<&BTreeIndex> {
        self.indexes.get(&(table, col))
    }

    /// True when `(table, col)` has an index (i.e. an index scan is a legal
    /// access path for predicates/joins on that column).
    pub fn has_index(&self, table: usize, col: usize) -> bool {
        self.indexes.contains_key(&(table, col))
    }

    /// The foreign key joining tables `a` and `b`, in either direction.
    pub fn fk_between(&self, a: usize, b: usize) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| {
            (fk.from_table == a && fk.to_table == b) || (fk.from_table == b && fk.to_table == a)
        })
    }

    /// Total row count over all tables (dataset "size" proxy used by the
    /// row-vector training-time experiment, Fig. 17).
    pub fn total_rows(&self) -> u64 {
        self.tables.iter().map(|t| t.num_rows() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    fn small_db() -> Database {
        let a = Table::new(
            "a",
            vec![
                Column::int("id", vec![1, 2, 3]),
                Column::int("x", vec![7, 8, 9]),
            ],
        );
        let b = Table::new(
            "b",
            vec![
                Column::int("id", vec![1, 2]),
                Column::int("a_id", vec![1, 1]),
            ],
        );
        Database::build(
            "test",
            vec![a, b],
            vec![ForeignKey {
                from_table: 1,
                from_col: 1,
                to_table: 0,
                to_col: 0,
            }],
            vec![(0, 0), (1, 1)],
        )
    }

    #[test]
    fn attr_ids_are_global_and_dense() {
        let db = small_db();
        assert_eq!(db.num_attrs(), 4);
        assert_eq!(db.attr_id(0, 0), 0);
        assert_eq!(db.attr_id(0, 1), 1);
        assert_eq!(db.attr_id(1, 0), 2);
        assert_eq!(db.attr_id(1, 1), 3);
    }

    #[test]
    fn index_lookup_via_db() {
        let db = small_db();
        assert!(db.has_index(0, 0));
        assert!(!db.has_index(0, 1));
        assert_eq!(db.index(1, 1).unwrap().lookup(1), &[0, 1]);
    }

    #[test]
    fn fk_between_is_symmetric() {
        let db = small_db();
        assert!(db.fk_between(0, 1).is_some());
        assert!(db.fk_between(1, 0).is_some());
    }

    #[test]
    fn stats_built_for_each_table() {
        let db = small_db();
        assert_eq!(db.stats.len(), 2);
        assert_eq!(db.stats[0].row_count, 3);
        assert_eq!(db.total_rows(), 5);
    }
}
