#![warn(missing_docs)]
//! # neo-storage — column-store substrate for the Neo reproduction
//!
//! An in-memory, column-oriented storage layer providing everything the
//! rest of the system consumes:
//!
//! * typed [`table::Column`]s (integers + dictionary-encoded strings)
//!   assembled into [`table::Table`]s and a [`database::Database`] with
//!   foreign keys,
//! * [`index::BTreeIndex`] secondary indexes backing Neo's *index scan*
//!   access paths,
//! * [`histogram`] equi-depth histograms and MCV lists with the classic
//!   uniformity/independence assumptions (paper §3.2 "Histogram"
//!   featurization and the expert optimizer's estimator),
//! * [`datagen`] deterministic synthetic datasets standing in for IMDB
//!   (JOB), TPC-H and the proprietary Corp workload (paper §6.1); the
//!   IMDB-like and Corp-like generators plant the cross-table correlations
//!   that Neo's row-vector embeddings learn to exploit (paper §5).

pub mod database;
pub mod datagen;
pub mod histogram;
pub mod index;
pub mod stats;
pub mod table;
pub mod value;

pub use database::{Database, ForeignKey};
pub use histogram::{EquiDepthHistogram, McvStats};
pub use index::BTreeIndex;
pub use stats::{ColumnStats, TableStats};
pub use table::{Column, ColumnData, StrColumn, Table};
pub use value::{Value, ValueType};
