//! Scalar values. The reproduction supports the two types the Neo
//! evaluation workloads need: 64-bit integers (keys, years, quantities) and
//! dictionary-encoded strings (names, keywords, genres).

use std::fmt;

/// An owned scalar value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer column.
    Int,
    /// Dictionary-encoded string column.
    Str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("abc").to_string(), "'abc'");
    }

    #[test]
    fn ordering_int() {
        assert!(Value::Int(1) < Value::Int(2));
    }
}
