//! Histogram-based selectivity estimation with uniformity assumptions —
//! the "off-the-shelf histogram approach … as used by PostgreSQL and other
//! open-source systems" that the paper's *Histogram* featurization and the
//! expert optimizer's cardinality estimator rely on (§3.2, §5).

/// An equi-depth histogram over an integer column.
///
/// `bounds` holds `num_buckets + 1` boundaries; every bucket contains
/// (approximately) the same number of rows. Within a bucket, values are
/// assumed uniformly distributed — the classic assumption whose violations
/// Neo learns to work around.
#[derive(Clone, Debug)]
pub struct EquiDepthHistogram {
    bounds: Vec<i64>,
    /// Exact row count per bucket (the last bucket may be smaller).
    counts: Vec<u64>,
    total: u64,
    distinct: u64,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram with (up to) `num_buckets` buckets.
    pub fn build(values: &[i64], num_buckets: usize) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let total = sorted.len() as u64;
        let mut distinct = 0u64;
        for (i, v) in sorted.iter().enumerate() {
            if i == 0 || sorted[i - 1] != *v {
                distinct += 1;
            }
        }
        if sorted.is_empty() {
            return EquiDepthHistogram {
                bounds: vec![0, 0],
                counts: vec![0],
                total: 0,
                distinct: 0,
            };
        }
        let buckets = num_buckets.max(1).min(sorted.len());
        let depth = sorted.len().div_ceil(buckets);
        let mut bounds = vec![sorted[0]];
        let mut counts = Vec::new();
        let mut i = 0usize;
        while i < sorted.len() {
            let end = (i + depth).min(sorted.len());
            bounds.push(sorted[end - 1]);
            counts.push((end - i) as u64);
            i = end;
        }
        EquiDepthHistogram {
            bounds,
            counts,
            total,
            distinct,
        }
    }

    /// Total rows summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct values observed at build time.
    pub fn distinct(&self) -> u64 {
        self.distinct
    }

    /// Minimum value observed.
    pub fn min(&self) -> i64 {
        self.bounds[0]
    }

    /// Maximum value observed.
    pub fn max(&self) -> i64 {
        *self.bounds.last().unwrap()
    }

    /// Estimated selectivity of `col = v` (uniformity within distinct
    /// values: `1 / n_distinct`, zeroed outside the observed range).
    pub fn est_eq(&self, v: i64) -> f64 {
        if self.total == 0 || v < self.min() || v > self.max() || self.distinct == 0 {
            return 0.0;
        }
        1.0 / self.distinct as f64
    }

    /// Estimated selectivity of `col < v` via bucket interpolation.
    pub fn est_lt(&self, v: i64) -> f64 {
        if self.total == 0 || v <= self.min() {
            return 0.0;
        }
        if v > self.max() {
            return 1.0;
        }
        let mut acc = 0u64;
        for (b, &count) in self.counts.iter().enumerate() {
            let lo = self.bounds[b];
            let hi = self.bounds[b + 1];
            if v > hi {
                acc += count;
            } else {
                // Linear interpolation within the bucket.
                let width = (hi - lo).max(1) as f64;
                let frac = ((v - lo).max(0) as f64 / width).clamp(0.0, 1.0);
                return (acc as f64 + frac * count as f64) / self.total as f64;
            }
        }
        1.0
    }

    /// Estimated selectivity of `col <= v`.
    pub fn est_le(&self, v: i64) -> f64 {
        (self.est_lt(v) + self.est_eq(v)).min(1.0)
    }

    /// Estimated selectivity of `col > v`.
    pub fn est_gt(&self, v: i64) -> f64 {
        (1.0 - self.est_le(v)).max(0.0)
    }

    /// Estimated selectivity of `lo <= col <= hi`.
    pub fn est_between(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.est_le(hi) - self.est_lt(lo)).clamp(0.0, 1.0)
    }
}

/// Most-common-value statistics for a dictionary-encoded string column.
#[derive(Clone, Debug)]
pub struct McvStats {
    /// `(dictionary code, row count)` for the top-k most common values.
    entries: Vec<(u32, u64)>,
    total: u64,
    distinct: u64,
    /// Rows not covered by the MCV list.
    rest: u64,
}

impl McvStats {
    /// Builds MCV statistics from per-row dictionary codes.
    pub fn build(codes: &[u32], dict_len: usize, k: usize) -> Self {
        let mut counts = vec![0u64; dict_len];
        for &c in codes {
            counts[c as usize] += 1;
        }
        let mut pairs: Vec<(u32, u64)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        let distinct = pairs.len() as u64;
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        let covered: u64 = pairs.iter().map(|(_, c)| c).sum();
        let total = codes.len() as u64;
        McvStats {
            entries: pairs,
            total,
            distinct,
            rest: total - covered,
        }
    }

    /// Total rows summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct values observed.
    pub fn distinct(&self) -> u64 {
        self.distinct
    }

    /// Estimated selectivity of equality with the given dictionary code:
    /// exact for MCVs, uniform over the remaining distinct values otherwise.
    pub fn est_eq_code(&self, code: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if let Some(&(_, c)) = self.entries.iter().find(|(e, _)| *e == code) {
            return c as f64 / self.total as f64;
        }
        let non_mcv_distinct = self.distinct.saturating_sub(self.entries.len() as u64);
        if non_mcv_distinct == 0 {
            return 0.0;
        }
        (self.rest as f64 / non_mcv_distinct as f64) / self.total as f64
    }

    /// Estimated selectivity for a set-containment predicate (e.g. the
    /// evaluation of `ILIKE '%needle%'` after expanding to matching codes):
    /// the sum of per-code estimates. Note this still assumes per-value
    /// uniformity for non-MCV codes, so skewed "hot" keywords are badly
    /// underestimated — exactly the PostgreSQL failure mode the paper
    /// exploits.
    pub fn est_in_codes(&self, codes: &[u32]) -> f64 {
        codes
            .iter()
            .map(|&c| self.est_eq_code(c))
            .sum::<f64>()
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_lt_is_linear() {
        let values: Vec<i64> = (0..1000).collect();
        let h = EquiDepthHistogram::build(&values, 10);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.distinct(), 1000);
        let est = h.est_lt(500);
        assert!((est - 0.5).abs() < 0.02, "est = {est}");
        assert_eq!(h.est_lt(-5), 0.0);
        assert_eq!(h.est_lt(5000), 1.0);
    }

    #[test]
    fn eq_estimate_is_one_over_distinct() {
        let values: Vec<i64> = (0..100).collect();
        let h = EquiDepthHistogram::build(&values, 4);
        assert!((h.est_eq(50) - 0.01).abs() < 1e-9);
        assert_eq!(h.est_eq(-1), 0.0);
    }

    #[test]
    fn between_bounds_sane() {
        let values: Vec<i64> = (0..1000).collect();
        let h = EquiDepthHistogram::build(&values, 16);
        let est = h.est_between(250, 749);
        assert!((est - 0.5).abs() < 0.05, "est = {est}");
        assert_eq!(h.est_between(10, 5), 0.0);
    }

    #[test]
    fn skewed_histogram_underestimates_hot_value() {
        // 90% of rows are value 7 — eq estimate is 1/distinct, which is a
        // huge underestimate. This is intentional (PostgreSQL-style error).
        let mut values = vec![7i64; 900];
        values.extend(0..100);
        let h = EquiDepthHistogram::build(&values, 10);
        assert!(h.est_eq(7) < 0.02);
    }

    #[test]
    fn empty_histogram() {
        let h = EquiDepthHistogram::build(&[], 8);
        assert_eq!(h.est_eq(0), 0.0);
        assert_eq!(h.est_lt(10), 0.0);
    }

    #[test]
    fn mcv_exact_for_common_uniform_for_rare() {
        // codes: 0 appears 50x, 1 appears 30x, 2..12 appear 2x each.
        let mut codes = vec![0u32; 50];
        codes.extend(vec![1u32; 30]);
        for c in 2..12u32 {
            codes.extend(vec![c, c]);
        }
        let m = McvStats::build(&codes, 12, 2);
        assert_eq!(m.total(), 100);
        assert_eq!(m.distinct(), 12);
        assert!((m.est_eq_code(0) - 0.5).abs() < 1e-9);
        assert!((m.est_eq_code(1) - 0.3).abs() < 1e-9);
        // Non-MCV: rest = 20 rows over 10 distinct = 2 rows => 0.02.
        assert!((m.est_eq_code(5) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn mcv_in_codes_caps_at_one() {
        let codes = vec![0u32; 10];
        let m = McvStats::build(&codes, 1, 4);
        assert_eq!(m.est_in_codes(&[0, 0, 0]), 1.0);
    }
}
