//! Column-oriented tables: typed columns (integers and dictionary-encoded
//! strings) assembled into named tables.

use crate::value::{Value, ValueType};
use std::collections::HashMap;

/// A dictionary-encoded string column: each row stores a `u32` code into a
/// per-column dictionary. Dictionary encoding keeps joins, filters and the
/// word2vec corpus construction fast and allocation-free.
#[derive(Clone, Debug, Default)]
pub struct StrColumn {
    /// Per-row dictionary codes.
    pub codes: Vec<u32>,
    dict: Vec<String>,
    dict_map: HashMap<String, u32>,
}

impl StrColumn {
    /// Creates an empty string column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s` into the dictionary (if new) and appends its code.
    pub fn push(&mut self, s: &str) -> u32 {
        let code = self.intern(s);
        self.codes.push(code);
        code
    }

    /// Interns a string without appending a row; returns its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.dict_map.get(s) {
            return c;
        }
        let c = self.dict.len() as u32;
        self.dict.push(s.to_string());
        self.dict_map.insert(s.to_string(), c);
        c
    }

    /// Code for an existing dictionary entry, if present.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict_map.get(s).copied()
    }

    /// The string for a dictionary code.
    pub fn decode(&self, code: u32) -> &str {
        &self.dict[code as usize]
    }

    /// Number of distinct values in the dictionary.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// All dictionary entries, in code order.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Dictionary codes whose string contains `needle` (case-insensitive) —
    /// the evaluation of `ILIKE '%needle%'` predicates.
    pub fn codes_containing(&self, needle: &str) -> Vec<u32> {
        let lower = needle.to_lowercase();
        self.dict
            .iter()
            .enumerate()
            .filter(|(_, s)| s.to_lowercase().contains(&lower))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// The payload of a column.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 64-bit integers (keys, years, quantities, …).
    Int(Vec<i64>),
    /// Dictionary-encoded strings.
    Str(StrColumn),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Str(s) => s.codes.len(),
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn value_type(&self) -> ValueType {
        match self {
            ColumnData::Int(_) => ValueType::Int,
            ColumnData::Str(_) => ValueType::Str,
        }
    }
}

/// A named column.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Column payload.
    pub data: ColumnData,
}

impl Column {
    /// New integer column.
    pub fn int(name: &str, values: Vec<i64>) -> Self {
        Column {
            name: name.to_string(),
            data: ColumnData::Int(values),
        }
    }

    /// New string column.
    pub fn str(name: &str, values: StrColumn) -> Self {
        Column {
            name: name.to_string(),
            data: ColumnData::Str(values),
        }
    }

    /// Integer payload accessor.
    pub fn as_int(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            ColumnData::Str(_) => None,
        }
    }

    /// String payload accessor.
    pub fn as_str(&self) -> Option<&StrColumn> {
        match &self.data {
            ColumnData::Int(_) => None,
            ColumnData::Str(s) => Some(s),
        }
    }

    /// Value of row `r` as an owned [`Value`].
    pub fn value_at(&self, r: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[r]),
            ColumnData::Str(s) => Value::Str(s.decode(s.codes[r]).to_string()),
        }
    }
}

/// A named collection of equal-length columns.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (unique within its database).
    pub name: String,
    /// The columns. All have the same length.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table, checking that all columns have equal length.
    ///
    /// # Panics
    /// Panics if column lengths differ.
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.data.len();
            for c in &columns {
                assert_eq!(
                    c.data.len(),
                    n,
                    "column {} length mismatch in table {name}",
                    c.name
                );
            }
        }
        Table {
            name: name.to_string(),
            columns,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column named `name`.
    pub fn col_id(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column named `name`.
    ///
    /// # Panics
    /// Panics if absent (programming error in workload construction).
    pub fn col(&self, name: &str) -> &Column {
        &self.columns[self
            .col_id(name)
            .unwrap_or_else(|| panic!("no column {name} in {}", self.name))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_column_interning() {
        let mut c = StrColumn::new();
        let a = c.push("romance");
        let b = c.push("action");
        let a2 = c.push("romance");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.dict_len(), 2);
        assert_eq!(c.decode(a), "romance");
        assert_eq!(c.code_of("action"), Some(b));
        assert_eq!(c.code_of("horror"), None);
    }

    #[test]
    fn codes_containing_is_case_insensitive() {
        let mut c = StrColumn::new();
        c.push("True-Love-Story");
        c.push("fight club");
        c.push("loveless");
        let hits = c.codes_containing("LOVE");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn table_accessors() {
        let t = Table::new(
            "t",
            vec![
                Column::int("id", vec![1, 2, 3]),
                Column::int("x", vec![10, 20, 30]),
            ],
        );
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.col_id("x"), Some(1));
        assert_eq!(t.col("x").as_int().unwrap()[2], 30);
        assert_eq!(t.col("id").value_at(0), Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unequal_columns_panic() {
        let _ = Table::new(
            "t",
            vec![Column::int("a", vec![1]), Column::int("b", vec![1, 2])],
        );
    }
}
