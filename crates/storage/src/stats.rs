//! Per-table statistics: row counts plus per-column histograms / MCV lists.
//! These feed both the expert optimizer's cardinality estimator and Neo's
//! *Histogram* featurization.

use crate::histogram::{EquiDepthHistogram, McvStats};
use crate::table::{ColumnData, Table};

/// Default number of histogram buckets (PostgreSQL's default is 100; we use
/// a smaller value matched to the scaled-down datasets).
pub const DEFAULT_BUCKETS: usize = 64;

/// Default MCV list length.
pub const DEFAULT_MCVS: usize = 32;

/// Statistics for one column.
#[derive(Clone, Debug)]
pub enum ColumnStats {
    /// Integer column: equi-depth histogram.
    Int(EquiDepthHistogram),
    /// String column: most-common-value list.
    Str(McvStats),
}

impl ColumnStats {
    /// Distinct-value count.
    pub fn distinct(&self) -> u64 {
        match self {
            ColumnStats::Int(h) => h.distinct(),
            ColumnStats::Str(m) => m.distinct(),
        }
    }
}

/// Statistics for one table.
#[derive(Clone, Debug)]
pub struct TableStats {
    /// Number of rows in the table.
    pub row_count: u64,
    /// Per-column statistics, aligned with the table's column order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics for a table.
    pub fn build(table: &Table) -> Self {
        let columns = table
            .columns
            .iter()
            .map(|c| match &c.data {
                ColumnData::Int(v) => {
                    ColumnStats::Int(EquiDepthHistogram::build(v, DEFAULT_BUCKETS))
                }
                ColumnData::Str(s) => {
                    ColumnStats::Str(McvStats::build(&s.codes, s.dict_len(), DEFAULT_MCVS))
                }
            })
            .collect();
        TableStats {
            row_count: table.num_rows() as u64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, StrColumn};

    #[test]
    fn build_covers_all_columns() {
        let mut s = StrColumn::new();
        s.push("a");
        s.push("b");
        s.push("a");
        let t = Table::new(
            "t",
            vec![Column::int("id", vec![1, 2, 3]), Column::str("tag", s)],
        );
        let stats = TableStats::build(&t);
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.columns.len(), 2);
        assert_eq!(stats.columns[0].distinct(), 3);
        assert_eq!(stats.columns[1].distinct(), 2);
    }
}
