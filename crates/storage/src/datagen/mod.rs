//! Synthetic dataset generators standing in for the paper's three
//! evaluation databases (§6.1):
//!
//! * [`imdb`] — an IMDB-like 17-table schema with zipfian skew and
//!   *planted cross-table correlations* (genre↔keyword, country↔cast),
//!   recreating the estimator-hostile character of the Join Order
//!   Benchmark;
//! * [`tpch`] — a TPC-H-like 8-table schema with uniform, independent
//!   columns, where histogram estimators are accurate;
//! * [`corp`] — a "Corp"-like snowflake star schema with moderate skew and
//!   correlated dimensions, standing in for the proprietary 2 TB dashboard
//!   workload.
//!
//! All generation is deterministic per seed. See DESIGN.md §1 for why these
//! substitutions preserve the behaviour the paper measures.

pub mod corp;
pub mod imdb;
pub mod tpch;

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf-distributed sampler over ranks `0..n` with exponent `s`
/// (probability of rank `r` proportional to `1/(r+1)^s`), implemented with
/// a precomputed CDF and binary search. `s = 0` degenerates to uniform.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Scales a base row count by the dataset scale factor (minimum 1 row).
pub(crate) fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 should dominate noticeably under s=1.2.
        assert!(counts[0] as f64 / 20_000.0 > 0.15);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "count {c}");
        }
    }

    #[test]
    fn zipf_deterministic_per_seed() {
        let z = Zipf::new(50, 1.0);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let sa: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn scaled_has_floor_of_one() {
        assert_eq!(scaled(100, 0.001), 1);
        assert_eq!(scaled(100, 2.0), 200);
    }
}
