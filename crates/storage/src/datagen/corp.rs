//! "Corp"-like dataset generator (stands in for the paper's proprietary
//! 2 TB dashboard workload, §6.1).
//!
//! A snowflake star schema: one large `fact_sales` table with six dimension
//! FKs, two of which snowflake out to sub-dimensions. Moderate zipfian skew
//! plus planted dimension correlations (channel↔product category,
//! customer country↔sales region) give it the "real-world, correlated"
//! character of the original, at laptop scale. It is deliberately the
//! *largest* of the three datasets (mirroring JOB ≪ Corp in the paper),
//! which drives the row-vector training-time ordering in Fig. 17.

use super::{scaled, Zipf};
use crate::database::{Database, ForeignKey};
use crate::table::{Column, StrColumn, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sales channels. Channel affinity to product categories is planted.
pub const CHANNELS: [&str; 8] = [
    "online",
    "retail",
    "partner",
    "wholesale",
    "mobile",
    "catalog",
    "outlet",
    "enterprise",
];

/// Product category names.
pub const CATEGORIES: [&str; 25] = [
    "electronics",
    "apparel",
    "grocery",
    "furniture",
    "toys",
    "sports",
    "beauty",
    "automotive",
    "garden",
    "books",
    "music",
    "office",
    "jewelry",
    "footwear",
    "appliances",
    "hardware",
    "pharmacy",
    "pet",
    "baby",
    "crafts",
    "luggage",
    "outdoor",
    "seasonal",
    "software",
    "services",
];

/// Countries for customers/regions.
pub const COUNTRIES: [&str; 20] = [
    "usa",
    "canada",
    "mexico",
    "brazil",
    "uk",
    "france",
    "germany",
    "spain",
    "italy",
    "poland",
    "india",
    "china",
    "japan",
    "korea",
    "australia",
    "egypt",
    "nigeria",
    "kenya",
    "turkey",
    "uae",
];

/// Customer segments.
pub const SEGMENTS: [&str; 4] = ["consumer", "smb", "enterprise", "government"];

/// Probability that a fact row's channel matches its product's category
/// affinity channel.
const CHANNEL_AFFINITY: f64 = 0.65;
/// Probability a customer's orders route through a region of their country.
const REGION_AFFINITY: f64 = 0.8;

/// Generates the Corp-like database. `scale = 1.0` yields ≈330 k rows.
pub fn generate(scale: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_fact = scaled(300_000, scale);
    let n_customer = scaled(8_000, scale);
    let n_product = scaled(3_000, scale);
    let n_employee = scaled(500, scale);
    let n_region = 50usize;
    let n_date = 1_461usize; // four years of days

    let country_zipf = Zipf::new(COUNTRIES.len(), 0.9);
    let product_zipf = Zipf::new(n_product, 1.05);
    let customer_zipf = Zipf::new(n_customer, 0.9);
    let date_zipf = Zipf::new(n_date, 0.4);

    let country = {
        let mut s = StrColumn::new();
        for c in COUNTRIES {
            s.push(c);
        }
        Table::new(
            "country",
            vec![
                Column::int("id", (0..COUNTRIES.len() as i64).collect()),
                Column::str("name", s),
            ],
        )
    };

    let product_category = {
        let mut s = StrColumn::new();
        for c in CATEGORIES {
            s.push(c);
        }
        Table::new(
            "product_category",
            vec![
                Column::int("id", (0..CATEGORIES.len() as i64).collect()),
                Column::str("name", s),
            ],
        )
    };

    let dim_channel = {
        let mut s = StrColumn::new();
        for c in CHANNELS {
            s.push(c);
        }
        Table::new(
            "dim_channel",
            vec![
                Column::int("id", (0..CHANNELS.len() as i64).collect()),
                Column::str("name", s),
            ],
        )
    };

    let dim_date = {
        let mut years = Vec::new();
        let mut months = Vec::new();
        let mut quarters = Vec::new();
        for d in 0..n_date {
            let year = 2015 + (d / 365) as i64;
            let month = 1 + ((d % 365) / 31).min(11) as i64;
            years.push(year);
            months.push(month);
            quarters.push((month - 1) / 3 + 1);
        }
        Table::new(
            "dim_date",
            vec![
                Column::int("id", (0..n_date as i64).collect()),
                Column::int("year", years),
                Column::int("month", months),
                Column::int("quarter", quarters),
            ],
        )
    };

    // Regions snowflake to country.
    let region_country: Vec<usize> = (0..n_region)
        .map(|_| country_zipf.sample(&mut rng))
        .collect();
    let dim_region = {
        let mut names = StrColumn::new();
        let mut country_ids = Vec::new();
        for (r, &country) in region_country.iter().enumerate() {
            names.push(&format!("region_{r}"));
            country_ids.push(country as i64);
        }
        Table::new(
            "dim_region",
            vec![
                Column::int("id", (0..n_region as i64).collect()),
                Column::str("name", names),
                Column::int("country_id", country_ids),
            ],
        )
    };
    let mut regions_by_country: Vec<Vec<usize>> = vec![Vec::new(); COUNTRIES.len()];
    for (r, &c) in region_country.iter().enumerate() {
        regions_by_country[c].push(r);
    }

    // Customers: country + segment.
    let customer_country: Vec<usize> = (0..n_customer)
        .map(|_| country_zipf.sample(&mut rng))
        .collect();
    let dim_customer = {
        let mut names = StrColumn::new();
        let mut segs = StrColumn::new();
        let mut country_ids = Vec::new();
        for (c, &country) in customer_country.iter().enumerate() {
            names.push(&format!("customer_{c}"));
            segs.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]);
            country_ids.push(country as i64);
        }
        Table::new(
            "dim_customer",
            vec![
                Column::int("id", (0..n_customer as i64).collect()),
                Column::str("name", names),
                Column::str("segment", segs),
                Column::int("country_id", country_ids),
            ],
        )
    };

    // Products snowflake to category; each category has an affine channel.
    let product_category_of: Vec<usize> = {
        let cat_zipf = Zipf::new(CATEGORIES.len(), 0.8);
        (0..n_product).map(|_| cat_zipf.sample(&mut rng)).collect()
    };
    let dim_product = {
        let mut names = StrColumn::new();
        let mut cat_ids = Vec::new();
        let mut prices = Vec::new();
        for p in 0..n_product {
            names.push(&format!("{}_item_{p}", CATEGORIES[product_category_of[p]]));
            cat_ids.push(product_category_of[p] as i64);
            prices.push(rng.gen_range(5..2_000) as i64);
        }
        Table::new(
            "dim_product",
            vec![
                Column::int("id", (0..n_product as i64).collect()),
                Column::str("name", names),
                Column::int("category_id", cat_ids),
                Column::int("list_price", prices),
            ],
        )
    };
    // Channel affinity: category k prefers channel k % |CHANNELS|.
    let affine_channel = |cat: usize| cat % CHANNELS.len();

    let employee_region: Vec<usize> = (0..n_employee)
        .map(|_| rng.gen_range(0..n_region))
        .collect();
    let dim_employee = {
        let mut names = StrColumn::new();
        let mut region_ids = Vec::new();
        for (e, &region) in employee_region.iter().enumerate() {
            names.push(&format!("employee_{e}"));
            region_ids.push(region as i64);
        }
        Table::new(
            "dim_employee",
            vec![
                Column::int("id", (0..n_employee as i64).collect()),
                Column::str("name", names),
                Column::int("region_id", region_ids),
            ],
        )
    };
    let mut employees_by_region: Vec<Vec<usize>> = vec![Vec::new(); n_region];
    for (e, &r) in employee_region.iter().enumerate() {
        employees_by_region[r].push(e);
    }

    // Fact table with planted correlations.
    let fact_sales = {
        let mut date_ids = Vec::with_capacity(n_fact);
        let mut customer_ids = Vec::with_capacity(n_fact);
        let mut product_ids = Vec::with_capacity(n_fact);
        let mut region_ids = Vec::with_capacity(n_fact);
        let mut channel_ids = Vec::with_capacity(n_fact);
        let mut employee_ids = Vec::with_capacity(n_fact);
        let mut amounts = Vec::with_capacity(n_fact);
        let mut quantities = Vec::with_capacity(n_fact);
        for _ in 0..n_fact {
            let cust = customer_zipf.sample(&mut rng);
            let prod = product_zipf.sample(&mut rng);
            let cat = product_category_of[prod];
            let chan = if rng.gen_bool(CHANNEL_AFFINITY) {
                affine_channel(cat)
            } else {
                rng.gen_range(0..CHANNELS.len())
            };
            let cc = customer_country[cust];
            let region = if rng.gen_bool(REGION_AFFINITY) && !regions_by_country[cc].is_empty() {
                regions_by_country[cc][rng.gen_range(0..regions_by_country[cc].len())]
            } else {
                rng.gen_range(0..n_region)
            };
            let emp = if !employees_by_region[region].is_empty() {
                employees_by_region[region][rng.gen_range(0..employees_by_region[region].len())]
            } else {
                rng.gen_range(0..n_employee)
            };
            date_ids.push(date_zipf.sample(&mut rng) as i64);
            customer_ids.push(cust as i64);
            product_ids.push(prod as i64);
            region_ids.push(region as i64);
            channel_ids.push(chan as i64);
            employee_ids.push(emp as i64);
            amounts.push(rng.gen_range(1..5_000) as i64);
            quantities.push(rng.gen_range(1..20) as i64);
        }
        let n = date_ids.len() as i64;
        Table::new(
            "fact_sales",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("date_id", date_ids),
                Column::int("customer_id", customer_ids),
                Column::int("product_id", product_ids),
                Column::int("region_id", region_ids),
                Column::int("channel_id", channel_ids),
                Column::int("employee_id", employee_ids),
                Column::int("amount", amounts),
                Column::int("quantity", quantities),
            ],
        )
    };

    let tables = vec![
        country,          // 0
        product_category, // 1
        dim_channel,      // 2
        dim_date,         // 3
        dim_region,       // 4
        dim_customer,     // 5
        dim_product,      // 6
        dim_employee,     // 7
        fact_sales,       // 8
    ];
    let tid = |n: &str| tables.iter().position(|t| t.name == n).unwrap();
    let cid = |t: usize, n: &str| tables[t].col_id(n).unwrap();
    let fk = |ft: &str, fc: &str, tt: &str, tc: &str| {
        let (a, b) = (tid(ft), tid(tt));
        ForeignKey {
            from_table: a,
            from_col: cid(a, fc),
            to_table: b,
            to_col: cid(b, tc),
        }
    };
    let foreign_keys = vec![
        fk("dim_region", "country_id", "country", "id"),
        fk("dim_customer", "country_id", "country", "id"),
        fk("dim_product", "category_id", "product_category", "id"),
        fk("dim_employee", "region_id", "dim_region", "id"),
        fk("fact_sales", "date_id", "dim_date", "id"),
        fk("fact_sales", "customer_id", "dim_customer", "id"),
        fk("fact_sales", "product_id", "dim_product", "id"),
        fk("fact_sales", "region_id", "dim_region", "id"),
        fk("fact_sales", "channel_id", "dim_channel", "id"),
        fk("fact_sales", "employee_id", "dim_employee", "id"),
    ];

    let mut indexed: Vec<(usize, usize)> = Vec::new();
    for (t, table) in tables.iter().enumerate() {
        if let Some(c) = table.col_id("id") {
            indexed.push((t, c));
        }
    }
    for f in &foreign_keys {
        indexed.push((f.from_table, f.from_col));
    }
    indexed.sort_unstable();
    indexed.dedup();

    Database::build("corp", tables, foreign_keys, indexed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nine_tables_and_fact_is_largest() {
        let db = generate(0.02, 1);
        assert_eq!(db.num_tables(), 9);
        let fact = db.table("fact_sales").num_rows();
        for t in &db.tables {
            assert!(t.num_rows() <= fact);
        }
    }

    #[test]
    fn channel_category_correlation_is_planted() {
        let db = generate(0.05, 4);
        let fact = db.table("fact_sales");
        let prod_ids = fact.col("product_id").as_int().unwrap();
        let chan_ids = fact.col("channel_id").as_int().unwrap();
        let prod = db.table("dim_product");
        let cat_ids = prod.col("category_id").as_int().unwrap();
        // P(channel == affine(category)) should be far above 1/8.
        let mut hits = 0usize;
        for r in 0..fact.num_rows() {
            let cat = cat_ids[prod_ids[r] as usize] as usize;
            if chan_ids[r] as usize == cat % CHANNELS.len() {
                hits += 1;
            }
        }
        let rate = hits as f64 / fact.num_rows() as f64;
        assert!(rate > 0.5, "affinity rate {rate}");
    }

    #[test]
    fn corp_is_larger_than_imdb_at_equal_scale() {
        let corp = generate(0.02, 1);
        let imdb = super::super::imdb::generate(0.02, 1);
        assert!(corp.total_rows() > imdb.total_rows());
    }
}
