//! IMDB-like dataset generator (stands in for the real IMDB database used
//! by the Join Order Benchmark, paper §6.1).
//!
//! Seventeen tables mirroring the IMDB schema shape: a large `title` hub,
//! fact-like bridge tables (`cast_info`, `movie_info`, `movie_keyword`,
//! `movie_companies`, …) and small dimension tables (`kind_type`,
//! `info_type`, …).
//!
//! Two *cross-table correlations are planted* deliberately, because they
//! are what breaks independence-assumption estimators on the real IMDB
//! data (paper §5, Table 2):
//!
//! 1. **genre ↔ keyword**: every movie has a latent genre; its
//!    `movie_keyword` rows draw mostly from that genre's keyword cluster,
//!    and keyword *names* embed genre vocabulary (`love-…` keywords belong
//!    to romance movies), so `keyword ILIKE '%love%'` correlates with
//!    `movie_info.info = 'romance'`.
//! 2. **country ↔ cast**: actors are mostly cast in movies produced in
//!    their birth country, linking `name.birth_country`,
//!    `movie_info.info = '<country>'` and `company_name.country_code`
//!    across three join hops.

use super::{scaled, Zipf};
use crate::database::{Database, ForeignKey};
use crate::table::{Column, StrColumn, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The latent genres. Also the domain of `movie_info.info` rows with
/// `info_type = 'genres'`.
pub const GENRES: [&str; 10] = [
    "romance",
    "action",
    "horror",
    "comedy",
    "drama",
    "sci-fi",
    "documentary",
    "thriller",
    "adventure",
    "crime",
];

/// Production-country tokens.
pub const COUNTRIES: [&str; 15] = [
    "usa",
    "france",
    "china",
    "india",
    "uk",
    "germany",
    "japan",
    "italy",
    "spain",
    "canada",
    "korea",
    "brazil",
    "russia",
    "mexico",
    "australia",
];

/// Per-genre keyword vocabulary: keyword names embed these words, giving
/// `ILIKE '%word%'` predicates their genre affinity.
pub const GENRE_VOCAB: [[&str; 5]; 10] = [
    ["love", "romance", "wedding", "kiss", "heart"],
    ["fight", "chase", "explosion", "gun", "battle"],
    ["blood", "scream", "ghost", "zombie", "fear"],
    ["laugh", "joke", "parody", "gag", "slapstick"],
    ["family", "tears", "loss", "secret", "betrayal"],
    ["space", "robot", "alien", "future", "laser"],
    ["nature", "history", "science", "truth", "biography"],
    ["murder", "spy", "heist", "hostage", "conspiracy"],
    ["quest", "jungle", "treasure", "island", "voyage"],
    ["mafia", "police", "prison", "theft", "gang"],
];

/// `info_type` rows, by id (0-based): the paper's example query uses
/// `it.id = 3` for genres; here `genres` is id 2 (0-based), documented in
/// the workload generator.
pub const INFO_TYPES: [&str; 6] = ["budget", "votes", "genres", "rating", "runtime", "country"];

/// Probability that a movie's keyword comes from its own genre cluster.
const KEYWORD_AFFINITY: f64 = 0.75;
/// Probability that a movie's stored genre equals its latent genre.
const GENRE_FIDELITY: f64 = 0.85;
/// Probability that a cast member's birth country matches the movie's.
const CAST_COUNTRY_AFFINITY: f64 = 0.7;
/// Probability that a production company's country matches the movie's.
const COMPANY_COUNTRY_AFFINITY: f64 = 0.6;

/// Generates the IMDB-like database. `scale = 1.0` yields ≈240 k rows
/// across 17 tables; all randomness derives from `seed`.
pub fn generate(scale: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_title = scaled(12_000, scale);
    let n_keyword = scaled(2_000, scale).max(GENRES.len() * GENRE_VOCAB[0].len());
    let n_name = scaled(15_000, scale);
    let n_char = scaled(8_000, scale);
    let n_company = scaled(1_500, scale);

    let genre_zipf = Zipf::new(GENRES.len(), 0.8);
    let country_zipf = Zipf::new(COUNTRIES.len(), 1.0);
    let year_zipf = Zipf::new(90, 0.7);

    // ---- latent per-movie attributes --------------------------------
    let movie_genre: Vec<usize> = (0..n_title).map(|_| genre_zipf.sample(&mut rng)).collect();
    let movie_country: Vec<usize> = (0..n_title)
        .map(|_| country_zipf.sample(&mut rng))
        .collect();

    // ---- small dimension tables --------------------------------------
    let kind_type = {
        let kinds = [
            "movie",
            "tv_series",
            "video",
            "episode",
            "video_game",
            "short",
            "tv_movie",
        ];
        let mut s = StrColumn::new();
        for k in kinds {
            s.push(k);
        }
        Table::new(
            "kind_type",
            vec![
                Column::int("id", (0..kinds.len() as i64).collect()),
                Column::str("kind", s),
            ],
        )
    };
    let info_type = {
        let mut s = StrColumn::new();
        for k in INFO_TYPES {
            s.push(k);
        }
        Table::new(
            "info_type",
            vec![
                Column::int("id", (0..INFO_TYPES.len() as i64).collect()),
                Column::str("info", s),
            ],
        )
    };
    let role_type = {
        let roles = [
            "actor",
            "actress",
            "producer",
            "writer",
            "cinematographer",
            "composer",
            "costume",
            "director",
            "editor",
            "guest",
            "miscellaneous",
            "production_designer",
        ];
        let mut s = StrColumn::new();
        for r in roles {
            s.push(r);
        }
        Table::new(
            "role_type",
            vec![
                Column::int("id", (0..roles.len() as i64).collect()),
                Column::str("role", s),
            ],
        )
    };
    let link_type = {
        let links = [
            "follows",
            "followed_by",
            "remake_of",
            "remade_as",
            "references",
            "referenced_in",
            "spoofs",
            "spoofed_in",
            "features",
            "featured_in",
            "spin_off_from",
            "spin_off",
            "version_of",
            "similar_to",
            "edited_into",
            "edited_from",
            "alternate_language",
            "unknown",
        ];
        let mut s = StrColumn::new();
        for l in links {
            s.push(l);
        }
        Table::new(
            "link_type",
            vec![
                Column::int("id", (0..links.len() as i64).collect()),
                Column::str("link", s),
            ],
        )
    };
    let company_type = {
        let kinds = [
            "distributors",
            "production_companies",
            "special_effects",
            "miscellaneous",
        ];
        let mut s = StrColumn::new();
        for k in kinds {
            s.push(k);
        }
        Table::new(
            "company_type",
            vec![
                Column::int("id", (0..kinds.len() as i64).collect()),
                Column::str("kind", s),
            ],
        )
    };

    // ---- title -------------------------------------------------------
    let kind_zipf = Zipf::new(7, 1.0);
    let title = {
        let mut titles = StrColumn::new();
        let mut kind_ids = Vec::with_capacity(n_title);
        let mut years = Vec::with_capacity(n_title);
        for m in 0..n_title {
            titles.push(&format!("{}_film_{m}", GENRE_VOCAB[movie_genre[m]][m % 5]));
            kind_ids.push(kind_zipf.sample(&mut rng) as i64);
            years.push(2019 - year_zipf.sample(&mut rng) as i64);
        }
        Table::new(
            "title",
            vec![
                Column::int("id", (0..n_title as i64).collect()),
                Column::int("kind_id", kind_ids),
                Column::int("production_year", years),
                Column::str("title", titles),
            ],
        )
    };

    // ---- keyword: names carry genre vocabulary ------------------------
    // Keyword k has affinity genre k % 10; its name embeds a vocab word of
    // that genre, so `%love%` matches only romance-cluster keywords.
    let keyword = {
        let mut s = StrColumn::new();
        for k in 0..n_keyword {
            let g = k % GENRES.len();
            let w = GENRE_VOCAB[g][(k / GENRES.len()) % 5];
            s.push(&format!("{w}-tag-{k}"));
        }
        Table::new(
            "keyword",
            vec![
                Column::int("id", (0..n_keyword as i64).collect()),
                Column::str("keyword", s),
            ],
        )
    };
    // Per-genre keyword clusters + intra-cluster popularity skew.
    let cluster: Vec<Vec<usize>> = (0..GENRES.len())
        .map(|g| (0..n_keyword).filter(|k| k % GENRES.len() == g).collect())
        .collect();
    let cluster_zipf: Vec<Zipf> = cluster.iter().map(|c| Zipf::new(c.len(), 1.1)).collect();
    let any_keyword_zipf = Zipf::new(n_keyword, 0.5);

    // ---- name (persons) ----------------------------------------------
    let person_country: Vec<usize> = (0..n_name).map(|_| country_zipf.sample(&mut rng)).collect();
    let name = {
        let mut names = StrColumn::new();
        let mut birth = StrColumn::new();
        for p in 0..n_name {
            names.push(&format!("person_{p}"));
            birth.push(COUNTRIES[person_country[p]]);
        }
        Table::new(
            "name",
            vec![
                Column::int("id", (0..n_name as i64).collect()),
                Column::str("name", names),
                Column::str("birth_country", birth),
            ],
        )
    };
    let mut persons_by_country: Vec<Vec<usize>> = vec![Vec::new(); COUNTRIES.len()];
    for (p, &c) in person_country.iter().enumerate() {
        persons_by_country[c].push(p);
    }

    let char_name = {
        let mut s = StrColumn::new();
        for c in 0..n_char {
            s.push(&format!("character_{c}"));
        }
        Table::new(
            "char_name",
            vec![
                Column::int("id", (0..n_char as i64).collect()),
                Column::str("name", s),
            ],
        )
    };

    // ---- company_name: country correlated with the movies it produces -
    let company_country: Vec<usize> = (0..n_company)
        .map(|_| country_zipf.sample(&mut rng))
        .collect();
    let company_name = {
        let mut names = StrColumn::new();
        let mut cc = StrColumn::new();
        for c in 0..n_company {
            names.push(&format!("studio_{c}"));
            cc.push(COUNTRIES[company_country[c]]);
        }
        Table::new(
            "company_name",
            vec![
                Column::int("id", (0..n_company as i64).collect()),
                Column::str("name", names),
                Column::str("country_code", cc),
            ],
        )
    };
    let mut companies_by_country: Vec<Vec<usize>> = vec![Vec::new(); COUNTRIES.len()];
    for (c, &cc) in company_country.iter().enumerate() {
        companies_by_country[cc].push(c);
    }

    // ---- movie_info: one 'genres' + one 'country' + one 'rating' row per
    // movie. The stored genre equals the latent genre with high fidelity.
    let genres_type_id = 2i64; // INFO_TYPES[2] == "genres"
    let country_type_id = 5i64; // INFO_TYPES[5] == "country"
    let rating_type_id = 3i64;
    let movie_info = {
        let mut movie_ids = Vec::new();
        let mut type_ids = Vec::new();
        let mut infos = StrColumn::new();
        for m in 0..n_title {
            let g = if rng.gen_bool(GENRE_FIDELITY) {
                movie_genre[m]
            } else {
                rng.gen_range(0..GENRES.len())
            };
            movie_ids.push(m as i64);
            type_ids.push(genres_type_id);
            infos.push(GENRES[g]);

            movie_ids.push(m as i64);
            type_ids.push(country_type_id);
            infos.push(COUNTRIES[movie_country[m]]);

            movie_ids.push(m as i64);
            type_ids.push(rating_type_id);
            infos.push(&format!(
                "{}.{}",
                rng.gen_range(1..10),
                rng.gen_range(0..10)
            ));
        }
        let n = movie_ids.len() as i64;
        Table::new(
            "movie_info",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("movie_id", movie_ids),
                Column::int("info_type_id", type_ids),
                Column::str("info", infos),
            ],
        )
    };

    // ---- movie_keyword: 3 keywords per movie, genre-affine -------------
    let movie_keyword = {
        let mut movie_ids = Vec::new();
        let mut keyword_ids = Vec::new();
        for (m, &g) in movie_genre.iter().enumerate() {
            for _ in 0..3 {
                let k = if rng.gen_bool(KEYWORD_AFFINITY) {
                    cluster[g][cluster_zipf[g].sample(&mut rng)]
                } else {
                    any_keyword_zipf.sample(&mut rng)
                };
                movie_ids.push(m as i64);
                keyword_ids.push(k as i64);
            }
        }
        let n = movie_ids.len() as i64;
        Table::new(
            "movie_keyword",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("movie_id", movie_ids),
                Column::int("keyword_id", keyword_ids),
            ],
        )
    };

    // ---- cast_info: 5 credits per movie, country-affine casting --------
    let role_zipf = Zipf::new(12, 1.0);
    let cast_info = {
        let mut movie_ids = Vec::new();
        let mut person_ids = Vec::new();
        let mut role_ids = Vec::new();
        let mut char_ids = Vec::new();
        for (m, &c) in movie_country.iter().enumerate() {
            for _ in 0..5 {
                let p = if rng.gen_bool(CAST_COUNTRY_AFFINITY) && !persons_by_country[c].is_empty()
                {
                    persons_by_country[c][rng.gen_range(0..persons_by_country[c].len())]
                } else {
                    rng.gen_range(0..n_name)
                };
                movie_ids.push(m as i64);
                person_ids.push(p as i64);
                role_ids.push(role_zipf.sample(&mut rng) as i64);
                char_ids.push(rng.gen_range(0..n_char) as i64);
            }
        }
        let n = movie_ids.len() as i64;
        Table::new(
            "cast_info",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("movie_id", movie_ids),
                Column::int("person_id", person_ids),
                Column::int("role_id", role_ids),
                Column::int("char_id", char_ids),
            ],
        )
    };

    // ---- movie_companies ----------------------------------------------
    let ctype_zipf = Zipf::new(4, 0.8);
    let movie_companies = {
        let mut movie_ids = Vec::new();
        let mut company_ids = Vec::new();
        let mut type_ids = Vec::new();
        for (m, &c) in movie_country.iter().enumerate() {
            let count = 1 + usize::from(rng.gen_bool(0.5));
            for _ in 0..count {
                let comp = if rng.gen_bool(COMPANY_COUNTRY_AFFINITY)
                    && !companies_by_country[c].is_empty()
                {
                    companies_by_country[c][rng.gen_range(0..companies_by_country[c].len())]
                } else {
                    rng.gen_range(0..n_company)
                };
                movie_ids.push(m as i64);
                company_ids.push(comp as i64);
                type_ids.push(ctype_zipf.sample(&mut rng) as i64);
            }
        }
        let n = movie_ids.len() as i64;
        Table::new(
            "movie_companies",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("movie_id", movie_ids),
                Column::int("company_id", company_ids),
                Column::int("company_type_id", type_ids),
            ],
        )
    };

    // ---- aka_title ------------------------------------------------------
    let aka_title = {
        let mut movie_ids = Vec::new();
        let mut titles = StrColumn::new();
        for m in 0..n_title {
            if rng.gen_bool(0.3) {
                movie_ids.push(m as i64);
                titles.push(&format!("aka_{m}"));
            }
        }
        let n = movie_ids.len() as i64;
        Table::new(
            "aka_title",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("movie_id", movie_ids),
                Column::str("title", titles),
            ],
        )
    };

    // ---- person_info -----------------------------------------------------
    let person_info = {
        let mut person_ids = Vec::new();
        let mut type_ids = Vec::new();
        let mut infos = StrColumn::new();
        for p in 0..n_name {
            // A 'birthplace-like' row correlated with birth country, plus a
            // noise row.
            person_ids.push(p as i64);
            type_ids.push(country_type_id);
            infos.push(COUNTRIES[person_country[p]]);
            person_ids.push(p as i64);
            type_ids.push(rating_type_id);
            infos.push(&format!("{}", 150 + (p % 50)));
        }
        let n = person_ids.len() as i64;
        Table::new(
            "person_info",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("person_id", person_ids),
                Column::int("info_type_id", type_ids),
                Column::str("info", infos),
            ],
        )
    };

    // ---- movie_link: links stay within genre 80% of the time ------------
    let mut movies_by_genre: Vec<Vec<usize>> = vec![Vec::new(); GENRES.len()];
    for (m, &g) in movie_genre.iter().enumerate() {
        movies_by_genre[g].push(m);
    }
    let movie_link = {
        let mut movie_ids = Vec::new();
        let mut linked_ids = Vec::new();
        let mut type_ids = Vec::new();
        for (m, &g) in movie_genre.iter().enumerate() {
            if rng.gen_bool(0.25) {
                let linked = if rng.gen_bool(0.8) && movies_by_genre[g].len() > 1 {
                    movies_by_genre[g][rng.gen_range(0..movies_by_genre[g].len())]
                } else {
                    rng.gen_range(0..n_title)
                };
                movie_ids.push(m as i64);
                linked_ids.push(linked as i64);
                type_ids.push(rng.gen_range(0..18) as i64);
            }
        }
        let n = movie_ids.len() as i64;
        Table::new(
            "movie_link",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("movie_id", movie_ids),
                Column::int("linked_movie_id", linked_ids),
                Column::int("link_type_id", type_ids),
            ],
        )
    };

    let tables = vec![
        kind_type,       // 0
        info_type,       // 1
        role_type,       // 2
        link_type,       // 3
        company_type,    // 4
        title,           // 5
        keyword,         // 6
        name,            // 7
        char_name,       // 8
        company_name,    // 9
        movie_info,      // 10
        movie_keyword,   // 11
        cast_info,       // 12
        movie_companies, // 13
        aka_title,       // 14
        person_info,     // 15
        movie_link,      // 16
    ];

    let tid = |n: &str| tables.iter().position(|t| t.name == n).unwrap();
    let cid = |t: usize, n: &str| tables[t].col_id(n).unwrap();
    let fk = |ft: &str, fc: &str, tt: &str, tc: &str| {
        let (a, b) = (tid(ft), tid(tt));
        ForeignKey {
            from_table: a,
            from_col: cid(a, fc),
            to_table: b,
            to_col: cid(b, tc),
        }
    };
    let foreign_keys = vec![
        fk("title", "kind_id", "kind_type", "id"),
        fk("movie_info", "movie_id", "title", "id"),
        fk("movie_info", "info_type_id", "info_type", "id"),
        fk("movie_keyword", "movie_id", "title", "id"),
        fk("movie_keyword", "keyword_id", "keyword", "id"),
        fk("cast_info", "movie_id", "title", "id"),
        fk("cast_info", "person_id", "name", "id"),
        fk("cast_info", "role_id", "role_type", "id"),
        fk("cast_info", "char_id", "char_name", "id"),
        fk("movie_companies", "movie_id", "title", "id"),
        fk("movie_companies", "company_id", "company_name", "id"),
        fk("movie_companies", "company_type_id", "company_type", "id"),
        fk("aka_title", "movie_id", "title", "id"),
        fk("person_info", "person_id", "name", "id"),
        fk("person_info", "info_type_id", "info_type", "id"),
        fk("movie_link", "movie_id", "title", "id"),
        fk("movie_link", "link_type_id", "link_type", "id"),
    ];

    // Index every primary key and every FK column.
    let mut indexed: Vec<(usize, usize)> = Vec::new();
    for (t, table) in tables.iter().enumerate() {
        if let Some(c) = table.col_id("id") {
            indexed.push((t, c));
        }
    }
    for f in &foreign_keys {
        indexed.push((f.from_table, f.from_col));
    }
    indexed.sort_unstable();
    indexed.dedup();

    Database::build("imdb", tables, foreign_keys, indexed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Database {
        generate(0.05, 42)
    }

    #[test]
    fn has_seventeen_tables() {
        let db = tiny();
        assert_eq!(db.num_tables(), 17);
        for name in [
            "title",
            "cast_info",
            "movie_info",
            "movie_keyword",
            "keyword",
            "name",
        ] {
            assert!(db.table_id(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.05, 7);
        let b = generate(0.05, 7);
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table("title").col("production_year").as_int().unwrap();
        let tb = b.table("title").col("production_year").as_int().unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn foreign_keys_reference_valid_rows() {
        let db = tiny();
        for fk in &db.foreign_keys {
            let from = db.tables[fk.from_table].columns[fk.from_col]
                .as_int()
                .unwrap();
            let to = db.tables[fk.to_table].columns[fk.to_col].as_int().unwrap();
            let max_to = *to.iter().max().unwrap();
            for &v in from {
                assert!(
                    v >= 0 && v <= max_to,
                    "dangling FK value {v} in {}",
                    db.tables[fk.from_table].name
                );
            }
        }
    }

    #[test]
    fn genre_keyword_correlation_is_planted() {
        // Movies tagged 'romance' should carry 'love-*' keywords far more
        // often than 'fight-*' keywords.
        let db = generate(0.2, 3);
        let mi = db.table("movie_info");
        let infos = mi.col("info").as_str().unwrap();
        let type_ids = mi.col("info_type_id").as_int().unwrap();
        let movie_ids = mi.col("movie_id").as_int().unwrap();
        let romance = infos.code_of("romance").unwrap();
        let mut romance_movies = std::collections::HashSet::new();
        for r in 0..mi.num_rows() {
            if type_ids[r] == 2 && infos.codes[r] == romance {
                romance_movies.insert(movie_ids[r]);
            }
        }
        let kw = db.table("keyword").col("keyword").as_str().unwrap();
        let love_codes: std::collections::HashSet<u32> =
            kw.codes_containing("love").into_iter().collect();
        let fight_codes: std::collections::HashSet<u32> =
            kw.codes_containing("fight").into_iter().collect();
        let mk = db.table("movie_keyword");
        let mk_movie = mk.col("movie_id").as_int().unwrap();
        let mk_kw = mk.col("keyword_id").as_int().unwrap();
        let (mut love_hits, mut fight_hits) = (0usize, 0usize);
        for r in 0..mk.num_rows() {
            if romance_movies.contains(&mk_movie[r]) {
                // Keyword strings are unique and pushed in id order, so a
                // keyword's dict code equals its row id equals its id.
                let kid = mk_kw[r] as u32;
                if love_codes.contains(&kid) {
                    love_hits += 1;
                }
                if fight_codes.contains(&kid) {
                    fight_hits += 1;
                }
            }
        }
        assert!(
            love_hits > 3 * fight_hits.max(1),
            "love {love_hits} vs fight {fight_hits} in romance movies"
        );
    }

    #[test]
    fn cast_country_correlation_is_planted() {
        let db = generate(0.2, 3);
        // For movies produced in 'france', cast birth country should be
        // 'france' much more often than the base rate of france actors.
        let mi = db.table("movie_info");
        let infos = mi.col("info").as_str().unwrap();
        let type_ids = mi.col("info_type_id").as_int().unwrap();
        let movie_ids = mi.col("movie_id").as_int().unwrap();
        let france = infos.code_of("france").unwrap();
        let mut fr_movies = std::collections::HashSet::new();
        for r in 0..mi.num_rows() {
            if type_ids[r] == 5 && infos.codes[r] == france {
                fr_movies.insert(movie_ids[r]);
            }
        }
        let names = db.table("name");
        let birth = names.col("birth_country").as_str().unwrap();
        let fr_code = birth.code_of("france").unwrap();
        let base_rate =
            birth.codes.iter().filter(|&&c| c == fr_code).count() as f64 / names.num_rows() as f64;
        let ci = db.table("cast_info");
        let ci_movie = ci.col("movie_id").as_int().unwrap();
        let ci_person = ci.col("person_id").as_int().unwrap();
        let (mut fr_cast, mut total) = (0usize, 0usize);
        for r in 0..ci.num_rows() {
            if fr_movies.contains(&ci_movie[r]) {
                total += 1;
                if birth.codes[ci_person[r] as usize] == fr_code {
                    fr_cast += 1;
                }
            }
        }
        let rate = fr_cast as f64 / total.max(1) as f64;
        assert!(
            rate > 3.0 * base_rate,
            "conditional {rate} vs base {base_rate}"
        );
    }

    #[test]
    fn all_fk_columns_are_indexed() {
        let db = tiny();
        for fk in &db.foreign_keys {
            assert!(db.has_index(fk.from_table, fk.from_col));
            assert!(db.has_index(fk.to_table, fk.to_col));
        }
    }
}
