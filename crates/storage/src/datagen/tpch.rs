//! TPC-H-like dataset generator (stands in for TPC-H SF10, paper §6.1).
//!
//! The eight-table TPC-H schema with *uniform, independent* column values —
//! by design the one evaluation dataset where histogram estimators with
//! uniformity assumptions are accurate, so traditional optimizers are
//! already near-optimal and Neo does not win (paper Fig. 9/10, TPC-H rows).

use super::scaled;
use crate::database::{Database, ForeignKey};
use crate::table::{Column, StrColumn, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Market segments (uniformly distributed, as in TPC-H).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Part type words.
pub const PART_TYPES: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Generates the TPC-H-like database. `scale = 1.0` yields ≈130 k rows.
pub fn generate(scale: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_supplier = scaled(1_000, scale);
    let n_customer = scaled(7_500, scale);
    let n_part = scaled(10_000, scale);
    let n_partsupp = n_part * 4;
    let n_orders = scaled(15_000, scale);
    let n_lineitem = n_orders * 4;

    let region = {
        let names = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
        let mut s = StrColumn::new();
        for n in names {
            s.push(n);
        }
        Table::new(
            "region",
            vec![Column::int("id", (0..5).collect()), Column::str("name", s)],
        )
    };

    let nation = {
        let mut names = StrColumn::new();
        let mut region_ids = Vec::new();
        for n in 0..25 {
            names.push(&format!("NATION_{n}"));
            region_ids.push((n % 5) as i64);
        }
        Table::new(
            "nation",
            vec![
                Column::int("id", (0..25).collect()),
                Column::str("name", names),
                Column::int("region_id", region_ids),
            ],
        )
    };

    let supplier = {
        let mut names = StrColumn::new();
        let mut nation_ids = Vec::new();
        let mut balances = Vec::new();
        for sid in 0..n_supplier {
            names.push(&format!("Supplier#{sid:09}"));
            nation_ids.push(rng.gen_range(0..25) as i64);
            balances.push(rng.gen_range(-999..10_000));
        }
        Table::new(
            "supplier",
            vec![
                Column::int("id", (0..n_supplier as i64).collect()),
                Column::str("name", names),
                Column::int("nation_id", nation_ids),
                Column::int("acctbal", balances),
            ],
        )
    };

    let customer = {
        let mut names = StrColumn::new();
        let mut segments = StrColumn::new();
        let mut nation_ids = Vec::new();
        let mut balances = Vec::new();
        for cid in 0..n_customer {
            names.push(&format!("Customer#{cid:09}"));
            segments.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]);
            nation_ids.push(rng.gen_range(0..25) as i64);
            balances.push(rng.gen_range(-999..10_000));
        }
        Table::new(
            "customer",
            vec![
                Column::int("id", (0..n_customer as i64).collect()),
                Column::str("name", names),
                Column::str("mktsegment", segments),
                Column::int("nation_id", nation_ids),
                Column::int("acctbal", balances),
            ],
        )
    };

    let part = {
        let mut names = StrColumn::new();
        let mut types = StrColumn::new();
        let mut sizes = Vec::new();
        let mut prices = Vec::new();
        for pid in 0..n_part {
            names.push(&format!("part_{pid}"));
            types.push(&format!(
                "{} {}",
                PART_TYPES[rng.gen_range(0..PART_TYPES.len())],
                ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
                    [rng.gen_range(0..5usize)]
            ));
            sizes.push(rng.gen_range(1..51) as i64);
            prices.push(rng.gen_range(900..2_100) as i64);
        }
        Table::new(
            "part",
            vec![
                Column::int("id", (0..n_part as i64).collect()),
                Column::str("name", names),
                Column::str("type", types),
                Column::int("size", sizes),
                Column::int("retailprice", prices),
            ],
        )
    };

    let partsupp = {
        let mut part_ids = Vec::new();
        let mut supp_ids = Vec::new();
        let mut qtys = Vec::new();
        let mut costs = Vec::new();
        for p in 0..n_part {
            for s in 0..4 {
                part_ids.push(p as i64);
                supp_ids.push(((p + s * (n_supplier / 4 + 1)) % n_supplier) as i64);
                qtys.push(rng.gen_range(1..10_000) as i64);
                costs.push(rng.gen_range(100..100_000) as i64);
            }
        }
        let n = part_ids.len() as i64;
        Table::new(
            "partsupp",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("part_id", part_ids),
                Column::int("supp_id", supp_ids),
                Column::int("availqty", qtys),
                Column::int("supplycost", costs),
            ],
        )
    };
    debug_assert_eq!(n_partsupp, n_part * 4);

    let orders = {
        let mut cust_ids = Vec::new();
        let mut dates = Vec::new();
        let mut totals = Vec::new();
        let mut prios = StrColumn::new();
        for _ in 0..n_orders {
            cust_ids.push(rng.gen_range(0..n_customer) as i64);
            dates.push(rng.gen_range(19_920_101..19_981_231) as i64);
            totals.push(rng.gen_range(1_000..500_000) as i64);
            prios.push(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]);
        }
        Table::new(
            "orders",
            vec![
                Column::int("id", (0..n_orders as i64).collect()),
                Column::int("cust_id", cust_ids),
                Column::int("orderdate", dates),
                Column::int("totalprice", totals),
                Column::str("orderpriority", prios),
            ],
        )
    };

    let lineitem = {
        let mut order_ids = Vec::new();
        let mut part_ids = Vec::new();
        let mut supp_ids = Vec::new();
        let mut qtys = Vec::new();
        let mut prices = Vec::new();
        let mut discounts = Vec::new();
        let mut modes = StrColumn::new();
        for o in 0..n_orders {
            for _ in 0..4 {
                order_ids.push(o as i64);
                part_ids.push(rng.gen_range(0..n_part) as i64);
                supp_ids.push(rng.gen_range(0..n_supplier) as i64);
                qtys.push(rng.gen_range(1..51) as i64);
                prices.push(rng.gen_range(900..105_000) as i64);
                discounts.push(rng.gen_range(0..11) as i64);
                modes.push(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]);
            }
        }
        let n = order_ids.len() as i64;
        Table::new(
            "lineitem",
            vec![
                Column::int("id", (0..n).collect()),
                Column::int("order_id", order_ids),
                Column::int("part_id", part_ids),
                Column::int("supp_id", supp_ids),
                Column::int("quantity", qtys),
                Column::int("extendedprice", prices),
                Column::int("discount", discounts),
                Column::str("shipmode", modes),
            ],
        )
    };
    debug_assert_eq!(n_lineitem, n_orders * 4);

    let tables = vec![
        region, nation, supplier, customer, part, partsupp, orders, lineitem,
    ];
    let tid = |n: &str| tables.iter().position(|t| t.name == n).unwrap();
    let cid = |t: usize, n: &str| tables[t].col_id(n).unwrap();
    let fk = |ft: &str, fc: &str, tt: &str, tc: &str| {
        let (a, b) = (tid(ft), tid(tt));
        ForeignKey {
            from_table: a,
            from_col: cid(a, fc),
            to_table: b,
            to_col: cid(b, tc),
        }
    };
    let foreign_keys = vec![
        fk("nation", "region_id", "region", "id"),
        fk("supplier", "nation_id", "nation", "id"),
        fk("customer", "nation_id", "nation", "id"),
        fk("partsupp", "part_id", "part", "id"),
        fk("partsupp", "supp_id", "supplier", "id"),
        fk("orders", "cust_id", "customer", "id"),
        fk("lineitem", "order_id", "orders", "id"),
        fk("lineitem", "part_id", "part", "id"),
        fk("lineitem", "supp_id", "supplier", "id"),
    ];

    let mut indexed: Vec<(usize, usize)> = Vec::new();
    for (t, table) in tables.iter().enumerate() {
        if let Some(c) = table.col_id("id") {
            indexed.push((t, c));
        }
    }
    for f in &foreign_keys {
        indexed.push((f.from_table, f.from_col));
    }
    indexed.sort_unstable();
    indexed.dedup();

    Database::build("tpch", tables, foreign_keys, indexed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_eight_tables() {
        let db = generate(0.05, 1);
        assert_eq!(db.num_tables(), 8);
        for n in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(db.table_id(n).is_some());
        }
    }

    #[test]
    fn lineitem_is_largest() {
        let db = generate(0.1, 1);
        let li = db.table("lineitem").num_rows();
        for t in &db.tables {
            assert!(t.num_rows() <= li);
        }
    }

    #[test]
    fn quantity_is_uniform() {
        // Uniformity is the point of this dataset: chi-square-ish sanity
        // check that quantity values 1..=50 are roughly equally common.
        let db = generate(0.5, 9);
        let q = db.table("lineitem").col("quantity").as_int().unwrap();
        let mut counts = vec![0usize; 51];
        for &v in q {
            counts[v as usize] += 1;
        }
        let expected = q.len() as f64 / 50.0;
        for (v, &count) in counts.iter().enumerate().skip(1) {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.35, "quantity {v} deviates {dev}");
        }
    }

    #[test]
    fn fks_reference_valid_rows() {
        let db = generate(0.05, 1);
        for fkey in &db.foreign_keys {
            let from = db.tables[fkey.from_table].columns[fkey.from_col]
                .as_int()
                .unwrap();
            let n_to = db.tables[fkey.to_table].num_rows() as i64;
            assert!(from.iter().all(|&v| v >= 0 && v < n_to));
        }
    }
}
