//! A real tuple-at-a-time executor for physical plans: hash join, sort-merge
//! join, (index-)nested-loop join, table and index scans.
//!
//! The executor materializes intermediate results as row-id tuples and is
//! used to validate the cardinality oracle, to power the examples, and to
//! cross-check that all three join algorithms produce identical results.
//! (The reinforcement-learning loop scores plans with the deterministic
//! latency model instead — see DESIGN.md §1 — so this executor's speed is
//! not on the training hot path.)

use crate::filter::filter_table;
use neo_query::{JoinOp, PlanNode, Query, ScanType};
use neo_storage::Database;
use std::collections::HashMap;

/// A materialized intermediate result: tuples of row ids, one per covered
/// relation, stored flat with stride `rels.len()`.
#[derive(Clone, Debug)]
pub struct Chunk {
    /// Relation indexes covered (query-relative), in tuple order.
    pub rels: Vec<usize>,
    data: Vec<u32>,
}

impl Chunk {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        if self.rels.is_empty() {
            0
        } else {
            self.data.len() / self.rels.len()
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tuple accessor.
    pub fn tuple(&self, i: usize) -> &[u32] {
        let s = self.rels.len();
        &self.data[i * s..(i + 1) * s]
    }

    /// Position of relation `rel` within tuples.
    pub fn rel_pos(&self, rel: usize) -> usize {
        self.rels
            .iter()
            .position(|&r| r == rel)
            .expect("relation not in chunk")
    }
}

/// Executor errors: structurally invalid plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The plan still contains an unspecified scan.
    UnspecifiedScan(usize),
    /// An index scan was requested for a relation with no usable index.
    NoIndex(usize),
    /// A join node's inputs share no join edge (cross product).
    CrossProduct,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnspecifiedScan(r) => write!(f, "unspecified scan for relation {r}"),
            ExecError::NoIndex(r) => write!(f, "no usable index for relation {r}"),
            ExecError::CrossProduct => write!(f, "join without connecting edge"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes complete plans for one query.
pub struct Executor<'a> {
    db: &'a Database,
    query: &'a Query,
    /// Filtered base-table selection vectors, one per relation.
    filtered: Vec<Vec<u32>>,
}

/// One equi-join condition, already resolved to (relation, column) pairs
/// oriented as (left subtree, right subtree).
struct ResolvedEdge {
    left_rel: usize,
    left_col: usize,
    right_rel: usize,
    right_col: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor, evaluating all base-table predicates once.
    pub fn new(db: &'a Database, query: &'a Query) -> Self {
        let filtered = (0..query.num_relations())
            .map(|rel| filter_table(db, query, rel))
            .collect();
        Executor {
            db,
            query,
            filtered,
        }
    }

    /// Filtered row ids for a relation.
    pub fn filtered(&self, rel: usize) -> &[u32] {
        &self.filtered[rel]
    }

    /// Executes a complete plan tree, returning the materialized result.
    pub fn execute(&self, plan: &PlanNode) -> Result<Chunk, ExecError> {
        match plan {
            PlanNode::Scan { rel, scan } => self.scan(*rel, *scan),
            PlanNode::Join { op, left, right } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                let edges = self.resolve_edges(&l, &r);
                if edges.is_empty() {
                    return Err(ExecError::CrossProduct);
                }
                // For loop joins over a base index-scanned relation, use the
                // database index for probes (index nested loop).
                let use_index = matches!(
                    (op, right.as_ref()),
                    (
                        JoinOp::Loop,
                        PlanNode::Scan {
                            scan: ScanType::Index,
                            ..
                        }
                    )
                );
                let out = match op {
                    JoinOp::Hash => self.hash_join(&l, &r, &edges),
                    JoinOp::Merge => self.merge_join(&l, &r, &edges),
                    JoinOp::Loop => {
                        if use_index {
                            self.index_loop_join(&l, &r, &edges)
                        } else {
                            self.nested_loop_join(&l, &r, &edges)
                        }
                    }
                };
                Ok(out)
            }
        }
    }

    /// Executes a complete plan and returns the result cardinality.
    pub fn execute_count(&self, plan: &PlanNode) -> Result<u64, ExecError> {
        Ok(self.execute(plan)?.len() as u64)
    }

    /// Executes a complete plan and evaluates the query's aggregate.
    pub fn execute_aggregate(&self, plan: &PlanNode) -> Result<i64, ExecError> {
        let chunk = self.execute(plan)?;
        match &self.query.agg {
            neo_query::Aggregate::CountStar => Ok(chunk.len() as i64),
            neo_query::Aggregate::Sum { table, col } => {
                let rel = self
                    .query
                    .rel_of(*table)
                    .expect("aggregate over non-member table");
                let pos = chunk.rel_pos(rel);
                let vals = self.db.tables[*table].columns[*col]
                    .as_int()
                    .expect("sum over non-integer column");
                let mut acc = 0i64;
                for i in 0..chunk.len() {
                    acc += vals[chunk.tuple(i)[pos] as usize];
                }
                Ok(acc)
            }
        }
    }

    fn scan(&self, rel: usize, scan: ScanType) -> Result<Chunk, ExecError> {
        match scan {
            ScanType::Unspecified => Err(ExecError::UnspecifiedScan(rel)),
            ScanType::Table => Ok(Chunk {
                rels: vec![rel],
                data: self.filtered[rel].clone(),
            }),
            ScanType::Index => {
                // An index scan retrieves the same qualifying rows; legality
                // requires some index on a join or predicate column.
                let t = self.query.tables[rel];
                let has = (0..self.db.tables[t].num_cols()).any(|c| self.db.has_index(t, c));
                if !has {
                    return Err(ExecError::NoIndex(rel));
                }
                Ok(Chunk {
                    rels: vec![rel],
                    data: self.filtered[rel].clone(),
                })
            }
        }
    }

    /// Join-key value of tuple `i` of `chunk` on `(rel, col)`.
    fn key_value(&self, chunk: &Chunk, i: usize, rel: usize, col: usize) -> i64 {
        let t = self.query.tables[rel];
        let row = chunk.tuple(i)[chunk.rel_pos(rel)] as usize;
        self.db.tables[t].columns[col]
            .as_int()
            .expect("join on non-integer column")[row]
    }

    fn resolve_edges(&self, l: &Chunk, r: &Chunk) -> Vec<ResolvedEdge> {
        let mut out = Vec::new();
        for e in &self.query.joins {
            let (Some(a), Some(b)) = (
                self.query.rel_of(e.left_table),
                self.query.rel_of(e.right_table),
            ) else {
                continue;
            };
            let a_in_l = l.rels.contains(&a);
            let b_in_l = l.rels.contains(&b);
            let a_in_r = r.rels.contains(&a);
            let b_in_r = r.rels.contains(&b);
            if a_in_l && b_in_r {
                out.push(ResolvedEdge {
                    left_rel: a,
                    left_col: e.left_col,
                    right_rel: b,
                    right_col: e.right_col,
                });
            } else if b_in_l && a_in_r {
                out.push(ResolvedEdge {
                    left_rel: b,
                    left_col: e.right_col,
                    right_rel: a,
                    right_col: e.left_col,
                });
            }
        }
        out
    }

    fn emit(&self, l: &Chunk, r: &Chunk, li: usize, ri: usize, out: &mut Vec<u32>) {
        out.extend_from_slice(l.tuple(li));
        out.extend_from_slice(r.tuple(ri));
    }

    /// Checks the secondary (non-primary) join conditions.
    fn extra_match(
        &self,
        l: &Chunk,
        r: &Chunk,
        li: usize,
        ri: usize,
        edges: &[ResolvedEdge],
    ) -> bool {
        edges.iter().skip(1).all(|e| {
            self.key_value(l, li, e.left_rel, e.left_col)
                == self.key_value(r, ri, e.right_rel, e.right_col)
        })
    }

    fn output(&self, l: &Chunk, r: &Chunk, data: Vec<u32>) -> Chunk {
        let mut rels = l.rels.clone();
        rels.extend_from_slice(&r.rels);
        Chunk { rels, data }
    }

    fn hash_join(&self, l: &Chunk, r: &Chunk, edges: &[ResolvedEdge]) -> Chunk {
        let e0 = &edges[0];
        let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(r.len());
        for ri in 0..r.len() {
            let k = self.key_value(r, ri, e0.right_rel, e0.right_col);
            table.entry(k).or_default().push(ri as u32);
        }
        let mut data = Vec::new();
        for li in 0..l.len() {
            let k = self.key_value(l, li, e0.left_rel, e0.left_col);
            if let Some(matches) = table.get(&k) {
                for &ri in matches {
                    if self.extra_match(l, r, li, ri as usize, edges) {
                        self.emit(l, r, li, ri as usize, &mut data);
                    }
                }
            }
        }
        self.output(l, r, data)
    }

    fn merge_join(&self, l: &Chunk, r: &Chunk, edges: &[ResolvedEdge]) -> Chunk {
        let e0 = &edges[0];
        let mut lid: Vec<usize> = (0..l.len()).collect();
        let mut rid: Vec<usize> = (0..r.len()).collect();
        lid.sort_by_key(|&i| self.key_value(l, i, e0.left_rel, e0.left_col));
        rid.sort_by_key(|&i| self.key_value(r, i, e0.right_rel, e0.right_col));
        let mut data = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lid.len() && j < rid.len() {
            let lk = self.key_value(l, lid[i], e0.left_rel, e0.left_col);
            let rk = self.key_value(r, rid[j], e0.right_rel, e0.right_col);
            if lk < rk {
                i += 1;
            } else if lk > rk {
                j += 1;
            } else {
                // Find the right-side run of equal keys, join the cross of runs.
                let mut jend = j;
                while jend < rid.len()
                    && self.key_value(r, rid[jend], e0.right_rel, e0.right_col) == rk
                {
                    jend += 1;
                }
                let mut iend = i;
                while iend < lid.len()
                    && self.key_value(l, lid[iend], e0.left_rel, e0.left_col) == lk
                {
                    iend += 1;
                }
                for &li in &lid[i..iend] {
                    for &ri in &rid[j..jend] {
                        if self.extra_match(l, r, li, ri, edges) {
                            self.emit(l, r, li, ri, &mut data);
                        }
                    }
                }
                i = iend;
                j = jend;
            }
        }
        self.output(l, r, data)
    }

    fn nested_loop_join(&self, l: &Chunk, r: &Chunk, edges: &[ResolvedEdge]) -> Chunk {
        let e0 = &edges[0];
        let mut data = Vec::new();
        for li in 0..l.len() {
            let lk = self.key_value(l, li, e0.left_rel, e0.left_col);
            for ri in 0..r.len() {
                if self.key_value(r, ri, e0.right_rel, e0.right_col) == lk
                    && self.extra_match(l, r, li, ri, edges)
                {
                    self.emit(l, r, li, ri, &mut data);
                }
            }
        }
        self.output(l, r, data)
    }

    /// Index nested loop: the right side is a base relation; probe its
    /// B-tree index when one exists on the join column, else fall back to
    /// the naive loop.
    fn index_loop_join(&self, l: &Chunk, r: &Chunk, edges: &[ResolvedEdge]) -> Chunk {
        let e0 = &edges[0];
        let rt = self.query.tables[e0.right_rel];
        let Some(index) = self.db.index(rt, e0.right_col) else {
            return self.nested_loop_join(l, r, edges);
        };
        // The chunk holds the *filtered* right rows; probes must intersect.
        let mut in_chunk: HashMap<u32, u32> = HashMap::with_capacity(r.len());
        for ri in 0..r.len() {
            in_chunk.insert(r.tuple(ri)[0], ri as u32);
        }
        let mut data = Vec::new();
        for li in 0..l.len() {
            let lk = self.key_value(l, li, e0.left_rel, e0.left_col);
            for &row in index.lookup(lk) {
                if let Some(&ri) = in_chunk.get(&row) {
                    if self.extra_match(l, r, li, ri as usize, edges) {
                        self.emit(l, r, li, ri as usize, &mut data);
                    }
                }
            }
        }
        self.output(l, r, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{Aggregate, JoinEdge, PartialPlan, Predicate, QueryContext};
    use neo_storage::datagen::imdb;
    use neo_storage::{Column, ForeignKey, Table};

    fn tiny_db() -> Database {
        // a(id), b(id, a_id) with known join multiplicities.
        let a = Table::new("a", vec![Column::int("id", vec![0, 1, 2])]);
        let b = Table::new(
            "b",
            vec![
                Column::int("id", vec![0, 1, 2, 3]),
                Column::int("a_id", vec![0, 0, 1, 9]),
            ],
        );
        Database::build(
            "t",
            vec![a, b],
            vec![ForeignKey {
                from_table: 1,
                from_col: 1,
                to_table: 0,
                to_col: 0,
            }],
            vec![(0, 0), (1, 1)],
        )
    }

    fn two_rel_query() -> Query {
        Query {
            id: "q".into(),
            family: "f".into(),
            tables: vec![0, 1],
            joins: vec![JoinEdge {
                left_table: 1,
                left_col: 1,
                right_table: 0,
                right_col: 0,
            }],
            predicates: vec![],
            agg: Aggregate::CountStar,
        }
    }

    fn join_plan(op: JoinOp, ls: ScanType, rs: ScanType) -> PlanNode {
        PlanNode::Join {
            op,
            left: Box::new(PlanNode::Scan { rel: 0, scan: ls }),
            right: Box::new(PlanNode::Scan { rel: 1, scan: rs }),
        }
    }

    #[test]
    fn all_join_ops_agree_on_tiny_db() {
        let db = tiny_db();
        let q = two_rel_query();
        let ex = Executor::new(&db, &q);
        // a_id 9 dangles: expect 3 matches (0-0, 0-1, 1-2).
        for op in JoinOp::ALL {
            let n = ex
                .execute_count(&join_plan(op, ScanType::Table, ScanType::Table))
                .unwrap();
            assert_eq!(n, 3, "{op:?}");
        }
        // Index loop join (index on b.a_id) agrees too.
        let n = ex
            .execute_count(&join_plan(JoinOp::Loop, ScanType::Table, ScanType::Index))
            .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn join_orientation_does_not_change_count() {
        let db = tiny_db();
        let q = two_rel_query();
        let ex = Executor::new(&db, &q);
        let flipped = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Scan {
                rel: 1,
                scan: ScanType::Table,
            }),
            right: Box::new(PlanNode::Scan {
                rel: 0,
                scan: ScanType::Table,
            }),
        };
        assert_eq!(ex.execute_count(&flipped).unwrap(), 3);
    }

    #[test]
    fn unspecified_scan_is_rejected() {
        let db = tiny_db();
        let q = two_rel_query();
        let ex = Executor::new(&db, &q);
        let err = ex.execute_count(&join_plan(
            JoinOp::Hash,
            ScanType::Unspecified,
            ScanType::Table,
        ));
        assert_eq!(err.unwrap_err(), ExecError::UnspecifiedScan(0));
    }

    #[test]
    fn predicates_flow_into_scan() {
        let db = tiny_db();
        let mut q = two_rel_query();
        q.predicates.push(Predicate::IntCmp {
            table: 0,
            col: 0,
            op: neo_query::CmpOp::Eq,
            value: 0,
        });
        let ex = Executor::new(&db, &q);
        let n = ex
            .execute_count(&join_plan(JoinOp::Hash, ScanType::Table, ScanType::Table))
            .unwrap();
        assert_eq!(n, 2); // only a.id = 0 side remains
    }

    #[test]
    fn sum_aggregate() {
        let db = tiny_db();
        let mut q = two_rel_query();
        q.agg = Aggregate::Sum { table: 1, col: 0 };
        let ex = Executor::new(&db, &q);
        // Matching b.ids are 0, 1, 2 => sum 3.
        let s = ex
            .execute_aggregate(&join_plan(JoinOp::Merge, ScanType::Table, ScanType::Table))
            .unwrap();
        assert_eq!(s, 3);
    }

    /// On a real multi-way query, every complete plan (random walks through
    /// the children relation) must produce the same count.
    #[test]
    fn plan_shape_invariance_on_imdb() {
        use rand::{Rng, SeedableRng};
        let db = imdb::generate(0.01, 11);
        let wl = neo_query::workload::job::generate(&db, 1);
        let q = wl.queries.iter().find(|q| q.num_relations() == 4).unwrap();
        let ctx = QueryContext::new(&db, q);
        let ex = Executor::new(&db, q);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = Vec::new();
        for _ in 0..5 {
            let mut p = PartialPlan::initial(q);
            while !p.is_complete() {
                let kids = neo_query::children(&p, &ctx);
                p = kids[rng.gen_range(0..kids.len())].clone();
            }
            counts.push(ex.execute_count(p.as_complete().unwrap()).unwrap());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "counts {counts:?}");
    }
}
