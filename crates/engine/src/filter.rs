//! Predicate evaluation: applies a query's selection predicates to a base
//! table, producing the selection vector of surviving row ids.

use neo_query::{CmpOp, Predicate, Query};
use neo_storage::{ColumnData, Database};

/// Evaluates one predicate against one row.
fn row_matches(db: &Database, p: &Predicate, row: usize) -> bool {
    let col = &db.tables[p.table()].columns[p.col()];
    match (p, &col.data) {
        (Predicate::IntCmp { op, value, .. }, ColumnData::Int(v)) => {
            let x = v[row];
            match op {
                CmpOp::Eq => x == *value,
                CmpOp::Lt => x < *value,
                CmpOp::Le => x <= *value,
                CmpOp::Gt => x > *value,
                CmpOp::Ge => x >= *value,
            }
        }
        (Predicate::IntBetween { lo, hi, .. }, ColumnData::Int(v)) => {
            let x = v[row];
            x >= *lo && x <= *hi
        }
        (Predicate::StrEq { value, .. }, ColumnData::Str(s)) => match s.code_of(value) {
            Some(code) => s.codes[row] == code,
            None => false,
        },
        (Predicate::StrContains { .. }, ColumnData::Str(_)) => {
            unreachable!("StrContains is evaluated set-wise in filter_table")
        }
        _ => panic!(
            "predicate/column type mismatch on {}.{}",
            db.tables[p.table()].name,
            col.name
        ),
    }
}

/// Returns the row ids of `query.tables[rel]` that satisfy every predicate
/// the query places on that relation.
pub fn filter_table(db: &Database, query: &Query, rel: usize) -> Vec<u32> {
    let t = query.tables[rel];
    let n = db.tables[t].num_rows();
    let preds: Vec<&Predicate> = query.predicates.iter().filter(|p| p.table() == t).collect();
    if preds.is_empty() {
        return (0..n as u32).collect();
    }
    // Pre-expand StrContains predicates to dictionary-code sets.
    let mut contains_sets: Vec<(usize, Vec<bool>)> = Vec::new();
    for p in &preds {
        if let Predicate::StrContains { col, needle, .. } = p {
            let s = db.tables[t].columns[*col].as_str().unwrap_or_else(|| {
                panic!(
                    "StrContains on non-string column {}.{}",
                    db.tables[t].name, col
                )
            });
            let mut mask = vec![false; s.dict_len()];
            for code in s.codes_containing(needle) {
                mask[code as usize] = true;
            }
            contains_sets.push((*col, mask));
        }
    }
    let mut out = Vec::new();
    'rows: for row in 0..n {
        let mut ci = 0;
        for p in &preds {
            if let Predicate::StrContains { col, .. } = p {
                let s = db.tables[t].columns[*col].as_str().unwrap();
                let (_, mask) = &contains_sets[ci];
                ci += 1;
                if !mask[s.codes[row] as usize] {
                    continue 'rows;
                }
            } else if !row_matches(db, p, row) {
                continue 'rows;
            }
        }
        out.push(row as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_query::{Aggregate, JoinEdge};
    use neo_storage::{Column, ForeignKey, StrColumn, Table};

    fn test_db() -> Database {
        let mut tags = StrColumn::new();
        for t in ["love-story", "gun-fight", "true-love", "car-chase"] {
            tags.push(t);
        }
        let a = Table::new(
            "a",
            vec![
                Column::int("id", vec![0, 1, 2, 3]),
                Column::int("year", vec![1990, 2000, 2010, 2020]),
                Column::str("tag", tags),
            ],
        );
        let b = Table::new(
            "b",
            vec![
                Column::int("id", vec![0, 1]),
                Column::int("a_id", vec![0, 2]),
            ],
        );
        Database::build(
            "t",
            vec![a, b],
            vec![ForeignKey {
                from_table: 1,
                from_col: 1,
                to_table: 0,
                to_col: 0,
            }],
            vec![(0, 0), (1, 1)],
        )
    }

    fn query_with(preds: Vec<Predicate>) -> Query {
        Query {
            id: "q".into(),
            family: "f".into(),
            tables: vec![0, 1],
            joins: vec![JoinEdge {
                left_table: 1,
                left_col: 1,
                right_table: 0,
                right_col: 0,
            }],
            predicates: preds,
            agg: Aggregate::CountStar,
        }
    }

    #[test]
    fn no_predicates_returns_all_rows() {
        let db = test_db();
        let q = query_with(vec![]);
        assert_eq!(filter_table(&db, &q, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn int_range_filters() {
        let db = test_db();
        let q = query_with(vec![Predicate::IntBetween {
            table: 0,
            col: 1,
            lo: 1995,
            hi: 2015,
        }]);
        assert_eq!(filter_table(&db, &q, 0), vec![1, 2]);
    }

    #[test]
    fn int_cmp_ops() {
        let db = test_db();
        for (op, expect) in [
            (CmpOp::Eq, vec![1u32]),
            (CmpOp::Lt, vec![0]),
            (CmpOp::Le, vec![0, 1]),
            (CmpOp::Gt, vec![2, 3]),
            (CmpOp::Ge, vec![1, 2, 3]),
        ] {
            let q = query_with(vec![Predicate::IntCmp {
                table: 0,
                col: 1,
                op,
                value: 2000,
            }]);
            assert_eq!(filter_table(&db, &q, 0), expect, "{op:?}");
        }
    }

    #[test]
    fn str_contains_filters() {
        let db = test_db();
        let q = query_with(vec![Predicate::StrContains {
            table: 0,
            col: 2,
            needle: "love".into(),
        }]);
        assert_eq!(filter_table(&db, &q, 0), vec![0, 2]);
    }

    #[test]
    fn str_eq_unknown_value_matches_nothing() {
        let db = test_db();
        let q = query_with(vec![Predicate::StrEq {
            table: 0,
            col: 2,
            value: "nope".into(),
        }]);
        assert!(filter_table(&db, &q, 0).is_empty());
    }

    #[test]
    fn conjunction_of_predicates() {
        let db = test_db();
        let q = query_with(vec![
            Predicate::StrContains {
                table: 0,
                col: 2,
                needle: "love".into(),
            },
            Predicate::IntCmp {
                table: 0,
                col: 1,
                op: CmpOp::Gt,
                value: 1995,
            },
        ]);
        assert_eq!(filter_table(&db, &q, 0), vec![2]);
    }
}
