//! Engine profiles: the four execution engines the paper evaluates against
//! (PostgreSQL 11, SQLite 3.27, MS SQL Server 2017, Oracle 12c — §6.1),
//! substituted by cost-coefficient profiles over the same executor (see
//! DESIGN.md §1).
//!
//! A profile fixes per-operator cost coefficients, the working-memory
//! budget (hash builds beyond it spill), and a parallelism divisor.
//! Coefficients are in "milliseconds per row" scale so plan latencies land
//! in the 10 ms – 100 s range the paper reports.

/// The four target execution engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// PostgreSQL-like: balanced row-store executor.
    PostgresLike,
    /// SQLite-like: single-threaded, loop-join-oriented, weak hashing.
    SqliteLike,
    /// MS-SQL-Server-like: parallel, strong hash joins, large memory.
    MsSqlLike,
    /// Oracle-like: parallel, strong index access paths.
    OracleLike,
}

impl Engine {
    /// All engines, in the paper's presentation order.
    pub const ALL: [Engine; 4] = [
        Engine::PostgresLike,
        Engine::SqliteLike,
        Engine::MsSqlLike,
        Engine::OracleLike,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::PostgresLike => "PostgreSQL",
            Engine::SqliteLike => "SQLite",
            Engine::MsSqlLike => "SQL Server",
            Engine::OracleLike => "Oracle",
        }
    }

    /// The engine's cost profile.
    pub fn profile(self) -> EngineProfile {
        match self {
            Engine::PostgresLike => EngineProfile {
                engine: self,
                seq_tuple: 4e-4,
                index_probe: 2.2e-3,
                index_tuple: 6e-4,
                hash_build: 1.1e-3,
                hash_probe: 5e-4,
                sort_tuple: 9e-4,
                merge_tuple: 4.5e-4,
                nl_tuple: 2.5e-5,
                out_tuple: 2.5e-4,
                work_mem_rows: 200_000,
                spill_factor: 3.0,
                parallelism: 1.0,
                startup: 2.0,
            },
            Engine::SqliteLike => EngineProfile {
                engine: self,
                seq_tuple: 5e-4,
                index_probe: 1.8e-3,
                index_tuple: 5.5e-4,
                // SQLite's hash/merge machinery is weak relative to its
                // excellent B-tree loops.
                hash_build: 2.4e-3,
                hash_probe: 1.1e-3,
                sort_tuple: 1.6e-3,
                merge_tuple: 8e-4,
                nl_tuple: 2.0e-5,
                out_tuple: 3e-4,
                work_mem_rows: 50_000,
                spill_factor: 4.0,
                parallelism: 1.0,
                startup: 0.5,
            },
            Engine::MsSqlLike => EngineProfile {
                engine: self,
                seq_tuple: 2.4e-4,
                index_probe: 1.6e-3,
                index_tuple: 4.5e-4,
                hash_build: 6e-4,
                hash_probe: 2.8e-4,
                sort_tuple: 5.5e-4,
                merge_tuple: 2.8e-4,
                nl_tuple: 1.6e-5,
                out_tuple: 1.6e-4,
                work_mem_rows: 800_000,
                spill_factor: 2.5,
                parallelism: 2.2,
                startup: 4.0,
            },
            Engine::OracleLike => EngineProfile {
                engine: self,
                seq_tuple: 2.6e-4,
                index_probe: 1.3e-3,
                index_tuple: 3.8e-4,
                hash_build: 7e-4,
                hash_probe: 3.2e-4,
                sort_tuple: 6e-4,
                merge_tuple: 3e-4,
                nl_tuple: 1.7e-5,
                out_tuple: 1.7e-4,
                work_mem_rows: 600_000,
                spill_factor: 2.5,
                parallelism: 2.0,
                startup: 4.5,
            },
        }
    }
}

/// Per-operator cost coefficients for one engine (ms/row unless noted).
#[derive(Clone, Debug)]
pub struct EngineProfile {
    /// Which engine this profiles.
    pub engine: Engine,
    /// Sequential scan, per scanned row.
    pub seq_tuple: f64,
    /// Index probe (B-tree descent), per probe.
    pub index_probe: f64,
    /// Index scan, per retrieved row.
    pub index_tuple: f64,
    /// Hash-table build, per build row.
    pub hash_build: f64,
    /// Hash probe, per probe row.
    pub hash_probe: f64,
    /// Sort, per row per log2(rows) factor.
    pub sort_tuple: f64,
    /// Merge step of a merge join, per input row.
    pub merge_tuple: f64,
    /// Naive nested loop, per (outer × inner) pair.
    pub nl_tuple: f64,
    /// Producing one output row (any operator).
    pub out_tuple: f64,
    /// Hash builds larger than this spill.
    pub work_mem_rows: u64,
    /// Cost multiplier applied to spilled hash builds.
    pub spill_factor: f64,
    /// Divisor applied to total plan cost (intra-query parallelism).
    pub parallelism: f64,
    /// Fixed per-query startup latency (ms).
    pub startup: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_engines_have_distinct_profiles() {
        let profiles: Vec<EngineProfile> = Engine::ALL.iter().map(|e| e.profile()).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    profiles[i].hash_build != profiles[j].hash_build
                        || profiles[i].parallelism != profiles[j].parallelism,
                    "{} and {} look identical",
                    profiles[i].engine.name(),
                    profiles[j].engine.name()
                );
            }
        }
    }

    #[test]
    fn commercial_engines_are_faster_per_tuple() {
        let pg = Engine::PostgresLike.profile();
        let ms = Engine::MsSqlLike.profile();
        let ora = Engine::OracleLike.profile();
        assert!(ms.seq_tuple < pg.seq_tuple);
        assert!(ora.seq_tuple < pg.seq_tuple);
        assert!(ms.parallelism > pg.parallelism);
    }

    #[test]
    fn sqlite_prefers_loops_over_hashes() {
        let sq = Engine::SqliteLike.profile();
        let pg = Engine::PostgresLike.profile();
        assert!(sq.hash_build > pg.hash_build);
        assert!(sq.nl_tuple <= pg.nl_tuple);
    }
}
