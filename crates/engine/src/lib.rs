#![warn(missing_docs)]
//! # neo-engine — execution substrate for the Neo reproduction
//!
//! Stands in for the paper's four execution engines (PostgreSQL, SQLite,
//! MS SQL Server, Oracle — §6.1):
//!
//! * [`executor`] — a real tuple-level executor (hash / sort-merge /
//!   (index-)nested-loop joins, table & index scans) used for validation
//!   and examples;
//! * [`oracle`] — a memoized *true-cardinality oracle* computing exact
//!   intermediate-result sizes by compressed counting;
//! * [`latency`] — the deterministic plan-latency model: one costing
//!   formula consumed with true cardinalities (the RL reward, replacing
//!   wall-clock execution) or with estimates (inside the expert
//!   optimizers);
//! * [`profile`] — the four engine cost profiles.
//!
//! See DESIGN.md §1 for why this substitution preserves the behaviour the
//! paper measures.

pub mod executor;
pub mod filter;
pub mod latency;
pub mod oracle;
pub mod profile;

pub use executor::{Chunk, ExecError, Executor};
pub use filter::filter_table;
pub use latency::{
    cost_join, cost_scan, inl_avg_match, plan_latency, primary_edge, true_latency,
    CardinalityProvider, CostedNode, OracleProvider,
};
pub use oracle::CardinalityOracle;
pub use profile::{Engine, EngineProfile};
