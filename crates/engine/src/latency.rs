//! The deterministic plan-latency model.
//!
//! Latency of a complete plan = sum of per-operator costs, driven by the
//! cardinalities of every intermediate result, divided by the engine's
//! parallelism factor. Fed with *true* cardinalities from the
//! [`crate::oracle::CardinalityOracle`] it plays the role of the real
//! execution engines (the reward signal of the paper's RL loop); fed with
//! *estimated* cardinalities it becomes the cost model inside the
//! traditional expert optimizers (`neo-expert`). Using one formula for
//! both — differing only in the cardinality source — mirrors reality:
//! optimizers go wrong primarily because their cardinalities are wrong
//! (paper §6.4.3, Leis et al.).
//!
//! Cost shapes worth noting (they create the paper's phenomena):
//!
//! * naive nested loops cost `O(|L|·|R|)` — a mis-placed loop join on large
//!   inputs produces the 100–1000× blowups Leis et al. observed, which is
//!   what Neo must learn to avoid;
//! * hash builds beyond `work_mem_rows` spill and get a multiplier — hash
//!   joins with a fact table on the build side are penalized;
//! * merge joins are cheap when their inputs arrive sorted (index scans on
//!   the join column, or a lower merge join on the same key) — chains of
//!   merge joins pipeline, as in the paper's tree-convolution intuition.

use crate::oracle::CardinalityOracle;
use crate::profile::EngineProfile;
use neo_query::{JoinOp, PlanNode, Query, RelMask, ScanType};
use neo_storage::Database;

/// A source of cardinalities for plan costing.
pub trait CardinalityProvider {
    /// Cardinality of the join of the relations in `mask` (with all
    /// applicable predicates).
    fn join_card(&mut self, mask: RelMask) -> f64;
    /// Post-predicate cardinality of the single relation `rel`.
    fn base_card(&mut self, rel: usize) -> f64;
}

/// [`CardinalityProvider`] backed by the true-cardinality oracle.
pub struct OracleProvider<'a> {
    /// Database the query runs against.
    pub db: &'a Database,
    /// The query being costed.
    pub query: &'a Query,
    /// The memoized oracle.
    pub oracle: &'a mut CardinalityOracle,
}

impl CardinalityProvider for OracleProvider<'_> {
    fn join_card(&mut self, mask: RelMask) -> f64 {
        self.oracle.cardinality(self.db, self.query, mask)
    }

    fn base_card(&mut self, rel: usize) -> f64 {
        self.oracle.base_count(self.db, self.query, rel) as f64
    }
}

/// Result of costing one plan node. Public so the expert optimizers
/// (`neo-expert`) can cost joins incrementally during dynamic programming
/// with exactly the same formulas.
#[derive(Clone, Debug, PartialEq)]
pub struct CostedNode {
    /// Output cardinality.
    pub card: f64,
    /// Cumulative cost of the subtree (ms, pre-parallelism).
    pub cost: f64,
    /// Column `(table, col)` the output is sorted on, if any.
    pub order: Option<(usize, usize)>,
}

/// Costs one join step given already-costed inputs.
///
/// `inl_avg_match` must be `Some(avg rows per probe)` when the operator is
/// a loop join whose inner side is a base-relation index scan with an index
/// on the join column (index nested loop); the inner's standalone scan cost
/// is then *not* charged (probes replace it).
#[allow(clippy::too_many_arguments)]
pub fn cost_join(
    p: &EngineProfile,
    op: JoinOp,
    left: &CostedNode,
    right: &CostedNode,
    lkey: (usize, usize),
    rkey: (usize, usize),
    out_card: f64,
    inl_avg_match: Option<f64>,
) -> CostedNode {
    match op {
        JoinOp::Hash => {
            let mut build = p.hash_build * right.card;
            if right.card > p.work_mem_rows as f64 {
                build *= p.spill_factor;
            }
            let cost =
                left.cost + right.cost + build + p.hash_probe * left.card + p.out_tuple * out_card;
            CostedNode {
                card: out_card,
                cost,
                order: None,
            }
        }
        JoinOp::Merge => {
            let mut cost = left.cost + right.cost;
            if left.order != Some(lkey) {
                cost += sort_cost(p, left.card);
            }
            if right.order != Some(rkey) {
                cost += sort_cost(p, right.card);
            }
            cost += p.merge_tuple * (left.card + right.card) + p.out_tuple * out_card;
            CostedNode {
                card: out_card,
                cost,
                order: Some(lkey),
            }
        }
        JoinOp::Loop => {
            if let Some(avg_match) = inl_avg_match {
                let cost = left.cost
                    + left.card * p.index_probe
                    + p.index_tuple * left.card * avg_match
                    + p.out_tuple * out_card;
                CostedNode {
                    card: out_card,
                    cost,
                    order: left.order,
                }
            } else {
                let cost = left.cost
                    + right.cost
                    + p.nl_tuple * left.card * right.card
                    + p.out_tuple * out_card;
                CostedNode {
                    card: out_card,
                    cost,
                    order: left.order,
                }
            }
        }
    }
}

/// Costs a scan of `query.tables[rel]` with post-predicate cardinality
/// `card`.
pub fn cost_scan(
    db: &Database,
    query: &Query,
    p: &EngineProfile,
    rel: usize,
    scan: ScanType,
    card: f64,
) -> CostedNode {
    let t = query.tables[rel];
    let total_rows = db.tables[t].num_rows() as f64;
    match scan {
        ScanType::Unspecified => panic!("costing a plan with an unspecified scan"),
        ScanType::Table => CostedNode {
            card,
            cost: p.seq_tuple * total_rows,
            order: None,
        },
        ScanType::Index => {
            // Driving column: an indexed predicate column if the query has
            // one (selective retrieval), else an indexed join column (full
            // sweep, but sorted output).
            let pred_col = query
                .predicates
                .iter()
                .filter(|pr| pr.table() == t && db.has_index(t, pr.col()))
                .map(|pr| pr.col())
                .next();
            if let Some(c) = pred_col {
                CostedNode {
                    card,
                    cost: p.index_probe + p.index_tuple * card.max(1.0),
                    order: Some((t, c)),
                }
            } else {
                let join_col = query
                    .joins
                    .iter()
                    .flat_map(|e| [(e.left_table, e.left_col), (e.right_table, e.right_col)])
                    .find(|&(jt, jc)| jt == t && db.has_index(t, jc));
                match join_col {
                    Some((_, c)) => CostedNode {
                        // Full index sweep: slower per tuple than a seq scan
                        // but delivers sorted output.
                        card,
                        cost: p.index_probe + p.index_tuple * total_rows * 1.3,
                        order: Some((t, c)),
                    },
                    // No usable index: model as a (more expensive) table
                    // scan so illegal plans are never *cheaper*.
                    None => CostedNode {
                        card,
                        cost: p.seq_tuple * total_rows * 2.0,
                        order: None,
                    },
                }
            }
        }
    }
}

/// Average index-nested-loop matches per probe when `right` is a base
/// index scan joined on `rkey`; `None` when INL is not applicable.
pub fn inl_avg_match(
    db: &Database,
    query: &Query,
    right: &PlanNode,
    rkey: (usize, usize),
) -> Option<f64> {
    if let PlanNode::Scan {
        rel,
        scan: ScanType::Index,
    } = right
    {
        let (rt, rc) = rkey;
        if query.tables[*rel] == rt {
            if let Some(index) = db.index(rt, rc) {
                return Some(db.tables[rt].num_rows() as f64 / index.distinct_keys().max(1) as f64);
            }
        }
    }
    None
}

/// Costs a complete plan, returning its simulated latency in milliseconds.
///
/// # Panics
/// Panics if the plan contains unspecified scans (cost a complete plan) or
/// a join node whose inputs share no join edge.
pub fn plan_latency(
    db: &Database,
    query: &Query,
    profile: &EngineProfile,
    provider: &mut dyn CardinalityProvider,
    plan: &PlanNode,
) -> f64 {
    let info = walk(db, query, profile, provider, plan);
    info.cost / profile.parallelism + profile.startup
}

/// Convenience wrapper: true latency of `plan` on `engine` per the oracle.
pub fn true_latency(
    db: &Database,
    query: &Query,
    profile: &EngineProfile,
    oracle: &mut CardinalityOracle,
    plan: &PlanNode,
) -> f64 {
    let mut provider = OracleProvider { db, query, oracle };
    plan_latency(db, query, profile, &mut provider, plan)
}

fn walk(
    db: &Database,
    query: &Query,
    p: &EngineProfile,
    provider: &mut dyn CardinalityProvider,
    node: &PlanNode,
) -> CostedNode {
    match node {
        PlanNode::Scan { rel, scan } => {
            let card = provider.base_card(*rel);
            cost_scan(db, query, p, *rel, *scan, card)
        }
        PlanNode::Join { op, left, right } => {
            let li = walk(db, query, p, provider, left);
            // The primary join edge, oriented (left, right).
            let (lkey, rkey) = primary_edge(query, left.rel_mask(), right.rel_mask());
            let out_card = provider.join_card(node.rel_mask());
            let inl = if *op == JoinOp::Loop {
                inl_avg_match(db, query, right, rkey)
            } else {
                None
            };
            let ri = if inl.is_some() {
                // Index nested loop replaces the inner scan with probes.
                CostedNode {
                    card: provider.base_card(right_rel(right)),
                    cost: 0.0,
                    order: None,
                }
            } else {
                walk(db, query, p, provider, right)
            };
            cost_join(p, *op, &li, &ri, lkey, rkey, out_card, inl)
        }
    }
}

fn right_rel(node: &PlanNode) -> usize {
    match node {
        PlanNode::Scan { rel, .. } => *rel,
        PlanNode::Join { .. } => unreachable!("INL inner is always a scan"),
    }
}

fn sort_cost(p: &EngineProfile, n: f64) -> f64 {
    let n = n.max(2.0);
    p.sort_tuple * n * n.log2()
}

/// The first join edge connecting the two masks, oriented as
/// `((left_table, left_col), (right_table, right_col))`.
///
/// # Panics
/// Panics if no edge connects the masks (children enumeration prevents
/// such joins).
pub fn primary_edge(
    query: &Query,
    lmask: RelMask,
    rmask: RelMask,
) -> ((usize, usize), (usize, usize)) {
    for e in &query.joins {
        let (Some(a), Some(b)) = (query.rel_of(e.left_table), query.rel_of(e.right_table)) else {
            continue;
        };
        if lmask & (1 << a) != 0 && rmask & (1 << b) != 0 {
            return ((e.left_table, e.left_col), (e.right_table, e.right_col));
        }
        if lmask & (1 << b) != 0 && rmask & (1 << a) != 0 {
            return ((e.right_table, e.right_col), (e.left_table, e.left_col));
        }
    }
    panic!("no join edge between masks {lmask:#b} and {rmask:#b}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Engine;
    use neo_query::{JoinEdge, PlanNode};
    use neo_storage::datagen::imdb;

    fn setup() -> (Database, Query) {
        // Large enough that quadratic nested loops visibly dominate.
        let db = imdb::generate(0.25, 5);
        let title = db.table_id("title").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let name = db.table_id("name").unwrap();
        let mut tables = vec![title, ci, name];
        tables.sort_unstable();
        let joins = db
            .foreign_keys
            .iter()
            .filter(|fk| tables.contains(&fk.from_table) && tables.contains(&fk.to_table))
            .map(|fk| JoinEdge {
                left_table: fk.from_table,
                left_col: fk.from_col,
                right_table: fk.to_table,
                right_col: fk.to_col,
            })
            .collect();
        let q = Query {
            id: "lat".into(),
            family: "lat".into(),
            tables,
            joins,
            predicates: vec![],
            agg: Default::default(),
        };
        q.validate(&db).unwrap();
        (db, q)
    }

    fn scan(rel: usize, s: ScanType) -> Box<PlanNode> {
        Box::new(PlanNode::Scan { rel, scan: s })
    }

    #[test]
    fn naive_loop_join_is_catastrophic() {
        let (db, q) = setup();
        let mut oracle = CardinalityOracle::new();
        let profile = Engine::PostgresLike.profile();
        let ci_rel = q.rel_of(db.table_id("cast_info").unwrap()).unwrap();
        let t_rel = q.rel_of(db.table_id("title").unwrap()).unwrap();
        let n_rel = q.rel_of(db.table_id("name").unwrap()).unwrap();
        let good = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Hash,
                left: scan(ci_rel, ScanType::Table),
                right: scan(t_rel, ScanType::Table),
            }),
            right: scan(n_rel, ScanType::Table),
        };
        let bad = PlanNode::Join {
            op: JoinOp::Loop,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Loop,
                left: scan(ci_rel, ScanType::Table),
                right: scan(t_rel, ScanType::Table),
            }),
            right: scan(n_rel, ScanType::Table),
        };
        let lg = true_latency(&db, &q, &profile, &mut oracle, &good);
        let lb = true_latency(&db, &q, &profile, &mut oracle, &bad);
        assert!(lb > 20.0 * lg, "good {lg} vs bad {lb}");
    }

    #[test]
    fn index_nested_loop_beats_naive_loop() {
        let (db, q) = setup();
        let mut oracle = CardinalityOracle::new();
        let profile = Engine::PostgresLike.profile();
        let ci_rel = q.rel_of(db.table_id("cast_info").unwrap()).unwrap();
        let t_rel = q.rel_of(db.table_id("title").unwrap()).unwrap();
        let n_rel = q.rel_of(db.table_id("name").unwrap()).unwrap();
        let make = |inner_scan| PlanNode::Join {
            op: JoinOp::Loop,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Hash,
                left: scan(ci_rel, ScanType::Table),
                right: scan(t_rel, ScanType::Table),
            }),
            right: scan(n_rel, inner_scan),
        };
        let inl = true_latency(&db, &q, &profile, &mut oracle, &make(ScanType::Index));
        let nl = true_latency(&db, &q, &profile, &mut oracle, &make(ScanType::Table));
        assert!(inl < nl / 2.0, "inl {inl} vs nl {nl}");
    }

    #[test]
    fn sorted_inputs_make_merge_joins_cheaper() {
        let (db, q) = setup();
        let mut oracle = CardinalityOracle::new();
        let profile = Engine::PostgresLike.profile();
        let ci_rel = q.rel_of(db.table_id("cast_info").unwrap()).unwrap();
        let n_rel = q.rel_of(db.table_id("name").unwrap()).unwrap();
        let t_rel = q.rel_of(db.table_id("title").unwrap()).unwrap();
        // cast_info ⋈ name on person_id: index scans deliver sorted inputs.
        let sorted = PlanNode::Join {
            op: JoinOp::Merge,
            left: scan(n_rel, ScanType::Index),
            right: scan(ci_rel, ScanType::Index),
        };
        let unsorted = PlanNode::Join {
            op: JoinOp::Merge,
            left: scan(n_rel, ScanType::Table),
            right: scan(ci_rel, ScanType::Table),
        };
        let finish = |inner: PlanNode| PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(inner),
            right: scan(t_rel, ScanType::Table),
        };
        let ls = true_latency(&db, &q, &profile, &mut oracle, &finish(sorted));
        let lu = true_latency(&db, &q, &profile, &mut oracle, &finish(unsorted));
        assert!(ls < lu, "sorted {ls} vs unsorted {lu}");
    }

    #[test]
    fn commercial_engines_run_same_plan_faster() {
        let (db, q) = setup();
        let mut oracle = CardinalityOracle::new();
        let ci_rel = q.rel_of(db.table_id("cast_info").unwrap()).unwrap();
        let t_rel = q.rel_of(db.table_id("title").unwrap()).unwrap();
        let n_rel = q.rel_of(db.table_id("name").unwrap()).unwrap();
        let plan = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Hash,
                left: scan(ci_rel, ScanType::Table),
                right: scan(t_rel, ScanType::Table),
            }),
            right: scan(n_rel, ScanType::Table),
        };
        let pg = true_latency(&db, &q, &Engine::PostgresLike.profile(), &mut oracle, &plan);
        let ms = true_latency(&db, &q, &Engine::MsSqlLike.profile(), &mut oracle, &plan);
        assert!(ms < pg, "mssql {ms} vs postgres {pg}");
    }

    #[test]
    fn latency_is_deterministic() {
        let (db, q) = setup();
        let mut oracle = CardinalityOracle::new();
        let profile = Engine::OracleLike.profile();
        let ci_rel = q.rel_of(db.table_id("cast_info").unwrap()).unwrap();
        let t_rel = q.rel_of(db.table_id("title").unwrap()).unwrap();
        let n_rel = q.rel_of(db.table_id("name").unwrap()).unwrap();
        let plan = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Hash,
                left: scan(ci_rel, ScanType::Table),
                right: scan(t_rel, ScanType::Table),
            }),
            right: scan(n_rel, ScanType::Table),
        };
        let a = true_latency(&db, &q, &profile, &mut oracle, &plan);
        let b = true_latency(&db, &q, &profile, &mut oracle, &plan);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }
}
