//! The true-cardinality oracle: exact join-result sizes for any connected
//! relation subset of a query, computed by *compressed counting* and
//! memoized.
//!
//! Instead of materializing intermediate tuples, the oracle joins relations
//! one at a time while keeping only the distinct values of "live" join
//! columns (columns still needed by edges to not-yet-joined relations) with
//! multiplicity counts. For foreign-key schemas this state stays tiny, so
//! exact counts for 17-way joins cost milliseconds. The latency model
//! (see [`crate::latency`]) consumes these counts — this is what makes
//! simulated plan latencies *reflect the real data distribution*, including
//! all planted correlations (DESIGN.md §1).

use crate::filter::filter_table;
use neo_query::{Query, RelMask};
use neo_storage::Database;
use std::collections::HashMap;

/// Memoizing true-cardinality oracle.
///
/// # Examples
///
/// ```
/// use neo_engine::CardinalityOracle;
/// use neo_storage::datagen::imdb;
/// use neo_query::workload::job;
///
/// let db = imdb::generate(0.02, 1);
/// let workload = job::generate(&db, 1);
/// let q = &workload.queries[0];
/// let mut oracle = CardinalityOracle::new();
/// let full_mask = (1u64 << q.num_relations()) - 1;
/// let card = oracle.cardinality(&db, q, full_mask);
/// assert!(card >= 0.0);
/// // Second call hits the memo table.
/// let misses = oracle.misses();
/// assert_eq!(oracle.cardinality(&db, q, full_mask), card);
/// assert_eq!(oracle.misses(), misses);
/// ```
#[derive(Default)]
pub struct CardinalityOracle {
    /// (query id, relation mask) → exact cardinality.
    cache: HashMap<(String, RelMask), f64>,
    /// query id → per-relation filtered selection vectors.
    filtered: HashMap<String, Vec<Vec<u32>>>,
    /// Number of non-memoized computations (for instrumentation).
    misses: u64,
}

impl CardinalityOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cache misses so far (i.e. actual count computations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached cardinalities.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Filtered row count of a single relation.
    pub fn base_count(&mut self, db: &Database, query: &Query, rel: usize) -> u64 {
        self.ensure_filtered(db, query);
        self.filtered[&query.id][rel].len() as u64
    }

    /// Exact cardinality of joining the relations in `mask` (with all of
    /// the query's predicates on those relations applied).
    ///
    /// # Panics
    /// Panics if `mask` is empty or the induced join graph is disconnected
    /// (such subsets never appear as join-node inputs because children
    /// enumeration enforces connectivity).
    pub fn cardinality(&mut self, db: &Database, query: &Query, mask: RelMask) -> f64 {
        assert!(mask != 0, "empty relation mask");
        let key = (query.id.clone(), mask);
        if let Some(&c) = self.cache.get(&key) {
            return c;
        }
        self.ensure_filtered(db, query);
        let filtered = &self.filtered[&query.id];
        let c = count_mask(db, query, filtered, mask);
        self.misses += 1;
        self.cache.insert(key, c);
        c
    }

    fn ensure_filtered(&mut self, db: &Database, query: &Query) {
        if !self.filtered.contains_key(&query.id) {
            let f: Vec<Vec<u32>> = (0..query.num_relations())
                .map(|rel| filter_table(db, query, rel))
                .collect();
            self.filtered.insert(query.id.clone(), f);
        }
    }
}

/// Exact compressed counting over the relations of `mask`.
fn count_mask(db: &Database, query: &Query, filtered: &[Vec<u32>], mask: RelMask) -> f64 {
    let rels: Vec<usize> = (0..query.num_relations())
        .filter(|&r| mask & (1 << r) != 0)
        .collect();
    if rels.len() == 1 {
        return filtered[rels[0]].len() as f64;
    }
    // Induced edges as (rel, col, rel, col), query-relative.
    let edges: Vec<(usize, usize, usize, usize)> = query
        .joins
        .iter()
        .filter_map(|e| {
            let a = query.rel_of(e.left_table)?;
            let b = query.rel_of(e.right_table)?;
            if mask & (1 << a) != 0 && mask & (1 << b) != 0 {
                Some((a, e.left_col, b, e.right_col))
            } else {
                None
            }
        })
        .collect();
    assert!(
        !edges.is_empty(),
        "disconnected subset {mask:#b} of query {}",
        query.id
    );

    // Join order: BFS starting from the smallest filtered relation.
    let start = *rels.iter().min_by_key(|&&r| filtered[r].len()).unwrap();
    let mut order = vec![start];
    let mut joined: RelMask = 1 << start;
    while order.len() < rels.len() {
        let next = rels
            .iter()
            .copied()
            .filter(|&r| joined & (1 << r) == 0)
            .find(|&r| {
                edges.iter().any(|&(a, _, b, _)| {
                    (a == r && joined & (1 << b) != 0) || (b == r && joined & (1 << a) != 0)
                })
            })
            .expect("disconnected subset");
        order.push(next);
        joined |= 1 << next;
    }

    // Live columns of a joined set: columns appearing in edges crossing to
    // relations inside `mask` but outside the set.
    let live_cols = |set: RelMask| -> Vec<(usize, usize)> {
        let mut cols: Vec<(usize, usize)> = Vec::new();
        for &(a, ca, b, cb) in &edges {
            if set & (1 << a) != 0 && set & (1 << b) == 0 && !cols.contains(&(a, ca)) {
                cols.push((a, ca));
            }
            if set & (1 << b) != 0 && set & (1 << a) == 0 && !cols.contains(&(b, cb)) {
                cols.push((b, cb));
            }
        }
        cols
    };

    let col_data = |rel: usize, col: usize| -> &[i64] {
        db.tables[query.tables[rel]].columns[col]
            .as_int()
            .expect("join columns are integer columns")
    };

    // State: live-column value vector → multiplicity.
    let mut set: RelMask = 1 << order[0];
    let mut live = live_cols(set);
    let mut state: HashMap<Vec<i64>, f64> = HashMap::new();
    {
        let r0 = order[0];
        let cols: Vec<&[i64]> = live.iter().map(|&(rel, col)| col_data(rel, col)).collect();
        debug_assert!(live.iter().all(|&(rel, _)| rel == r0));
        for &row in &filtered[r0] {
            let key: Vec<i64> = cols.iter().map(|c| c[row as usize]).collect();
            *state.entry(key).or_insert(0.0) += 1.0;
        }
    }

    for &rj in &order[1..] {
        // Match pairs: (index into current live cols, rj column).
        let mut match_pairs: Vec<(usize, usize)> = Vec::new();
        for &(a, ca, b, cb) in &edges {
            if a == rj && set & (1 << b) != 0 {
                let idx = live
                    .iter()
                    .position(|&lc| lc == (b, cb))
                    .expect("live col missing");
                match_pairs.push((idx, ca));
            } else if b == rj && set & (1 << a) != 0 {
                let idx = live
                    .iter()
                    .position(|&lc| lc == (a, ca))
                    .expect("live col missing");
                match_pairs.push((idx, cb));
            }
        }
        debug_assert!(!match_pairs.is_empty());

        let new_set = set | (1 << rj);
        let new_live = live_cols(new_set);
        // Where each new live column's value comes from: the old key or rj.
        enum Src {
            Old(usize),
            Rj(usize),
        }
        let sources: Vec<Src> = new_live
            .iter()
            .map(|&(rel, col)| {
                if rel == rj {
                    Src::Rj(col)
                } else {
                    Src::Old(
                        live.iter()
                            .position(|&lc| lc == (rel, col))
                            .expect("live col lost"),
                    )
                }
            })
            .collect();

        // Group rj's filtered rows: match-key → (new-live-values → count).
        let match_cols: Vec<&[i64]> = match_pairs.iter().map(|&(_, c)| col_data(rj, c)).collect();
        let rj_new_cols: Vec<(usize, &[i64])> = sources
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Src::Rj(c) => Some((i, col_data(rj, *c))),
                Src::Old(_) => None,
            })
            .collect();
        let mut rj_groups: HashMap<Vec<i64>, HashMap<Vec<i64>, f64>> = HashMap::new();
        for &row in &filtered[rj] {
            let mkey: Vec<i64> = match_cols.iter().map(|c| c[row as usize]).collect();
            let nvals: Vec<i64> = rj_new_cols.iter().map(|&(_, c)| c[row as usize]).collect();
            *rj_groups
                .entry(mkey)
                .or_default()
                .entry(nvals)
                .or_insert(0.0) += 1.0;
        }

        let mut new_state: HashMap<Vec<i64>, f64> = HashMap::new();
        for (okey, cnt) in &state {
            let mkey: Vec<i64> = match_pairs.iter().map(|&(idx, _)| okey[idx]).collect();
            let Some(groups) = rj_groups.get(&mkey) else {
                continue;
            };
            for (nvals, c2) in groups {
                let mut nkey = Vec::with_capacity(sources.len());
                let mut rj_i = 0;
                for s in &sources {
                    match s {
                        Src::Old(idx) => nkey.push(okey[*idx]),
                        Src::Rj(_) => {
                            nkey.push(nvals[rj_i]);
                            rj_i += 1;
                        }
                    }
                }
                *new_state.entry(nkey).or_insert(0.0) += cnt * c2;
            }
        }
        state = new_state;
        set = new_set;
        live = new_live;
    }
    state.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use neo_query::{children, JoinOp, PartialPlan, PlanNode, QueryContext, ScanType};
    use neo_storage::datagen::{corp, imdb};

    /// The oracle must agree with brute-force execution on every subset of
    /// a real query.
    #[test]
    fn oracle_matches_executor_on_imdb_subsets() {
        let db = imdb::generate(0.01, 5);
        let wl = neo_query::workload::job::generate(&db, 2);
        let q = wl.queries.iter().find(|q| q.num_relations() == 5).unwrap();
        let mut oracle = CardinalityOracle::new();
        let ex = Executor::new(&db, q);
        let ctx = QueryContext::new(&db, q);
        // Enumerate all connected subsets via left-deep hash plans.
        let n = q.num_relations();
        for mask in 1u64..(1 << n) {
            // Check connectivity by trying to order the subset.
            let rels: Vec<usize> = (0..n).filter(|&r| mask & (1 << r) != 0).collect();
            if rels.len() < 2 {
                continue;
            }
            let mut sub_ok = true;
            {
                // connected iff BFS covers
                let adj = q.adjacency();
                let mut seen = 1u64 << rels[0];
                loop {
                    let mut grew = false;
                    for &r in &rels {
                        if seen & (1 << r) == 0 && adj[r] & seen & mask != 0 {
                            seen |= 1 << r;
                            grew = true;
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                if seen & mask != mask {
                    sub_ok = false;
                }
            }
            if !sub_ok {
                continue;
            }
            // Build any left-deep hash plan over the subset.
            let mut order: Vec<usize> = vec![rels[0]];
            let adj = q.adjacency();
            while order.len() < rels.len() {
                let nxt = rels
                    .iter()
                    .copied()
                    .find(|&r| !order.contains(&r) && order.iter().any(|&o| adj[o] & (1 << r) != 0))
                    .unwrap();
                order.push(nxt);
            }
            let mut tree = PlanNode::Scan {
                rel: order[0],
                scan: ScanType::Table,
            };
            for &r in &order[1..] {
                tree = PlanNode::Join {
                    op: JoinOp::Hash,
                    left: Box::new(tree),
                    right: Box::new(PlanNode::Scan {
                        rel: r,
                        scan: ScanType::Table,
                    }),
                };
            }
            let brute = ex.execute_count(&tree).unwrap() as f64;
            let fast = oracle.cardinality(&db, q, mask);
            assert_eq!(brute, fast, "mask {mask:#b}");
        }
        let _ = ctx;
        let _ = children(&PartialPlan::initial(q), &ctx); // smoke: children on this query works
    }

    /// Cyclic join graphs (Corp: fact→customer→country and
    /// fact→region→country) must still count exactly.
    #[test]
    fn oracle_handles_cyclic_join_graphs() {
        let db = corp::generate(0.005, 2);
        let fact = db.table_id("fact_sales").unwrap();
        let cust = db.table_id("dim_customer").unwrap();
        let reg = db.table_id("dim_region").unwrap();
        let ctry = db.table_id("country").unwrap();
        let mut tables = vec![fact, cust, reg, ctry];
        tables.sort_unstable();
        let joins: Vec<neo_query::JoinEdge> = db
            .foreign_keys
            .iter()
            .filter(|fk| tables.contains(&fk.from_table) && tables.contains(&fk.to_table))
            .map(|fk| neo_query::JoinEdge {
                left_table: fk.from_table,
                left_col: fk.from_col,
                right_table: fk.to_table,
                right_col: fk.to_col,
            })
            .collect();
        assert_eq!(joins.len(), 4, "expected a 4-edge cycle");
        let q = neo_query::Query {
            id: "cyc".into(),
            family: "cyc".into(),
            tables,
            joins,
            predicates: vec![],
            agg: Default::default(),
        };
        q.validate(&db).unwrap();
        let mut oracle = CardinalityOracle::new();
        let full = (1u64 << q.num_relations()) - 1;
        let fast = oracle.cardinality(&db, &q, full);
        // Brute force over a bushy plan with all edges honoured.
        let ex = Executor::new(&db, &q);
        let r = |t: usize| q.rel_of(t).unwrap();
        let tree = PlanNode::Join {
            op: JoinOp::Hash,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Hash,
                left: Box::new(PlanNode::Join {
                    op: JoinOp::Hash,
                    left: Box::new(PlanNode::Scan {
                        rel: r(fact),
                        scan: ScanType::Table,
                    }),
                    right: Box::new(PlanNode::Scan {
                        rel: r(cust),
                        scan: ScanType::Table,
                    }),
                }),
                right: Box::new(PlanNode::Scan {
                    rel: r(ctry),
                    scan: ScanType::Table,
                }),
            }),
            right: Box::new(PlanNode::Scan {
                rel: r(reg),
                scan: ScanType::Table,
            }),
        };
        let brute = ex.execute_count(&tree).unwrap() as f64;
        assert_eq!(fast, brute);
    }

    #[test]
    fn caching_avoids_recomputation() {
        let db = imdb::generate(0.01, 5);
        let wl = neo_query::workload::job::generate(&db, 2);
        let q = &wl.queries[0];
        let mut oracle = CardinalityOracle::new();
        let full = (1u64 << q.num_relations()) - 1;
        let a = oracle.cardinality(&db, q, full);
        let misses = oracle.misses();
        let b = oracle.cardinality(&db, q, full);
        assert_eq!(a, b);
        assert_eq!(oracle.misses(), misses);
    }

    #[test]
    fn base_count_applies_predicates() {
        let db = imdb::generate(0.01, 5);
        let wl = neo_query::workload::job::generate(&db, 2);
        let q = wl
            .queries
            .iter()
            .find(|q| !q.predicates.is_empty())
            .unwrap();
        let mut oracle = CardinalityOracle::new();
        for rel in 0..q.num_relations() {
            let t = q.tables[rel];
            let has_pred = q.predicates.iter().any(|p| p.table() == t);
            let c = oracle.base_count(&db, q, rel);
            if !has_pred {
                assert_eq!(c, db.tables[t].num_rows() as u64);
            } else {
                assert!(c <= db.tables[t].num_rows() as u64);
            }
        }
    }
}
