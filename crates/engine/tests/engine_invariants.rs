//! Engine-level invariants: cost-model monotonicity, executor agreement
//! across operators on larger data, and oracle consistency laws.

use neo_engine::{
    cost_join, cost_scan, true_latency, CardinalityOracle, CostedNode, Engine, Executor,
};
use neo_query::workload::job;
use neo_query::{children, JoinOp, PartialPlan, QueryContext, ScanType};
use neo_storage::datagen::imdb;

/// Join-subset cardinality can only shrink (or stay equal) when more
/// predicates apply — verified by comparing a query against a copy with
/// one predicate dropped.
#[test]
fn more_predicates_never_increase_cardinality() {
    let db = imdb::generate(0.05, 31);
    let wl = job::generate(&db, 31);
    let mut oracle = CardinalityOracle::new();
    for q in wl
        .queries
        .iter()
        .filter(|q| q.predicates.len() >= 2 && q.num_relations() <= 6)
        .take(8)
    {
        let full = (1u64 << q.num_relations()) - 1;
        let with = oracle.cardinality(&db, q, full);
        let mut relaxed = q.clone();
        relaxed.id = format!("{}-relaxed", q.id);
        relaxed.predicates.pop();
        let without = oracle.cardinality(&db, &relaxed, full);
        assert!(with <= without, "query {}: {with} > {without}", q.id);
    }
}

/// Cost of a scan grows with table size; cost of a hash join grows with
/// input cardinalities.
#[test]
fn cost_model_is_monotone_in_cardinality() {
    let db = imdb::generate(0.02, 31);
    let wl = job::generate(&db, 31);
    let q = &wl.queries[0];
    let p = Engine::PostgresLike.profile();
    let small = CostedNode {
        card: 100.0,
        cost: 1.0,
        order: None,
    };
    let big = CostedNode {
        card: 100_000.0,
        cost: 1.0,
        order: None,
    };
    let lkey = (q.joins[0].left_table, q.joins[0].left_col);
    let rkey = (q.joins[0].right_table, q.joins[0].right_col);
    for op in JoinOp::ALL {
        let c_small = cost_join(&p, op, &small, &small, lkey, rkey, 100.0, None);
        let c_big = cost_join(&p, op, &big, &big, lkey, rkey, 100_000.0, None);
        assert!(c_big.cost > c_small.cost, "{op:?}");
    }
    let s1 = cost_scan(&db, q, &p, 0, ScanType::Table, 10.0);
    // Scan cost is driven by physical table size, identical here, so
    // compare different relations instead.
    let sizes: Vec<f64> = (0..q.num_relations())
        .map(|r| db.tables[q.tables[r]].num_rows() as f64)
        .collect();
    let (biggest, _) = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let s2 = cost_scan(&db, q, &p, biggest, ScanType::Table, 10.0);
    if sizes[biggest] > sizes[0] {
        assert!(s2.cost > s1.cost);
    }
}

/// All three join operators agree on result cardinality for every query of
/// a workload sample (the algorithm-agnosticism of relational semantics).
#[test]
fn operators_agree_across_workload() {
    let db = imdb::generate(0.03, 31);
    let wl = job::generate(&db, 31);
    for q in wl.queries.iter().filter(|q| q.num_relations() <= 5).take(6) {
        let ex = Executor::new(&db, q);
        let ctx = QueryContext::new(&db, q);
        let mut counts = Vec::new();
        for op in JoinOp::ALL {
            // Left-deep all-`op` plan over table scans.
            let mut plan = PartialPlan::initial(q);
            while !plan.is_complete() {
                let kids = children(&plan, &ctx);
                let pick = kids
                    .iter()
                    .position(|k| {
                        k.roots.iter().all(|r| match r {
                            neo_query::PlanNode::Scan { scan, .. } => *scan != ScanType::Index,
                            neo_query::PlanNode::Join { op: o, .. } => *o == op,
                        })
                    })
                    .unwrap_or(0);
                plan = kids.into_iter().nth(pick).unwrap();
            }
            counts.push(ex.execute_count(plan.as_complete().unwrap()).unwrap());
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "query {}: {counts:?}",
            q.id
        );
    }
}

/// Engine profiles order consistently: the same plan is fastest on the
/// parallel commercial engines and slowest on SQLite.
#[test]
fn engine_ordering_is_stable() {
    let db = imdb::generate(0.05, 31);
    let wl = job::generate(&db, 31);
    let mut oracle = CardinalityOracle::new();
    let mut totals = [0.0f64; 4];
    for q in wl
        .queries
        .iter()
        .filter(|q| q.num_relations() <= 7)
        .take(10)
    {
        // A reasonable hash-join left-deep plan (first all-hash child walk).
        let ctx = QueryContext::new(&db, q);
        let mut p = PartialPlan::initial(q);
        while !p.is_complete() {
            let kids = children(&p, &ctx);
            let pick = kids
                .iter()
                .position(|k| {
                    k.roots.iter().all(|r| match r {
                        neo_query::PlanNode::Scan { scan, .. } => *scan != ScanType::Index,
                        neo_query::PlanNode::Join { op, .. } => *op == JoinOp::Hash,
                    })
                })
                .unwrap_or(0);
            p = kids.into_iter().nth(pick).unwrap();
        }
        let plan = p.as_complete().unwrap();
        for (i, engine) in Engine::ALL.iter().enumerate() {
            totals[i] += true_latency(&db, q, &engine.profile(), &mut oracle, plan);
        }
    }
    let [pg, sqlite, mssql, ora] = totals;
    assert!(mssql < pg, "mssql {mssql} vs pg {pg}");
    assert!(ora < pg, "oracle {ora} vs pg {pg}");
    assert!(pg < sqlite, "pg {pg} vs sqlite {sqlite}");
}

/// The oracle's cached results never change across repeated queries, even
/// interleaved with other queries (no cache corruption).
#[test]
fn oracle_cache_is_stable_under_interleaving() {
    let db = imdb::generate(0.03, 31);
    let wl = job::generate(&db, 31);
    let mut oracle = CardinalityOracle::new();
    let qs: Vec<_> = wl
        .queries
        .iter()
        .filter(|q| q.num_relations() <= 5)
        .take(4)
        .collect();
    let firsts: Vec<f64> = qs
        .iter()
        .map(|q| oracle.cardinality(&db, q, (1u64 << q.num_relations()) - 1))
        .collect();
    for _ in 0..3 {
        for (q, &expect) in qs.iter().zip(&firsts) {
            let got = oracle.cardinality(&db, q, (1u64 << q.num_relations()) - 1);
            assert_eq!(got, expect);
        }
    }
}
