//! Root library for the workspace examples package (intentionally thin).
