/root/repo/target/release/deps/neo_storage-dc793c2b8f037f27.d: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/release/deps/neo_storage-dc793c2b8f037f27: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/database.rs:
crates/storage/src/datagen/mod.rs:
crates/storage/src/datagen/corp.rs:
crates/storage/src/datagen/imdb.rs:
crates/storage/src/datagen/tpch.rs:
crates/storage/src/histogram.rs:
crates/storage/src/index.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
