/root/repo/target/release/deps/search_quality-4c5ec5281b774c3b.d: crates/core/tests/search_quality.rs

/root/repo/target/release/deps/search_quality-4c5ec5281b774c3b: crates/core/tests/search_quality.rs

crates/core/tests/search_quality.rs:
