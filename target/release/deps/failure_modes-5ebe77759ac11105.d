/root/repo/target/release/deps/failure_modes-5ebe77759ac11105.d: tests/failure_modes.rs

/root/repo/target/release/deps/failure_modes-5ebe77759ac11105: tests/failure_modes.rs

tests/failure_modes.rs:
