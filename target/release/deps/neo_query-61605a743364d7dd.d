/root/repo/target/release/deps/neo_query-61605a743364d7dd.d: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

/root/repo/target/release/deps/libneo_query-61605a743364d7dd.rlib: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

/root/repo/target/release/deps/libneo_query-61605a743364d7dd.rmeta: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

crates/query/src/lib.rs:
crates/query/src/explain.rs:
crates/query/src/plan.rs:
crates/query/src/predicate.rs:
crates/query/src/query.rs:
crates/query/src/workload/mod.rs:
crates/query/src/workload/corp.rs:
crates/query/src/workload/ext_job.rs:
crates/query/src/workload/job.rs:
crates/query/src/workload/tpch.rs:
