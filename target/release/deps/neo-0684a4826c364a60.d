/root/repo/target/release/deps/neo-0684a4826c364a60.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

/root/repo/target/release/deps/libneo-0684a4826c364a60.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

/root/repo/target/release/deps/libneo-0684a4826c364a60.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/experience.rs:
crates/core/src/featurize.rs:
crates/core/src/runner.rs:
crates/core/src/search.rs:
crates/core/src/value_net.rs:
