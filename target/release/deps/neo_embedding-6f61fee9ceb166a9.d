/root/repo/target/release/deps/neo_embedding-6f61fee9ceb166a9.d: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/release/deps/neo_embedding-6f61fee9ceb166a9: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

crates/embedding/src/lib.rs:
crates/embedding/src/corpus.rs:
crates/embedding/src/rvector.rs:
crates/embedding/src/word2vec.rs:
