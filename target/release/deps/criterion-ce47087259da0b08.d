/root/repo/target/release/deps/criterion-ce47087259da0b08.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ce47087259da0b08.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ce47087259da0b08.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
