/root/repo/target/release/deps/neo_expert-aa393902a4e5a498.d: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/release/deps/libneo_expert-aa393902a4e5a498.rlib: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/release/deps/libneo_expert-aa393902a4e5a498.rmeta: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

crates/expert/src/lib.rs:
crates/expert/src/cardest.rs:
crates/expert/src/greedy.rs:
crates/expert/src/native.rs:
crates/expert/src/selinger.rs:
