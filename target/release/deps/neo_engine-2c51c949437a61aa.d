/root/repo/target/release/deps/neo_engine-2c51c949437a61aa.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/release/deps/libneo_engine-2c51c949437a61aa.rlib: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/release/deps/libneo_engine-2c51c949437a61aa.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/filter.rs:
crates/engine/src/latency.rs:
crates/engine/src/oracle.rs:
crates/engine/src/profile.rs:
