/root/repo/target/release/deps/neo_repro-1653c6860998c218.d: crates/bench/src/main.rs

/root/repo/target/release/deps/neo_repro-1653c6860998c218: crates/bench/src/main.rs

crates/bench/src/main.rs:
