/root/repo/target/release/deps/end_to_end-239157e584df1c75.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-239157e584df1c75: tests/end_to_end.rs

tests/end_to_end.rs:
