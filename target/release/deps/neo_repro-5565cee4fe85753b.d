/root/repo/target/release/deps/neo_repro-5565cee4fe85753b.d: crates/bench/src/main.rs

/root/repo/target/release/deps/neo_repro-5565cee4fe85753b: crates/bench/src/main.rs

crates/bench/src/main.rs:
