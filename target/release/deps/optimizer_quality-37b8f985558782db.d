/root/repo/target/release/deps/optimizer_quality-37b8f985558782db.d: crates/expert/tests/optimizer_quality.rs

/root/repo/target/release/deps/optimizer_quality-37b8f985558782db: crates/expert/tests/optimizer_quality.rs

crates/expert/tests/optimizer_quality.rs:
