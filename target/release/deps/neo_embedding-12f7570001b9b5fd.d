/root/repo/target/release/deps/neo_embedding-12f7570001b9b5fd.d: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/release/deps/libneo_embedding-12f7570001b9b5fd.rlib: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/release/deps/libneo_embedding-12f7570001b9b5fd.rmeta: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

crates/embedding/src/lib.rs:
crates/embedding/src/corpus.rs:
crates/embedding/src/rvector.rs:
crates/embedding/src/word2vec.rs:
