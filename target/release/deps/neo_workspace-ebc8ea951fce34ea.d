/root/repo/target/release/deps/neo_workspace-ebc8ea951fce34ea.d: src/lib.rs

/root/repo/target/release/deps/libneo_workspace-ebc8ea951fce34ea.rlib: src/lib.rs

/root/repo/target/release/deps/libneo_workspace-ebc8ea951fce34ea.rmeta: src/lib.rs

src/lib.rs:
