/root/repo/target/release/deps/criterion-556d653ef313ad5a.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-556d653ef313ad5a: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
