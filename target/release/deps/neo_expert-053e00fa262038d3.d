/root/repo/target/release/deps/neo_expert-053e00fa262038d3.d: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/release/deps/libneo_expert-053e00fa262038d3.rlib: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/release/deps/libneo_expert-053e00fa262038d3.rmeta: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

crates/expert/src/lib.rs:
crates/expert/src/cardest.rs:
crates/expert/src/greedy.rs:
crates/expert/src/native.rs:
crates/expert/src/selinger.rs:
