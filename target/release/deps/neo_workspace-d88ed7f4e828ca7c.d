/root/repo/target/release/deps/neo_workspace-d88ed7f4e828ca7c.d: src/lib.rs

/root/repo/target/release/deps/neo_workspace-d88ed7f4e828ca7c: src/lib.rs

src/lib.rs:
