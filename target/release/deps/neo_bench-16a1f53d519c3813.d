/root/repo/target/release/deps/neo_bench-16a1f53d519c3813.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libneo_bench-16a1f53d519c3813.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libneo_bench-16a1f53d519c3813.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
