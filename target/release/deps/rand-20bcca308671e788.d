/root/repo/target/release/deps/rand-20bcca308671e788.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/rand-20bcca308671e788: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
