/root/repo/target/release/deps/neo_bench-40d6c43fb1602370.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/neo_bench-40d6c43fb1602370: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
