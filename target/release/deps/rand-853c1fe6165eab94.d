/root/repo/target/release/deps/rand-853c1fe6165eab94.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-853c1fe6165eab94.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-853c1fe6165eab94.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
