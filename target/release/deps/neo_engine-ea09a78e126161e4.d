/root/repo/target/release/deps/neo_engine-ea09a78e126161e4.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/release/deps/neo_engine-ea09a78e126161e4: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/filter.rs:
crates/engine/src/latency.rs:
crates/engine/src/oracle.rs:
crates/engine/src/profile.rs:
