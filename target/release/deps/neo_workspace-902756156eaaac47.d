/root/repo/target/release/deps/neo_workspace-902756156eaaac47.d: src/lib.rs

/root/repo/target/release/deps/libneo_workspace-902756156eaaac47.rlib: src/lib.rs

/root/repo/target/release/deps/libneo_workspace-902756156eaaac47.rmeta: src/lib.rs

src/lib.rs:
