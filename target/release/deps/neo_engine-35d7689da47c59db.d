/root/repo/target/release/deps/neo_engine-35d7689da47c59db.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/release/deps/libneo_engine-35d7689da47c59db.rlib: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/release/deps/libneo_engine-35d7689da47c59db.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/filter.rs:
crates/engine/src/latency.rs:
crates/engine/src/oracle.rs:
crates/engine/src/profile.rs:
