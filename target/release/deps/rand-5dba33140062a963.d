/root/repo/target/release/deps/rand-5dba33140062a963.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-5dba33140062a963.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-5dba33140062a963.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
