/root/repo/target/release/deps/proptest-f44243704c5e1302.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-f44243704c5e1302.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-f44243704c5e1302.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
