/root/repo/target/release/deps/engine_invariants-d8d3afb628d01b4c.d: crates/engine/tests/engine_invariants.rs

/root/repo/target/release/deps/engine_invariants-d8d3afb628d01b4c: crates/engine/tests/engine_invariants.rs

crates/engine/tests/engine_invariants.rs:
