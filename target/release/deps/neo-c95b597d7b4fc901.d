/root/repo/target/release/deps/neo-c95b597d7b4fc901.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

/root/repo/target/release/deps/neo-c95b597d7b4fc901: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/experience.rs:
crates/core/src/featurize.rs:
crates/core/src/runner.rs:
crates/core/src/search.rs:
crates/core/src/value_net.rs:
