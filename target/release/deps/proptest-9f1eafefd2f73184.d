/root/repo/target/release/deps/proptest-9f1eafefd2f73184.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-9f1eafefd2f73184: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
