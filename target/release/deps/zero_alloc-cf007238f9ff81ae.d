/root/repo/target/release/deps/zero_alloc-cf007238f9ff81ae.d: crates/core/tests/zero_alloc.rs

/root/repo/target/release/deps/zero_alloc-cf007238f9ff81ae: crates/core/tests/zero_alloc.rs

crates/core/tests/zero_alloc.rs:
