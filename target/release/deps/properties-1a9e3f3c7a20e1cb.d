/root/repo/target/release/deps/properties-1a9e3f3c7a20e1cb.d: crates/storage/tests/properties.rs

/root/repo/target/release/deps/properties-1a9e3f3c7a20e1cb: crates/storage/tests/properties.rs

crates/storage/tests/properties.rs:
