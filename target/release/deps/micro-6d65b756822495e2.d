/root/repo/target/release/deps/micro-6d65b756822495e2.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-6d65b756822495e2: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
