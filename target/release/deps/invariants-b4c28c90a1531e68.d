/root/repo/target/release/deps/invariants-b4c28c90a1531e68.d: tests/invariants.rs

/root/repo/target/release/deps/invariants-b4c28c90a1531e68: tests/invariants.rs

tests/invariants.rs:
