/root/repo/target/release/deps/neo_expert-fb836f58387ff0ad.d: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/release/deps/neo_expert-fb836f58387ff0ad: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

crates/expert/src/lib.rs:
crates/expert/src/cardest.rs:
crates/expert/src/greedy.rs:
crates/expert/src/native.rs:
crates/expert/src/selinger.rs:
