/root/repo/target/release/deps/embedding_quality-57ae24e5518cf5f9.d: crates/embedding/tests/embedding_quality.rs

/root/repo/target/release/deps/embedding_quality-57ae24e5518cf5f9: crates/embedding/tests/embedding_quality.rs

crates/embedding/tests/embedding_quality.rs:
