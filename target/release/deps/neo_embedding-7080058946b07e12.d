/root/repo/target/release/deps/neo_embedding-7080058946b07e12.d: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/release/deps/libneo_embedding-7080058946b07e12.rlib: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/release/deps/libneo_embedding-7080058946b07e12.rmeta: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

crates/embedding/src/lib.rs:
crates/embedding/src/corpus.rs:
crates/embedding/src/rvector.rs:
crates/embedding/src/word2vec.rs:
