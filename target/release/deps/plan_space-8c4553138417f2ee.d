/root/repo/target/release/deps/plan_space-8c4553138417f2ee.d: crates/query/tests/plan_space.rs

/root/repo/target/release/deps/plan_space-8c4553138417f2ee: crates/query/tests/plan_space.rs

crates/query/tests/plan_space.rs:
