/root/repo/target/release/deps/neo_bench-a93299978a667c33.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libneo_bench-a93299978a667c33.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libneo_bench-a93299978a667c33.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
