/root/repo/target/release/deps/proptest-3858abed152b2381.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3858abed152b2381.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3858abed152b2381.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
