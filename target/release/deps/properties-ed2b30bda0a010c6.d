/root/repo/target/release/deps/properties-ed2b30bda0a010c6.d: crates/nn/tests/properties.rs

/root/repo/target/release/deps/properties-ed2b30bda0a010c6: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
