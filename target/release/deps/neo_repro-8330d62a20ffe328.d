/root/repo/target/release/deps/neo_repro-8330d62a20ffe328.d: crates/bench/src/main.rs

/root/repo/target/release/deps/neo_repro-8330d62a20ffe328: crates/bench/src/main.rs

crates/bench/src/main.rs:
