/root/repo/target/release/examples/probe_matmul-95c2cfd40fce5f84.d: examples/probe_matmul.rs

/root/repo/target/release/examples/probe_matmul-95c2cfd40fce5f84: examples/probe_matmul.rs

examples/probe_matmul.rs:
