/root/repo/target/release/examples/engine_tour-e6ee4809b4c64a5f.d: examples/engine_tour.rs

/root/repo/target/release/examples/engine_tour-e6ee4809b4c64a5f: examples/engine_tour.rs

examples/engine_tour.rs:
