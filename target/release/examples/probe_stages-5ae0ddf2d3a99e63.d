/root/repo/target/release/examples/probe_stages-5ae0ddf2d3a99e63.d: examples/probe_stages.rs

/root/repo/target/release/examples/probe_stages-5ae0ddf2d3a99e63: examples/probe_stages.rs

examples/probe_stages.rs:
