/root/repo/target/release/examples/row_vectors-afc50fc12a3b48ab.d: examples/row_vectors.rs

/root/repo/target/release/examples/row_vectors-afc50fc12a3b48ab: examples/row_vectors.rs

examples/row_vectors.rs:
