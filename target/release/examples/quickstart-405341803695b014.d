/root/repo/target/release/examples/quickstart-405341803695b014.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-405341803695b014: examples/quickstart.rs

examples/quickstart.rs:
