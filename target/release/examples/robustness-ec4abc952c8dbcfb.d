/root/repo/target/release/examples/robustness-ec4abc952c8dbcfb.d: examples/robustness.rs

/root/repo/target/release/examples/robustness-ec4abc952c8dbcfb: examples/robustness.rs

examples/robustness.rs:
