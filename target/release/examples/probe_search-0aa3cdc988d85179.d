/root/repo/target/release/examples/probe_search-0aa3cdc988d85179.d: examples/probe_search.rs

/root/repo/target/release/examples/probe_search-0aa3cdc988d85179: examples/probe_search.rs

examples/probe_search.rs:
