/root/repo/target/release/examples/probe_matmul-d599016e33af1fac.d: examples/probe_matmul.rs

/root/repo/target/release/examples/probe_matmul-d599016e33af1fac: examples/probe_matmul.rs

examples/probe_matmul.rs:
