/root/repo/target/debug/deps/end_to_end-912d3be8b3e1db60.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-912d3be8b3e1db60: tests/end_to_end.rs

tests/end_to_end.rs:
