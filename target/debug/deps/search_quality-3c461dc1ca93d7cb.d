/root/repo/target/debug/deps/search_quality-3c461dc1ca93d7cb.d: crates/core/tests/search_quality.rs

/root/repo/target/debug/deps/search_quality-3c461dc1ca93d7cb: crates/core/tests/search_quality.rs

crates/core/tests/search_quality.rs:
