/root/repo/target/debug/deps/neo_storage-7cdfd8ad51953d70.d: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libneo_storage-7cdfd8ad51953d70.rmeta: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/database.rs:
crates/storage/src/datagen/mod.rs:
crates/storage/src/datagen/corp.rs:
crates/storage/src/datagen/imdb.rs:
crates/storage/src/datagen/tpch.rs:
crates/storage/src/histogram.rs:
crates/storage/src/index.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
