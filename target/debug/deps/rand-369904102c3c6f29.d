/root/repo/target/debug/deps/rand-369904102c3c6f29.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-369904102c3c6f29.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-369904102c3c6f29.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
