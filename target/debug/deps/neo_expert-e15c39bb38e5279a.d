/root/repo/target/debug/deps/neo_expert-e15c39bb38e5279a.d: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs Cargo.toml

/root/repo/target/debug/deps/libneo_expert-e15c39bb38e5279a.rmeta: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs Cargo.toml

crates/expert/src/lib.rs:
crates/expert/src/cardest.rs:
crates/expert/src/greedy.rs:
crates/expert/src/native.rs:
crates/expert/src/selinger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
