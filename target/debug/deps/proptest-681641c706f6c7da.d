/root/repo/target/debug/deps/proptest-681641c706f6c7da.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-681641c706f6c7da.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-681641c706f6c7da.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
