/root/repo/target/debug/deps/neo_expert-751b5974754f6ce4.d: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/debug/deps/libneo_expert-751b5974754f6ce4.rlib: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/debug/deps/libneo_expert-751b5974754f6ce4.rmeta: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

crates/expert/src/lib.rs:
crates/expert/src/cardest.rs:
crates/expert/src/greedy.rs:
crates/expert/src/native.rs:
crates/expert/src/selinger.rs:
