/root/repo/target/debug/deps/neo_engine-1b1d5a47ba186a73.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/debug/deps/libneo_engine-1b1d5a47ba186a73.rlib: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/debug/deps/libneo_engine-1b1d5a47ba186a73.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/filter.rs:
crates/engine/src/latency.rs:
crates/engine/src/oracle.rs:
crates/engine/src/profile.rs:
