/root/repo/target/debug/deps/invariants-1d52e8f85e828325.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-1d52e8f85e828325: tests/invariants.rs

tests/invariants.rs:
