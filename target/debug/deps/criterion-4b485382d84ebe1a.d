/root/repo/target/debug/deps/criterion-4b485382d84ebe1a.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-4b485382d84ebe1a: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
