/root/repo/target/debug/deps/rand-08fa5756bf5d3cbe.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-08fa5756bf5d3cbe: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
