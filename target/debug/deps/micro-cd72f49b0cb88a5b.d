/root/repo/target/debug/deps/micro-cd72f49b0cb88a5b.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-cd72f49b0cb88a5b.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
