/root/repo/target/debug/deps/optimizer_quality-e727345a2aa11500.d: crates/expert/tests/optimizer_quality.rs

/root/repo/target/debug/deps/optimizer_quality-e727345a2aa11500: crates/expert/tests/optimizer_quality.rs

crates/expert/tests/optimizer_quality.rs:
