/root/repo/target/debug/deps/neo_query-173e964b6834ec97.d: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs Cargo.toml

/root/repo/target/debug/deps/libneo_query-173e964b6834ec97.rmeta: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/explain.rs:
crates/query/src/plan.rs:
crates/query/src/predicate.rs:
crates/query/src/query.rs:
crates/query/src/workload/mod.rs:
crates/query/src/workload/corp.rs:
crates/query/src/workload/ext_job.rs:
crates/query/src/workload/job.rs:
crates/query/src/workload/tpch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
