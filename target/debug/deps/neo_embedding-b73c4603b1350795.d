/root/repo/target/debug/deps/neo_embedding-b73c4603b1350795.d: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs Cargo.toml

/root/repo/target/debug/deps/libneo_embedding-b73c4603b1350795.rmeta: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs Cargo.toml

crates/embedding/src/lib.rs:
crates/embedding/src/corpus.rs:
crates/embedding/src/rvector.rs:
crates/embedding/src/word2vec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
