/root/repo/target/debug/deps/failure_modes-14750a48a1cfb4dc.d: tests/failure_modes.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_modes-14750a48a1cfb4dc.rmeta: tests/failure_modes.rs Cargo.toml

tests/failure_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
