/root/repo/target/debug/deps/plan_space-93b4baf9f8886c33.d: crates/query/tests/plan_space.rs

/root/repo/target/debug/deps/plan_space-93b4baf9f8886c33: crates/query/tests/plan_space.rs

crates/query/tests/plan_space.rs:
