/root/repo/target/debug/deps/zero_alloc-161f7bb163679769.d: crates/core/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-161f7bb163679769: crates/core/tests/zero_alloc.rs

crates/core/tests/zero_alloc.rs:
