/root/repo/target/debug/deps/optimizer_quality-cc3c46ce61af21f7.d: crates/expert/tests/optimizer_quality.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_quality-cc3c46ce61af21f7.rmeta: crates/expert/tests/optimizer_quality.rs Cargo.toml

crates/expert/tests/optimizer_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
