/root/repo/target/debug/deps/properties-2f0927683f648607.d: crates/storage/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2f0927683f648607.rmeta: crates/storage/tests/properties.rs Cargo.toml

crates/storage/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
