/root/repo/target/debug/deps/criterion-147c8abe66a9ad8c.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-147c8abe66a9ad8c.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-147c8abe66a9ad8c.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
