/root/repo/target/debug/deps/engine_invariants-a381e125f5a6b731.d: crates/engine/tests/engine_invariants.rs

/root/repo/target/debug/deps/engine_invariants-a381e125f5a6b731: crates/engine/tests/engine_invariants.rs

crates/engine/tests/engine_invariants.rs:
