/root/repo/target/debug/deps/embedding_quality-f4479a0c4c7667cc.d: crates/embedding/tests/embedding_quality.rs

/root/repo/target/debug/deps/embedding_quality-f4479a0c4c7667cc: crates/embedding/tests/embedding_quality.rs

crates/embedding/tests/embedding_quality.rs:
