/root/repo/target/debug/deps/neo_workspace-138d7c5bea981c3c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneo_workspace-138d7c5bea981c3c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
