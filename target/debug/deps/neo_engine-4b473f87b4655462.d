/root/repo/target/debug/deps/neo_engine-4b473f87b4655462.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libneo_engine-4b473f87b4655462.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/filter.rs:
crates/engine/src/latency.rs:
crates/engine/src/oracle.rs:
crates/engine/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
