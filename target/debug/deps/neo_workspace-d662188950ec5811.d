/root/repo/target/debug/deps/neo_workspace-d662188950ec5811.d: src/lib.rs

/root/repo/target/debug/deps/neo_workspace-d662188950ec5811: src/lib.rs

src/lib.rs:
