/root/repo/target/debug/deps/neo_embedding-c12a2ad1902ead79.d: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/debug/deps/neo_embedding-c12a2ad1902ead79: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

crates/embedding/src/lib.rs:
crates/embedding/src/corpus.rs:
crates/embedding/src/rvector.rs:
crates/embedding/src/word2vec.rs:
