/root/repo/target/debug/deps/neo_bench-d7e87852bdd3bf71.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libneo_bench-d7e87852bdd3bf71.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libneo_bench-d7e87852bdd3bf71.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
