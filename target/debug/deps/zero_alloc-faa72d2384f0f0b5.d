/root/repo/target/debug/deps/zero_alloc-faa72d2384f0f0b5.d: crates/core/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-faa72d2384f0f0b5: crates/core/tests/zero_alloc.rs

crates/core/tests/zero_alloc.rs:
