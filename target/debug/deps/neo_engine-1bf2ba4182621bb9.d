/root/repo/target/debug/deps/neo_engine-1bf2ba4182621bb9.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/debug/deps/neo_engine-1bf2ba4182621bb9: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/filter.rs:
crates/engine/src/latency.rs:
crates/engine/src/oracle.rs:
crates/engine/src/profile.rs:
