/root/repo/target/debug/deps/invariants-0260d6af23401d3e.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-0260d6af23401d3e.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
