/root/repo/target/debug/deps/properties-a8745272e67c97a6.d: crates/nn/tests/properties.rs

/root/repo/target/debug/deps/properties-a8745272e67c97a6: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
