/root/repo/target/debug/deps/engine_invariants-42f2013e03039451.d: crates/engine/tests/engine_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libengine_invariants-42f2013e03039451.rmeta: crates/engine/tests/engine_invariants.rs Cargo.toml

crates/engine/tests/engine_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
