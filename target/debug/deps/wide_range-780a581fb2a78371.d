/root/repo/target/debug/deps/wide_range-780a581fb2a78371.d: crates/rand/tests/wide_range.rs

/root/repo/target/debug/deps/wide_range-780a581fb2a78371: crates/rand/tests/wide_range.rs

crates/rand/tests/wide_range.rs:
