/root/repo/target/debug/deps/proptest-2b852fc5df0e9d79.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-2b852fc5df0e9d79: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
