/root/repo/target/debug/deps/neo_expert-c99de5a0ce122990.d: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

/root/repo/target/debug/deps/neo_expert-c99de5a0ce122990: crates/expert/src/lib.rs crates/expert/src/cardest.rs crates/expert/src/greedy.rs crates/expert/src/native.rs crates/expert/src/selinger.rs

crates/expert/src/lib.rs:
crates/expert/src/cardest.rs:
crates/expert/src/greedy.rs:
crates/expert/src/native.rs:
crates/expert/src/selinger.rs:
