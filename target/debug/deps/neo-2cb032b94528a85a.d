/root/repo/target/debug/deps/neo-2cb032b94528a85a.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs Cargo.toml

/root/repo/target/debug/deps/libneo-2cb032b94528a85a.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/experience.rs:
crates/core/src/featurize.rs:
crates/core/src/runner.rs:
crates/core/src/search.rs:
crates/core/src/value_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
