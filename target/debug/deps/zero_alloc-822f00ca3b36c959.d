/root/repo/target/debug/deps/zero_alloc-822f00ca3b36c959.d: crates/core/tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-822f00ca3b36c959.rmeta: crates/core/tests/zero_alloc.rs Cargo.toml

crates/core/tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
