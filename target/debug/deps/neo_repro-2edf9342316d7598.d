/root/repo/target/debug/deps/neo_repro-2edf9342316d7598.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libneo_repro-2edf9342316d7598.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
