/root/repo/target/debug/deps/neo_workspace-494af641a1b8ece5.d: src/lib.rs

/root/repo/target/debug/deps/libneo_workspace-494af641a1b8ece5.rlib: src/lib.rs

/root/repo/target/debug/deps/libneo_workspace-494af641a1b8ece5.rmeta: src/lib.rs

src/lib.rs:
