/root/repo/target/debug/deps/rand-5a826226b91c0cdf.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-5a826226b91c0cdf.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
