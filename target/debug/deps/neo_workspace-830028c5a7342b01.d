/root/repo/target/debug/deps/neo_workspace-830028c5a7342b01.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneo_workspace-830028c5a7342b01.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
