/root/repo/target/debug/deps/plan_space-b1e983ea607c7043.d: crates/query/tests/plan_space.rs Cargo.toml

/root/repo/target/debug/deps/libplan_space-b1e983ea607c7043.rmeta: crates/query/tests/plan_space.rs Cargo.toml

crates/query/tests/plan_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
