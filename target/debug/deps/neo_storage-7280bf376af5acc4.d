/root/repo/target/debug/deps/neo_storage-7280bf376af5acc4.d: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/libneo_storage-7280bf376af5acc4.rlib: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/libneo_storage-7280bf376af5acc4.rmeta: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/database.rs:
crates/storage/src/datagen/mod.rs:
crates/storage/src/datagen/corp.rs:
crates/storage/src/datagen/imdb.rs:
crates/storage/src/datagen/tpch.rs:
crates/storage/src/histogram.rs:
crates/storage/src/index.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
