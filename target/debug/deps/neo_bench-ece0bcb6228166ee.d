/root/repo/target/debug/deps/neo_bench-ece0bcb6228166ee.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libneo_bench-ece0bcb6228166ee.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
