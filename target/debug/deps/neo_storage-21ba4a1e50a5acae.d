/root/repo/target/debug/deps/neo_storage-21ba4a1e50a5acae.d: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/neo_storage-21ba4a1e50a5acae: crates/storage/src/lib.rs crates/storage/src/database.rs crates/storage/src/datagen/mod.rs crates/storage/src/datagen/corp.rs crates/storage/src/datagen/imdb.rs crates/storage/src/datagen/tpch.rs crates/storage/src/histogram.rs crates/storage/src/index.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/database.rs:
crates/storage/src/datagen/mod.rs:
crates/storage/src/datagen/corp.rs:
crates/storage/src/datagen/imdb.rs:
crates/storage/src/datagen/tpch.rs:
crates/storage/src/histogram.rs:
crates/storage/src/index.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/value.rs:
