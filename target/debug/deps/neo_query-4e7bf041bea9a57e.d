/root/repo/target/debug/deps/neo_query-4e7bf041bea9a57e.d: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

/root/repo/target/debug/deps/libneo_query-4e7bf041bea9a57e.rlib: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

/root/repo/target/debug/deps/libneo_query-4e7bf041bea9a57e.rmeta: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

crates/query/src/lib.rs:
crates/query/src/explain.rs:
crates/query/src/plan.rs:
crates/query/src/predicate.rs:
crates/query/src/query.rs:
crates/query/src/workload/mod.rs:
crates/query/src/workload/corp.rs:
crates/query/src/workload/ext_job.rs:
crates/query/src/workload/job.rs:
crates/query/src/workload/tpch.rs:
