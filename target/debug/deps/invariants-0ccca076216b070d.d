/root/repo/target/debug/deps/invariants-0ccca076216b070d.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-0ccca076216b070d: tests/invariants.rs

tests/invariants.rs:
