/root/repo/target/debug/deps/neo_engine-51ca2d587432a3e0.d: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/debug/deps/libneo_engine-51ca2d587432a3e0.rlib: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

/root/repo/target/debug/deps/libneo_engine-51ca2d587432a3e0.rmeta: crates/engine/src/lib.rs crates/engine/src/executor.rs crates/engine/src/filter.rs crates/engine/src/latency.rs crates/engine/src/oracle.rs crates/engine/src/profile.rs

crates/engine/src/lib.rs:
crates/engine/src/executor.rs:
crates/engine/src/filter.rs:
crates/engine/src/latency.rs:
crates/engine/src/oracle.rs:
crates/engine/src/profile.rs:
