/root/repo/target/debug/deps/neo_repro-47391b2e49f7dffe.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/neo_repro-47391b2e49f7dffe: crates/bench/src/main.rs

crates/bench/src/main.rs:
