/root/repo/target/debug/deps/neo_nn-c31054f2f90822e4.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/adam.rs crates/nn/src/init.rs crates/nn/src/layernorm.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/scratch.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs crates/nn/src/treeconv.rs

/root/repo/target/debug/deps/neo_nn-c31054f2f90822e4: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/adam.rs crates/nn/src/init.rs crates/nn/src/layernorm.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/scratch.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs crates/nn/src/treeconv.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/adam.rs:
crates/nn/src/init.rs:
crates/nn/src/layernorm.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/network.rs:
crates/nn/src/param.rs:
crates/nn/src/scratch.rs:
crates/nn/src/serialize.rs:
crates/nn/src/tensor.rs:
crates/nn/src/treeconv.rs:
