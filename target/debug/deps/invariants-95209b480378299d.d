/root/repo/target/debug/deps/invariants-95209b480378299d.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-95209b480378299d: tests/invariants.rs

tests/invariants.rs:
