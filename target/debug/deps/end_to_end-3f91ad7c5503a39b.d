/root/repo/target/debug/deps/end_to_end-3f91ad7c5503a39b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3f91ad7c5503a39b: tests/end_to_end.rs

tests/end_to_end.rs:
