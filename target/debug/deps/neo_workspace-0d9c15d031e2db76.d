/root/repo/target/debug/deps/neo_workspace-0d9c15d031e2db76.d: src/lib.rs

/root/repo/target/debug/deps/neo_workspace-0d9c15d031e2db76: src/lib.rs

src/lib.rs:
