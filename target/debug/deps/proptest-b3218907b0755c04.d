/root/repo/target/debug/deps/proptest-b3218907b0755c04.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-b3218907b0755c04.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
