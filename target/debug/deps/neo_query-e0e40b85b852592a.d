/root/repo/target/debug/deps/neo_query-e0e40b85b852592a.d: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

/root/repo/target/debug/deps/libneo_query-e0e40b85b852592a.rlib: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

/root/repo/target/debug/deps/libneo_query-e0e40b85b852592a.rmeta: crates/query/src/lib.rs crates/query/src/explain.rs crates/query/src/plan.rs crates/query/src/predicate.rs crates/query/src/query.rs crates/query/src/workload/mod.rs crates/query/src/workload/corp.rs crates/query/src/workload/ext_job.rs crates/query/src/workload/job.rs crates/query/src/workload/tpch.rs

crates/query/src/lib.rs:
crates/query/src/explain.rs:
crates/query/src/plan.rs:
crates/query/src/predicate.rs:
crates/query/src/query.rs:
crates/query/src/workload/mod.rs:
crates/query/src/workload/corp.rs:
crates/query/src/workload/ext_job.rs:
crates/query/src/workload/job.rs:
crates/query/src/workload/tpch.rs:
