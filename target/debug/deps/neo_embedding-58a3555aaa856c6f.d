/root/repo/target/debug/deps/neo_embedding-58a3555aaa856c6f.d: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/debug/deps/libneo_embedding-58a3555aaa856c6f.rlib: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/debug/deps/libneo_embedding-58a3555aaa856c6f.rmeta: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

crates/embedding/src/lib.rs:
crates/embedding/src/corpus.rs:
crates/embedding/src/rvector.rs:
crates/embedding/src/word2vec.rs:
