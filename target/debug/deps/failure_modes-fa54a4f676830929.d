/root/repo/target/debug/deps/failure_modes-fa54a4f676830929.d: tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-fa54a4f676830929: tests/failure_modes.rs

tests/failure_modes.rs:
