/root/repo/target/debug/deps/neo_repro-dd14984e1e8988f8.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/neo_repro-dd14984e1e8988f8: crates/bench/src/main.rs

crates/bench/src/main.rs:
