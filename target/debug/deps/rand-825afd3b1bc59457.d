/root/repo/target/debug/deps/rand-825afd3b1bc59457.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-825afd3b1bc59457.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-825afd3b1bc59457.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
