/root/repo/target/debug/deps/neo_nn-187ef51239d77f5f.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/adam.rs crates/nn/src/init.rs crates/nn/src/layernorm.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/scratch.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs crates/nn/src/treeconv.rs Cargo.toml

/root/repo/target/debug/deps/libneo_nn-187ef51239d77f5f.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/adam.rs crates/nn/src/init.rs crates/nn/src/layernorm.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/scratch.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs crates/nn/src/treeconv.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/adam.rs:
crates/nn/src/init.rs:
crates/nn/src/layernorm.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/network.rs:
crates/nn/src/param.rs:
crates/nn/src/scratch.rs:
crates/nn/src/serialize.rs:
crates/nn/src/tensor.rs:
crates/nn/src/treeconv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
