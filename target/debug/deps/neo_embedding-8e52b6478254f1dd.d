/root/repo/target/debug/deps/neo_embedding-8e52b6478254f1dd.d: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/debug/deps/libneo_embedding-8e52b6478254f1dd.rlib: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

/root/repo/target/debug/deps/libneo_embedding-8e52b6478254f1dd.rmeta: crates/embedding/src/lib.rs crates/embedding/src/corpus.rs crates/embedding/src/rvector.rs crates/embedding/src/word2vec.rs

crates/embedding/src/lib.rs:
crates/embedding/src/corpus.rs:
crates/embedding/src/rvector.rs:
crates/embedding/src/word2vec.rs:
