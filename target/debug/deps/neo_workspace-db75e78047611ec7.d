/root/repo/target/debug/deps/neo_workspace-db75e78047611ec7.d: src/lib.rs

/root/repo/target/debug/deps/libneo_workspace-db75e78047611ec7.rlib: src/lib.rs

/root/repo/target/debug/deps/libneo_workspace-db75e78047611ec7.rmeta: src/lib.rs

src/lib.rs:
