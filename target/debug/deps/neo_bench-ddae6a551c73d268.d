/root/repo/target/debug/deps/neo_bench-ddae6a551c73d268.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libneo_bench-ddae6a551c73d268.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libneo_bench-ddae6a551c73d268.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
