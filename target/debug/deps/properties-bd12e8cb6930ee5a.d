/root/repo/target/debug/deps/properties-bd12e8cb6930ee5a.d: crates/nn/tests/properties.rs

/root/repo/target/debug/deps/properties-bd12e8cb6930ee5a: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
