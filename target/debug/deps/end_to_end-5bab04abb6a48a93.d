/root/repo/target/debug/deps/end_to_end-5bab04abb6a48a93.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5bab04abb6a48a93: tests/end_to_end.rs

tests/end_to_end.rs:
