/root/repo/target/debug/deps/proptest-61f8a6edd5bb1e60.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-61f8a6edd5bb1e60.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-61f8a6edd5bb1e60.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
