/root/repo/target/debug/deps/failure_modes-a6554f9c37e1518d.d: tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-a6554f9c37e1518d: tests/failure_modes.rs

tests/failure_modes.rs:
