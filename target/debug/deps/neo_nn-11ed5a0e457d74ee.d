/root/repo/target/debug/deps/neo_nn-11ed5a0e457d74ee.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/adam.rs crates/nn/src/init.rs crates/nn/src/layernorm.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/scratch.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs crates/nn/src/treeconv.rs

/root/repo/target/debug/deps/libneo_nn-11ed5a0e457d74ee.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/adam.rs crates/nn/src/init.rs crates/nn/src/layernorm.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/scratch.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs crates/nn/src/treeconv.rs

/root/repo/target/debug/deps/libneo_nn-11ed5a0e457d74ee.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/adam.rs crates/nn/src/init.rs crates/nn/src/layernorm.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/scratch.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs crates/nn/src/treeconv.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/adam.rs:
crates/nn/src/init.rs:
crates/nn/src/layernorm.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/network.rs:
crates/nn/src/param.rs:
crates/nn/src/scratch.rs:
crates/nn/src/serialize.rs:
crates/nn/src/tensor.rs:
crates/nn/src/treeconv.rs:
