/root/repo/target/debug/deps/neo-35576d5329485f19.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

/root/repo/target/debug/deps/libneo-35576d5329485f19.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

/root/repo/target/debug/deps/libneo-35576d5329485f19.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/experience.rs:
crates/core/src/featurize.rs:
crates/core/src/runner.rs:
crates/core/src/search.rs:
crates/core/src/value_net.rs:
