/root/repo/target/debug/deps/neo_repro-a653cf1b2459c28e.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libneo_repro-a653cf1b2459c28e.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
