/root/repo/target/debug/deps/properties-2bc881bec85f628e.d: crates/storage/tests/properties.rs

/root/repo/target/debug/deps/properties-2bc881bec85f628e: crates/storage/tests/properties.rs

crates/storage/tests/properties.rs:
