/root/repo/target/debug/deps/embedding_quality-359ca03997e3d15d.d: crates/embedding/tests/embedding_quality.rs Cargo.toml

/root/repo/target/debug/deps/libembedding_quality-359ca03997e3d15d.rmeta: crates/embedding/tests/embedding_quality.rs Cargo.toml

crates/embedding/tests/embedding_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
