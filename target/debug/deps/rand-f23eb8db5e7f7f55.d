/root/repo/target/debug/deps/rand-f23eb8db5e7f7f55.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-f23eb8db5e7f7f55.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
