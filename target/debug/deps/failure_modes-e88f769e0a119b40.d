/root/repo/target/debug/deps/failure_modes-e88f769e0a119b40.d: tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-e88f769e0a119b40: tests/failure_modes.rs

tests/failure_modes.rs:
