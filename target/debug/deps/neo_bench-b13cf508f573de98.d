/root/repo/target/debug/deps/neo_bench-b13cf508f573de98.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/neo_bench-b13cf508f573de98: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
