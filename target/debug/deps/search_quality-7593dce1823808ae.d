/root/repo/target/debug/deps/search_quality-7593dce1823808ae.d: crates/core/tests/search_quality.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_quality-7593dce1823808ae.rmeta: crates/core/tests/search_quality.rs Cargo.toml

crates/core/tests/search_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
