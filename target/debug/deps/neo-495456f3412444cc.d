/root/repo/target/debug/deps/neo-495456f3412444cc.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

/root/repo/target/debug/deps/libneo-495456f3412444cc.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

/root/repo/target/debug/deps/libneo-495456f3412444cc.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/experience.rs crates/core/src/featurize.rs crates/core/src/runner.rs crates/core/src/search.rs crates/core/src/value_net.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/experience.rs:
crates/core/src/featurize.rs:
crates/core/src/runner.rs:
crates/core/src/search.rs:
crates/core/src/value_net.rs:
