/root/repo/target/debug/examples/row_vectors-ef5fd37bded9c6c8.d: examples/row_vectors.rs

/root/repo/target/debug/examples/row_vectors-ef5fd37bded9c6c8: examples/row_vectors.rs

examples/row_vectors.rs:
