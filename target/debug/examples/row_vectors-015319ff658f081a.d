/root/repo/target/debug/examples/row_vectors-015319ff658f081a.d: examples/row_vectors.rs

/root/repo/target/debug/examples/row_vectors-015319ff658f081a: examples/row_vectors.rs

examples/row_vectors.rs:
