/root/repo/target/debug/examples/engine_tour-f9757a460e6457f5.d: examples/engine_tour.rs

/root/repo/target/debug/examples/engine_tour-f9757a460e6457f5: examples/engine_tour.rs

examples/engine_tour.rs:
