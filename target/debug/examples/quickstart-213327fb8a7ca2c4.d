/root/repo/target/debug/examples/quickstart-213327fb8a7ca2c4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-213327fb8a7ca2c4: examples/quickstart.rs

examples/quickstart.rs:
