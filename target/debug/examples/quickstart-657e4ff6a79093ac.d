/root/repo/target/debug/examples/quickstart-657e4ff6a79093ac.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-657e4ff6a79093ac: examples/quickstart.rs

examples/quickstart.rs:
