/root/repo/target/debug/examples/engine_tour-1f2c6028539eeb8a.d: examples/engine_tour.rs

/root/repo/target/debug/examples/engine_tour-1f2c6028539eeb8a: examples/engine_tour.rs

examples/engine_tour.rs:
