/root/repo/target/debug/examples/robustness-64e56b1122e72f0e.d: examples/robustness.rs Cargo.toml

/root/repo/target/debug/examples/librobustness-64e56b1122e72f0e.rmeta: examples/robustness.rs Cargo.toml

examples/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
