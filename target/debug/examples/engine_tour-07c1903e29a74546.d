/root/repo/target/debug/examples/engine_tour-07c1903e29a74546.d: examples/engine_tour.rs Cargo.toml

/root/repo/target/debug/examples/libengine_tour-07c1903e29a74546.rmeta: examples/engine_tour.rs Cargo.toml

examples/engine_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
