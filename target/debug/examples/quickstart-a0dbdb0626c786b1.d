/root/repo/target/debug/examples/quickstart-a0dbdb0626c786b1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a0dbdb0626c786b1: examples/quickstart.rs

examples/quickstart.rs:
