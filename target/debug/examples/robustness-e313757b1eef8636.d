/root/repo/target/debug/examples/robustness-e313757b1eef8636.d: examples/robustness.rs

/root/repo/target/debug/examples/robustness-e313757b1eef8636: examples/robustness.rs

examples/robustness.rs:
