/root/repo/target/debug/examples/row_vectors-e21f68cb34126994.d: examples/row_vectors.rs

/root/repo/target/debug/examples/row_vectors-e21f68cb34126994: examples/row_vectors.rs

examples/row_vectors.rs:
