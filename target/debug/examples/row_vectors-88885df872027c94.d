/root/repo/target/debug/examples/row_vectors-88885df872027c94.d: examples/row_vectors.rs Cargo.toml

/root/repo/target/debug/examples/librow_vectors-88885df872027c94.rmeta: examples/row_vectors.rs Cargo.toml

examples/row_vectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
