/root/repo/target/debug/examples/robustness-24d881280eb8ee1e.d: examples/robustness.rs

/root/repo/target/debug/examples/robustness-24d881280eb8ee1e: examples/robustness.rs

examples/robustness.rs:
