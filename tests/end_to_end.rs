//! End-to-end integration: the full Neo pipeline (datagen → workload →
//! expert bootstrap → value-network training → DNN-guided search →
//! execution) on a small IMDB-like database.

use neo::{CostKind, FeaturizationChoice, Neo, NeoConfig, NetConfig};
use neo_engine::{true_latency, CardinalityOracle, Engine, Executor};
use neo_expert::postgres_expert;
use neo_query::workload::job;
use neo_query::Query;
use neo_storage::datagen::imdb;
use neo_storage::Database;

fn tiny_cfg(feat: FeaturizationChoice) -> NeoConfig {
    NeoConfig {
        featurization: feat,
        net: NetConfig {
            query_layers: vec![32, 16],
            conv_channels: vec![16, 8],
            head_layers: vec![16],
            lr: 3e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        bootstrap_epochs: 4,
        epochs_per_episode: 1,
        batch_size: 32,
        max_samples_per_retrain: 512,
        search_base_expansions: 8,
        emb_dim: 8,
        emb_epochs: 1,
        cost_kind: CostKind::WorkloadLatency,
        ..Default::default()
    }
}

fn setup() -> (Database, Vec<Query>) {
    let db = imdb::generate(0.03, 17);
    let queries: Vec<Query> = job::generate(&db, 17)
        .queries
        .into_iter()
        .filter(|q| q.num_relations() <= 6)
        .take(8)
        .collect();
    (db, queries)
}

/// Neo's chosen plans must be executable and compute exactly the same
/// result as the expert's plans — the "semantic correctness" guarantee the
/// paper delegates to plan validity (§2).
#[test]
fn neo_plans_compute_identical_results_to_expert() {
    let (db, queries) = setup();
    let mut neo = Neo::bootstrap(
        &db,
        Engine::PostgresLike,
        queries.clone(),
        tiny_cfg(FeaturizationChoice::Histogram),
    );
    neo.run_episode(1);
    for q in &queries {
        let (neo_plan, _) = neo.plan_query(q);
        let expert_plan = postgres_expert(&db, q);
        let ex = Executor::new(&db, q);
        let a = ex.execute_count(&neo_plan).expect("neo plan executes");
        let b = ex
            .execute_count(&expert_plan)
            .expect("expert plan executes");
        assert_eq!(
            a,
            b,
            "query {}: neo {} vs expert {}",
            q.id,
            neo_plan.describe(),
            expert_plan.describe()
        );
    }
}

/// Every featurization variant must run the whole pipeline.
#[test]
fn all_featurizations_run_end_to_end() {
    let (db, queries) = setup();
    for feat in [
        FeaturizationChoice::OneHot,
        FeaturizationChoice::Histogram,
        FeaturizationChoice::RVectorNoJoins,
        FeaturizationChoice::RVectorJoins,
    ] {
        let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries.clone(), tiny_cfg(feat));
        let stats = neo.run_episode(1);
        assert!(stats.mean_loss.is_finite(), "{feat:?}");
        let lat = neo.evaluate(&queries[..2]);
        assert!(lat.iter().all(|l| l.is_finite() && *l > 0.0), "{feat:?}");
    }
}

/// Training must reduce value-prediction loss on the demonstration data.
#[test]
fn bootstrap_training_reduces_loss() {
    let (db, queries) = setup();
    let mut cfg = tiny_cfg(FeaturizationChoice::Histogram);
    cfg.bootstrap_epochs = 1;
    let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries, cfg);
    let first = neo.retrain(1);
    let mut last = first;
    for _ in 0..6 {
        last = neo.retrain(1);
    }
    assert!(
        last < first,
        "loss should fall with training: first {first}, last {last}"
    );
}

/// The corrective feedback loop (paper §2): a plan that executed terribly
/// must get a worse predicted value after retraining on that experience.
#[test]
fn corrective_feedback_penalizes_bad_plans() {
    let (db, queries) = setup();
    let q = queries[0].clone();
    let mut neo = Neo::bootstrap(
        &db,
        Engine::PostgresLike,
        queries.clone(),
        tiny_cfg(FeaturizationChoice::Histogram),
    );

    // Find the worst complete plan among a few random rollouts.
    use rand::{Rng, SeedableRng};
    let ctx = neo_query::QueryContext::new(&db, &q);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut worst: Option<(f64, neo_query::PlanNode)> = None;
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();
    for _ in 0..6 {
        let mut p = neo_query::PartialPlan::initial(&q);
        while !p.is_complete() {
            let kids = neo_query::children(&p, &ctx);
            p = kids[rng.gen_range(0..kids.len())].clone();
        }
        let tree = p.as_complete().unwrap().clone();
        let lat = true_latency(&db, &q, &profile, &mut oracle, &tree);
        if worst.as_ref().is_none_or(|(w, _)| lat > *w) {
            worst = Some((lat, tree));
        }
    }
    let (bad_latency, bad_plan) = worst.unwrap();
    let good_latency = neo.experience.best_cost(&q.id).unwrap();
    if bad_latency < 3.0 * good_latency {
        return; // all rollouts were decent; nothing to assert against
    }
    let state = neo_query::PartialPlan::from_tree(bad_plan.clone());
    let before = neo.predict_state(&q, &state);
    neo.execute_and_learn(&q, bad_plan);
    for _ in 0..8 {
        neo.retrain(1);
    }
    let after = neo.predict_state(&q, &state);
    assert!(
        after > before - 0.1,
        "bad plan should not look better after learning its true cost: {before} -> {after}"
    );
    // And the good (expert) plan must now score better than the bad one.
    let good_state =
        neo_query::PartialPlan::from_tree(neo.experience.best_plan(&q.id).unwrap().clone());
    let good_score = neo.predict_state(&q, &good_state);
    let bad_score = neo.predict_state(&q, &state);
    assert!(
        good_score < bad_score,
        "expert plan ({good_score}) should score below catastrophic plan ({bad_score})"
    );
}

/// Relative-cost training must keep baselines for newly extended queries.
#[test]
fn extend_training_with_relative_cost() {
    let (db, queries) = setup();
    let mut cfg = tiny_cfg(FeaturizationChoice::Histogram);
    cfg.cost_kind = CostKind::Relative;
    let (head, tail) = queries.split_at(5);
    let mut neo = Neo::bootstrap(&db, Engine::MsSqlLike, head.to_vec(), cfg);
    neo.extend_training(tail.to_vec());
    let stats = neo.run_episode(1);
    assert!(stats.mean_loss.is_finite());
    assert_eq!(neo.experience.num_queries(), queries.len());
}
