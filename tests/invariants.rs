//! Property-based invariants spanning crates: plan-space soundness,
//! executor/oracle agreement, featurization well-formedness, and latency
//! model sanity, under randomized plans and queries.

use neo::{Featurization, Featurizer};
use neo_engine::{true_latency, CardinalityOracle, Engine, Executor};
use neo_query::{children, PartialPlan, Query, QueryContext};
use neo_storage::datagen::imdb;
use neo_storage::Database;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A shared small database + workload (building one per proptest case
/// would dominate runtime).
fn fixture() -> &'static (Database, Vec<Query>) {
    static FIXTURE: OnceLock<(Database, Vec<Query>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = imdb::generate(0.02, 99);
        let queries: Vec<Query> = neo_query::workload::job::generate(&db, 99)
            .queries
            .into_iter()
            .filter(|q| q.num_relations() <= 6)
            .collect();
        (db, queries)
    })
}

/// Builds a random complete plan by walking the children relation.
fn random_plan(q: &Query, ctx: &QueryContext, choices: &[u8]) -> PartialPlan {
    let mut p = PartialPlan::initial(q);
    let mut i = 0;
    while !p.is_complete() {
        let kids = children(&p, ctx);
        assert!(
            !kids.is_empty(),
            "children() must keep incomplete plans extendable"
        );
        let pick = choices.get(i).copied().unwrap_or(0) as usize % kids.len();
        p = kids.into_iter().nth(pick).unwrap();
        i += 1;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    /// Any sequence of child choices terminates in a complete plan covering
    /// exactly R(q) — the search space is sound and complete.
    #[test]
    fn children_walk_always_terminates(qi in 0usize..20, choices in proptest::collection::vec(any::<u8>(), 40)) {
        let (db, queries) = fixture();
        let q = &queries[qi % queries.len()];
        let ctx = QueryContext::new(db, q);
        let p = random_plan(q, &ctx, &choices);
        prop_assert!(p.is_complete());
        prop_assert_eq!(p.rel_mask(), (1u64 << q.num_relations()) - 1);
    }

    /// Every randomly-built plan executes, and its result count equals the
    /// oracle's cardinality for the full relation set — regardless of join
    /// order, operators, or access paths.
    #[test]
    fn executor_matches_oracle_for_any_plan(qi in 0usize..20, choices in proptest::collection::vec(any::<u8>(), 40)) {
        let (db, queries) = fixture();
        let q = &queries[qi % queries.len()];
        let ctx = QueryContext::new(db, q);
        let p = random_plan(q, &ctx, &choices);
        let tree = p.as_complete().unwrap();
        let ex = Executor::new(db, q);
        let count = ex.execute_count(tree).expect("plan executes") as f64;
        let mut oracle = CardinalityOracle::new();
        let full = (1u64 << q.num_relations()) - 1;
        prop_assert_eq!(count, oracle.cardinality(db, q, full));
    }

    /// Featurized plans always produce valid topologies with the declared
    /// channel count, and join rows carry exactly one operator bit.
    #[test]
    fn plan_encoding_is_well_formed(qi in 0usize..20, choices in proptest::collection::vec(any::<u8>(), 40), steps in 0usize..12) {
        let (db, queries) = fixture();
        let q = &queries[qi % queries.len()];
        let ctx = QueryContext::new(db, q);
        // A partial plan: stop the walk early.
        let mut p = PartialPlan::initial(q);
        for i in 0..steps {
            if p.is_complete() { break; }
            let kids = children(&p, &ctx);
            let pick = choices.get(i).copied().unwrap_or(0) as usize % kids.len();
            p = kids.into_iter().nth(pick).unwrap();
        }
        let f = Featurizer::new(db, Featurization::OneHot);
        let enc = f.encode_plan(q, &p, None);
        prop_assert!(enc.topo.validate().is_ok());
        prop_assert_eq!(enc.feats.cols(), f.plan_channels());
        prop_assert_eq!(enc.feats.rows(), p.num_nodes());
        for i in 0..enc.feats.rows() {
            let row = enc.feats.row(i);
            let op_bits: f32 = row[..3].iter().sum();
            let is_join = enc.topo.left[i] != neo_nn::NO_CHILD;
            prop_assert_eq!(op_bits, if is_join { 1.0 } else { 0.0 });
        }
    }

    /// Latency is strictly positive, finite, and invariant across repeated
    /// evaluations (the executor substitute must be deterministic).
    #[test]
    fn latency_model_is_positive_and_deterministic(qi in 0usize..20, choices in proptest::collection::vec(any::<u8>(), 40)) {
        let (db, queries) = fixture();
        let q = &queries[qi % queries.len()];
        let ctx = QueryContext::new(db, q);
        let p = random_plan(q, &ctx, &choices);
        let tree = p.as_complete().unwrap();
        let mut oracle = CardinalityOracle::new();
        for engine in Engine::ALL {
            let profile = engine.profile();
            let a = true_latency(db, q, &profile, &mut oracle, tree);
            let b = true_latency(db, q, &profile, &mut oracle, tree);
            prop_assert!(a.is_finite() && a > 0.0);
            prop_assert_eq!(a, b);
        }
    }

    /// The subplan relation is reflexive along any construction path: every
    /// prefix of a children-walk is a subplan of the final plan.
    #[test]
    fn construction_prefixes_are_subplans(qi in 0usize..20, choices in proptest::collection::vec(any::<u8>(), 40)) {
        let (db, queries) = fixture();
        let q = &queries[qi % queries.len()];
        let ctx = QueryContext::new(db, q);
        let mut p = PartialPlan::initial(q);
        let mut prefixes = vec![p.clone()];
        let mut i = 0;
        while !p.is_complete() {
            let kids = children(&p, &ctx);
            let pick = choices.get(i).copied().unwrap_or(0) as usize % kids.len();
            p = kids.into_iter().nth(pick).unwrap();
            prefixes.push(p.clone());
            i += 1;
        }
        for prefix in &prefixes {
            prop_assert!(prefix.subplan_of(&p), "{} not a subplan of {}", prefix.describe(), p.describe());
        }
    }
}
