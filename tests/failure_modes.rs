//! Failure-injection tests: malformed inputs must fail loudly and
//! precisely, never silently corrupt results.

use neo_engine::{ExecError, Executor};
use neo_query::{Aggregate, JoinEdge, JoinOp, PlanNode, Predicate, Query, ScanType};
use neo_storage::datagen::imdb;
use neo_storage::{Column, Database, ForeignKey, Table};

fn two_table_db() -> Database {
    let a = Table::new("a", vec![Column::int("id", vec![0, 1])]);
    let b = Table::new(
        "b",
        vec![Column::int("id", vec![0]), Column::int("a_id", vec![0])],
    );
    Database::build(
        "t",
        vec![a, b],
        vec![ForeignKey {
            from_table: 1,
            from_col: 1,
            to_table: 0,
            to_col: 0,
        }],
        vec![(0, 0)],
    )
}

fn base_query() -> Query {
    Query {
        id: "q".into(),
        family: "f".into(),
        tables: vec![0, 1],
        joins: vec![JoinEdge {
            left_table: 1,
            left_col: 1,
            right_table: 0,
            right_col: 0,
        }],
        predicates: vec![],
        agg: Aggregate::CountStar,
    }
}

#[test]
fn validate_rejects_each_malformation() {
    let db = two_table_db();

    let mut no_tables = base_query();
    no_tables.tables.clear();
    assert!(no_tables.validate(&db).unwrap_err().contains("no tables"));

    let mut oob_table = base_query();
    oob_table.tables = vec![0, 7];
    assert!(oob_table
        .validate(&db)
        .unwrap_err()
        .contains("out of range"));

    let mut dup_tables = base_query();
    dup_tables.tables = vec![0, 0];
    assert!(dup_tables.validate(&db).is_err());

    let mut foreign_join = base_query();
    foreign_join.joins[0].left_table = 0;
    foreign_join.joins[0].right_table = 0; // degenerate self-edge
    assert!(foreign_join.validate(&db).is_err());

    let mut oob_pred = base_query();
    oob_pred.predicates.push(Predicate::IntCmp {
        table: 0,
        col: 99,
        op: neo_query::CmpOp::Eq,
        value: 1,
    });
    assert!(oob_pred
        .validate(&db)
        .unwrap_err()
        .contains("column out of range"));
}

#[test]
fn executor_reports_structured_errors() {
    let db = two_table_db();
    let q = base_query();
    let ex = Executor::new(&db, &q);

    // Unspecified scan.
    let unspec = PlanNode::Join {
        op: JoinOp::Hash,
        left: Box::new(PlanNode::Scan {
            rel: 0,
            scan: ScanType::Unspecified,
        }),
        right: Box::new(PlanNode::Scan {
            rel: 1,
            scan: ScanType::Table,
        }),
    };
    assert_eq!(
        ex.execute(&unspec).unwrap_err(),
        ExecError::UnspecifiedScan(0)
    );

    // Index scan where no index exists on any column of the relation:
    // relation 1 ('b') has no index at all in this database.
    let noindex = PlanNode::Join {
        op: JoinOp::Hash,
        left: Box::new(PlanNode::Scan {
            rel: 0,
            scan: ScanType::Table,
        }),
        right: Box::new(PlanNode::Scan {
            rel: 1,
            scan: ScanType::Index,
        }),
    };
    assert_eq!(ex.execute(&noindex).unwrap_err(), ExecError::NoIndex(1));
}

#[test]
fn executor_rejects_cross_products() {
    // Two tables with NO join edge in the query.
    let a = Table::new("a", vec![Column::int("id", vec![0])]);
    let b = Table::new("b", vec![Column::int("id", vec![0])]);
    let c = Table::new(
        "c",
        vec![Column::int("a_id", vec![0]), Column::int("b_id", vec![0])],
    );
    let db = Database::build(
        "t",
        vec![a, b, c],
        vec![
            ForeignKey {
                from_table: 2,
                from_col: 0,
                to_table: 0,
                to_col: 0,
            },
            ForeignKey {
                from_table: 2,
                from_col: 1,
                to_table: 1,
                to_col: 0,
            },
        ],
        vec![],
    );
    let q = Query {
        id: "q".into(),
        family: "f".into(),
        tables: vec![0, 1, 2],
        joins: vec![
            JoinEdge {
                left_table: 2,
                left_col: 0,
                right_table: 0,
                right_col: 0,
            },
            JoinEdge {
                left_table: 2,
                left_col: 1,
                right_table: 1,
                right_col: 0,
            },
        ],
        predicates: vec![],
        agg: Aggregate::CountStar,
    };
    let ex = Executor::new(&db, &q);
    // Joining a and b directly has no connecting edge.
    let cross = PlanNode::Join {
        op: JoinOp::Hash,
        left: Box::new(PlanNode::Scan {
            rel: 0,
            scan: ScanType::Table,
        }),
        right: Box::new(PlanNode::Scan {
            rel: 1,
            scan: ScanType::Table,
        }),
    };
    assert_eq!(ex.execute(&cross).unwrap_err(), ExecError::CrossProduct);
}

#[test]
fn empty_filter_results_flow_through_joins() {
    let db = imdb::generate(0.02, 41);
    let wl = neo_query::workload::job::generate(&db, 41);
    let mut q = wl
        .queries
        .iter()
        .find(|q| q.num_relations() <= 5)
        .unwrap()
        .clone();
    // A predicate no row satisfies.
    let t = q.tables[0];
    q.predicates.push(Predicate::StrEq {
        table: t,
        col: db.tables[t]
            .columns
            .iter()
            .position(|c| c.as_str().is_some())
            .unwrap_or(0),
        value: "no-such-value-ever".into(),
    });
    // Guard: only run when the chosen column is a string column.
    if db.tables[t].columns[q.predicates.last().unwrap().col()]
        .as_str()
        .is_none()
    {
        return;
    }
    let ex = Executor::new(&db, &q);
    let ctx = neo_query::QueryContext::new(&db, &q);
    let mut p = neo_query::PartialPlan::initial(&q);
    while !p.is_complete() {
        let kids = neo_query::children(&p, &ctx);
        p = kids.into_iter().next().unwrap();
    }
    assert_eq!(ex.execute_count(p.as_complete().unwrap()).unwrap(), 0);
    // The oracle agrees.
    let mut oracle = neo_engine::CardinalityOracle::new();
    assert_eq!(
        oracle.cardinality(&db, &q, (1 << q.num_relations()) - 1),
        0.0
    );
}

#[test]
fn latency_model_handles_empty_inputs() {
    let db = imdb::generate(0.02, 41);
    let wl = neo_query::workload::job::generate(&db, 41);
    let mut q = wl
        .queries
        .iter()
        .find(|q| q.num_relations() == 4)
        .unwrap()
        .clone();
    let t = q.tables[0];
    if let Some(col) = db.tables[t]
        .columns
        .iter()
        .position(|c| c.as_str().is_some())
    {
        q.predicates.push(Predicate::StrEq {
            table: t,
            col,
            value: "nothing".into(),
        });
    }
    let mut oracle = neo_engine::CardinalityOracle::new();
    let plan = neo_expert::postgres_expert(&db, &q);
    let lat = neo_engine::true_latency(
        &db,
        &q,
        &neo_engine::Engine::PostgresLike.profile(),
        &mut oracle,
        &plan,
    );
    assert!(
        lat.is_finite() && lat > 0.0,
        "empty-result plans still cost scan time"
    );
}
