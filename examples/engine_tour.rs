//! A tour of the execution substrate: run one query through all three join
//! algorithms on the real executor, verify they agree, and compare the
//! native optimizers of all four engine profiles on a correlated workload.
//!
//! ```text
//! cargo run --release --example engine_tour
//! ```

use neo_engine::{true_latency, CardinalityOracle, Engine, Executor};
use neo_expert::native_optimize;
use neo_query::workload::job;
use neo_query::{children, JoinOp, PartialPlan, PlanNode, QueryContext, ScanType};
use neo_storage::datagen::imdb;

fn main() {
    let db = imdb::generate(0.05, 3);
    let workload = job::generate(&db, 3);
    let q = workload
        .queries
        .iter()
        .find(|q| q.num_relations() == 4)
        .unwrap();
    println!("query {}:\n  {}", q.id, q.to_sql(&db));

    // 1. All join algorithms compute the same result.
    let ex = Executor::new(&db, q);
    let ctx = QueryContext::new(&db, q);
    println!("\nexecutor agreement across join algorithms:");
    for op in JoinOp::ALL {
        // Build a left-deep plan with this operator everywhere.
        let mut plan = PartialPlan::initial(q);
        while !plan.is_complete() {
            let kids = children(&plan, &ctx);
            // Prefer the first child that uses only table scans + `op`.
            let pick = kids.iter().position(|k| all_ops_are(k, op)).unwrap_or(0);
            plan = kids.into_iter().nth(pick).unwrap();
        }
        let n = ex.execute_count(plan.as_complete().unwrap()).unwrap();
        println!("  {:?}: {} result rows ({})", op, n, plan.describe());
    }

    // 2. Four engines, four native optimizers, one query set.
    println!("\nnative optimizers on 10 correlated queries (total true latency):");
    let mut oracle = CardinalityOracle::new();
    let queries: Vec<_> = workload
        .queries
        .iter()
        .filter(|q| q.num_relations() <= 7)
        .take(10)
        .collect();
    for engine in Engine::ALL {
        let profile = engine.profile();
        let mut total = 0.0;
        for q in &queries {
            let plan = native_optimize(&db, q, engine, &mut oracle);
            total += true_latency(&db, q, &profile, &mut oracle, &plan);
        }
        println!("  {:<12} {:>10.1} ms", engine.name(), total);
    }
    println!(
        "\n(The commercial profiles win on both better hardware coefficients and\n better cardinality estimation — the gap Neo closes by learning.)"
    );
}

fn all_ops_are(plan: &PartialPlan, op: JoinOp) -> bool {
    fn check(n: &PlanNode, op: JoinOp) -> bool {
        match n {
            PlanNode::Scan { scan, .. } => {
                *scan == ScanType::Table || *scan == ScanType::Unspecified
            }
            PlanNode::Join { op: o, left, right } => {
                *o == op && check(left, op) && check(right, op)
            }
        }
    }
    plan.roots.iter().all(|r| check(r, op))
}
