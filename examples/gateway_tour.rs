//! Gateway tour: Neo's optimizer served over a real TCP socket.
//!
//! Everything the other examples do happens inside one process; this
//! one crosses a genuine network boundary. A gateway server binds a
//! loopback port in a background thread, and a [`GatewayClient`] talks
//! to it using the length-prefixed wire protocol — the same protocol
//! the `neo-gateway` binary serves, so the client half of this example
//! works unchanged against a separate leader/follower fleet:
//!
//! ```text
//! neo-gateway --role leader   --store /tmp/fleet &
//! neo-gateway --role follower --store /tmp/fleet --leader 127.0.0.1:PORT &
//! ```
//!
//! The tour: optimize a query (with a client-minted trace id), report
//! its observed latency back, pull the server's stats, fetch the span
//! waterfall the SERVER recorded under OUR trace id, and shut the
//! gateway down over the wire.
//!
//! ```text
//! cargo run --release --example gateway_tour
//! ```

use neo::{Featurization, Featurizer, NetConfig, ValueNet};
use neo_gateway::client::GatewayClient;
use neo_gateway::server::{Gateway, GatewayConfig};
use neo_obs::{SpanContext, SpanId, TraceId};
use neo_query::workload::job;
use neo_serve::{NoHooks, OptimizerService, ServeConfig};
use neo_storage::datagen::imdb;
use std::sync::Arc;

fn main() {
    // 1. A small deterministic service: database, featurizer, value net.
    println!("building optimizer service ...");
    let db = Arc::new(imdb::generate(0.05, 42));
    let workload = job::generate(&db, 42);
    let featurizer = Arc::new(Featurizer::new(&db, Featurization::Histogram));
    let net = Arc::new(ValueNet::new(
        featurizer.query_dim(),
        featurizer.plan_channels(),
        NetConfig::default(),
        42,
    ));
    let service = Arc::new(OptimizerService::new(
        db,
        featurizer,
        net,
        ServeConfig::default(),
    ));

    // 2. Serve it on a loopback socket. The accept loop runs in a
    //    background thread; `127.0.0.1:0` asks the OS for a free port.
    let gateway = Gateway::serve(
        Arc::clone(&service),
        Arc::new(NoHooks),
        None,
        GatewayConfig::default(),
    )
    .expect("bind loopback gateway");
    println!("gateway serving on {}", gateway.local_addr());

    // 3. A client connection. Mint a trace id CLIENT-side and send it
    //    along: the server will record its rpc.optimize span waterfall
    //    under this id, queryable later over the same socket.
    let mut client = GatewayClient::connect(gateway.local_addr()).expect("connect");
    let caller = SpanContext {
        trace: TraceId(0x7007_CAFE),
        span: SpanId(1),
    };
    let query = workload.queries[0].clone();
    let reply = client
        .optimize(query.clone(), Some(caller))
        .expect("optimize over the wire");
    println!(
        "optimized {:>4}: cache_hit={} generation={} {:.2} ms server-side",
        reply.query_id, reply.cache_hit, reply.model_generation, reply.optimize_ms
    );
    println!("  plan: {}", reply.plan.describe());

    // 4. Close the loop: report the plan's observed execution latency.
    //    (A real deployment reports what its executor measured; here we
    //    pretend the prediction was 10% optimistic.)
    let observed_ms = reply.predicted_ms.unwrap_or(10.0) * 1.1;
    let accepted = client
        .report_execution(query.clone(), reply.plan.clone(), observed_ms)
        .expect("report execution");
    println!("reported {observed_ms:.2} ms execution: accepted={accepted}");

    // 5. Admin plane, same socket: stats and the trace waterfall.
    let stats = client.stats().expect("stats");
    println!(
        "stats document: {} bytes of JSON (gateway counters included: {})",
        stats.len(),
        stats.contains("gateway_requests_total")
    );
    let waterfall = client
        .trace_waterfall(0x7007_CAFE)
        .expect("trace waterfall");
    println!("server-side span waterfall for our trace id:\n{waterfall}");

    // 6. Shut the server down over the wire; in-flight work drains.
    client.shutdown_server().expect("shutdown");
    drop(gateway); // join the drained accept loop
    println!("gateway drained and closed — tour complete");
}
