//! Row-vector embeddings in action (paper §5): train word2vec on the
//! IMDB-like database, inspect semantic neighbourhoods, and replay the
//! paper's §5.2 analysis — the `love`/`romance` correlation that breaks
//! PostgreSQL's independence assumptions, and the plan-quality consequence
//! (the Fig. 8 query runs much faster with hash joins than with the loop
//! joins the mis-estimating expert would pick).
//!
//! ```text
//! cargo run --release --example row_vectors
//! ```

use neo_embedding::{build_corpus, cosine, train, CorpusKind, W2vConfig};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_expert::HistogramEstimator;
use neo_query::{CmpOp, JoinEdge, JoinOp, PlanNode, Predicate, Query, ScanType};
use neo_storage::datagen::imdb;

fn main() {
    println!("generating IMDB-like database ...");
    let db = imdb::generate(0.25, 7);

    println!("building partially denormalized corpus + training word2vec ...");
    let corpus = build_corpus(&db, CorpusKind::Denormalized);
    println!(
        "  {} sentences, {} distinct tokens",
        corpus.sentences.len(),
        corpus.vocab.len()
    );
    let emb = train(
        &corpus,
        &W2vConfig {
            dim: 32,
            epochs: 4,
            window: 10,
            ..Default::default()
        },
        7,
    );

    // Semantic neighbourhoods (paper Fig. 7's clusters).
    for probe in ["romance", "action", "france"] {
        let sims = emb.most_similar(probe, 5);
        println!("\nnearest to '{probe}':");
        for (tok, s) in sims {
            println!("  {s:.3}  {tok}");
        }
    }

    // §5.2: the correlated query — keyword ILIKE '%love%' AND genre romance.
    let title = db.table_id("title").unwrap();
    let mk = db.table_id("movie_keyword").unwrap();
    let kw = db.table_id("keyword").unwrap();
    let mi = db.table_id("movie_info").unwrap();
    let mut tables = vec![title, mk, kw, mi];
    tables.sort_unstable();
    let joins: Vec<JoinEdge> = db
        .foreign_keys
        .iter()
        .filter(|f| tables.contains(&f.from_table) && tables.contains(&f.to_table))
        .map(|f| JoinEdge {
            left_table: f.from_table,
            left_col: f.from_col,
            right_table: f.to_table,
            right_col: f.to_col,
        })
        .collect();
    let q = Query {
        id: "fig8".into(),
        family: "fig8".into(),
        tables: tables.clone(),
        joins,
        predicates: vec![
            Predicate::StrContains {
                table: kw,
                col: db.tables[kw].col_id("keyword").unwrap(),
                needle: "love".into(),
            },
            Predicate::IntCmp {
                table: mi,
                col: db.tables[mi].col_id("info_type_id").unwrap(),
                op: CmpOp::Eq,
                value: 2,
            },
            Predicate::StrEq {
                table: mi,
                col: db.tables[mi].col_id("info").unwrap(),
                value: "romance".into(),
            },
        ],
        agg: Default::default(),
    };
    q.validate(&db).unwrap();

    let mut oracle = CardinalityOracle::new();
    let full = (1u64 << q.num_relations()) - 1;
    let truth = oracle.cardinality(&db, &q, full);
    let mut est = HistogramEstimator::new();
    let guess = neo_expert::CardEstimator::join(&mut est, &db, &q, full);
    println!("\nFig. 8 query (keyword~love AND genre=romance):");
    println!("  true cardinality:               {truth:>10.0}");
    println!("  PostgreSQL-style estimate:      {guess:>10.0}  (independence assumption)");
    println!(
        "  embedding similarity love~romance: {:>7.3}",
        emb.cosine("love-tag-0", "romance").unwrap_or(0.0)
    );
    let sims_of = |word: &str, genre: &str| {
        let s = db.tables[kw].col("keyword").as_str().unwrap();
        let matched: Vec<String> = s
            .codes_containing(word)
            .into_iter()
            .map(|c| s.decode(c).to_string())
            .collect();
        cosine(&emb.mean_vector(matched.iter()), emb.vector(genre).unwrap())
    };
    println!(
        "  mean-matched similarity love~romance: {:.3}",
        sims_of("love", "romance")
    );
    println!(
        "  mean-matched similarity love~horror:  {:.3}",
        sims_of("love", "horror")
    );

    // Plan consequence: loop joins (what an underestimating optimizer picks)
    // vs hash joins on the same join order.
    let rel = |t: usize| q.rel_of(t).unwrap();
    let build = |op: JoinOp| PlanNode::Join {
        op,
        left: Box::new(PlanNode::Join {
            op,
            left: Box::new(PlanNode::Join {
                op: JoinOp::Hash,
                left: Box::new(PlanNode::Scan {
                    rel: rel(mk),
                    scan: ScanType::Table,
                }),
                right: Box::new(PlanNode::Scan {
                    rel: kwr(&q, kw),
                    scan: ScanType::Table,
                }),
            }),
            right: Box::new(PlanNode::Scan {
                rel: rel(title),
                scan: ScanType::Table,
            }),
        }),
        right: Box::new(PlanNode::Scan {
            rel: rel(mi),
            scan: ScanType::Table,
        }),
    };
    let profile = Engine::PostgresLike.profile();
    let hash_ms = true_latency(&db, &q, &profile, &mut oracle, &build(JoinOp::Hash));
    let loop_ms = true_latency(&db, &q, &profile, &mut oracle, &build(JoinOp::Loop));
    println!("\nsame join order, different operators:");
    println!("  hash joins: {hash_ms:>10.1} ms   (what Neo learns to pick)");
    println!("  loop joins: {loop_ms:>10.1} ms   (what the underestimate encourages)");
    println!("  speedup:    {:>10.1}x", loop_ms / hash_ms);
}

fn kwr(q: &Query, kw: usize) -> usize {
    q.rel_of(kw).unwrap()
}
