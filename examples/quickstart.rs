//! Quickstart: bootstrap Neo from the PostgreSQL-like expert on a small
//! IMDB-like database, train for a few episodes, and compare the plans it
//! picks against the expert.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use neo::{CostKind, FeaturizationChoice, Neo, NeoConfig, NetConfig};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_expert::postgres_expert;
use neo_query::workload::job;
use neo_storage::datagen::imdb;

fn main() {
    // 1. A database and a workload (paper §6.1: sample workload + DBMS).
    println!("generating IMDB-like database ...");
    let db = imdb::generate(0.1, 42);
    println!("  {} tables, {} rows", db.num_tables(), db.total_rows());
    let workload = job::generate(&db, 42);
    let (train, test): (Vec<_>, Vec<_>) = {
        let (tr, te) = workload.split_random(0.2, 42);
        // Keep the example fast: medium-size queries only.
        (
            tr.into_iter()
                .filter(|q| q.num_relations() <= 8)
                .take(30)
                .collect(),
            te.into_iter()
                .filter(|q| q.num_relations() <= 8)
                .take(8)
                .collect(),
        )
    };
    println!(
        "  {} training queries, {} test queries",
        train.len(),
        test.len()
    );

    // 2. Bootstrap from the expert (learning from demonstration, §2).
    let cfg = NeoConfig {
        featurization: FeaturizationChoice::Histogram,
        net: NetConfig {
            query_layers: vec![64, 32, 16],
            conv_channels: vec![24, 24, 16],
            head_layers: vec![32, 16],
            lr: 2e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        bootstrap_epochs: 5,
        search_base_expansions: 8,
        cost_kind: CostKind::WorkloadLatency,
        ..Default::default()
    };
    println!("bootstrapping Neo from the PostgreSQL-like expert ...");
    let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, train, cfg);

    // 3. A few reinforcement-learning episodes (§6.3.1).
    for episode in 1..=5 {
        let stats = neo.run_episode(episode);
        println!(
            "episode {episode}: loss {:.4}, training-set latency {:.0} ms",
            stats.mean_loss, stats.train_latency_ms
        );
    }

    // 4. Head-to-head on the held-out test set.
    println!(
        "\n{:<8} {:>14} {:>14} {:>8}",
        "query", "expert (ms)", "neo (ms)", "ratio"
    );
    let profile = Engine::PostgresLike.profile();
    let mut oracle = CardinalityOracle::new();
    let (mut expert_total, mut neo_total) = (0.0, 0.0);
    for q in &test {
        let expert_plan = postgres_expert(&db, q);
        let expert_ms = true_latency(&db, q, &profile, &mut oracle, &expert_plan);
        let (neo_plan, _) = neo.plan_query(q);
        let neo_ms = true_latency(&db, q, &profile, &mut oracle, &neo_plan);
        expert_total += expert_ms;
        neo_total += neo_ms;
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>8.2}",
            q.id,
            expert_ms,
            neo_ms,
            neo_ms / expert_ms
        );
    }
    println!(
        "\ntotals: expert {expert_total:.0} ms, neo {neo_total:.0} ms ({:.2}x)",
        neo_total / expert_total
    );
    println!("(After a handful of episodes Neo should be at or below the expert.)");

    // 5. EXPLAIN one of Neo's plans.
    let q = &test[0];
    let (plan, stats) = neo.plan_query(q);
    println!(
        "\nEXPLAIN for test query {} ({} expansions, {} plans scored):",
        q.id, stats.expansions, stats.scored
    );
    println!("{}", neo_query::explain(&db, q, &plan));
}
