//! Robustness demo (paper §6.4.3): how plan quality degrades — or doesn't —
//! as cardinality estimates get worse.
//!
//! Compares the traditional Selinger optimizer and Neo when their
//! cardinality information is corrupted by 0 / 2 / 5 orders of magnitude.
//! The DP optimizer follows its estimates off a cliff; Neo, whose value
//! network was trained on *observed latencies*, keeps choosing reasonable
//! plans because the corrupted feature is only one of many inputs.
//!
//! ```text
//! cargo run --release --example robustness
//! ```

use neo::{AuxCardSource, FeaturizationChoice, Neo, NeoConfig, NetConfig};
use neo_engine::{true_latency, CardinalityOracle, Engine};
use neo_expert::{ErrorInjector, HistogramEstimator, SelingerOptimizer};
use neo_query::workload::job;
use neo_storage::datagen::imdb;

fn main() {
    println!("generating IMDB-like database + workload ...");
    let db = imdb::generate(0.1, 11);
    let workload = job::generate(&db, 11);
    let queries: Vec<_> = workload
        .queries
        .iter()
        .filter(|q| q.num_relations() >= 4 && q.num_relations() <= 8)
        .take(16)
        .cloned()
        .collect();

    println!("training Neo (with a PostgreSQL-estimate feature) ...");
    let cfg = NeoConfig {
        featurization: FeaturizationChoice::Histogram,
        net: NetConfig {
            query_layers: vec![64, 32, 16],
            conv_channels: vec![24, 24, 16],
            head_layers: vec![32, 16],
            lr: 2e-3,
            grad_clip: 5.0,
            ignore_structure: false,
        },
        aux_card: AuxCardSource::PostgresEstimate,
        bootstrap_epochs: 5,
        search_base_expansions: 8,
        ..Default::default()
    };
    let mut neo = Neo::bootstrap(&db, Engine::PostgresLike, queries.clone(), cfg);
    for ep in 1..=4 {
        neo.run_episode(ep);
    }

    let profile = Engine::PostgresLike.profile();
    println!(
        "\n{:>22} {:>18} {:>18}",
        "injected error", "Selinger total (ms)", "Neo total (ms)"
    );
    for orders in [0.0, 2.0, 5.0] {
        // Traditional optimizer with corrupted estimates.
        let mut oracle = CardinalityOracle::new();
        let mut selinger_total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let mut est = ErrorInjector {
                inner: HistogramEstimator::new(),
                orders,
                seed: 1000 + i as u64,
            };
            let plan = SelingerOptimizer::default().optimize(&db, q, &profile, &mut est);
            selinger_total += true_latency(&db, q, &profile, &mut oracle, &plan);
        }
        // Neo with the same corruption injected into its cardinality feature.
        neo.cfg.aux_error_orders = orders;
        let mut neo_total = 0.0;
        for q in &queries {
            let (plan, _) = neo.plan_query(q);
            neo_total += true_latency(&db, q, &profile, &mut neo.oracle, &plan);
        }
        println!(
            "{:>18} oom {:>18.0} {:>18.0}",
            orders, selinger_total, neo_total
        );
    }
    println!(
        "\n(The Selinger optimizer degrades steeply with error; Neo's choices barely\n move — it learned how much to trust the estimate. Paper §6.4.3 / Fig. 14.)"
    );
}
